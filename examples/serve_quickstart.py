#!/usr/bin/env python3
"""Serving quickstart: train -> export -> serve -> query (repro.serve e2e).

The deployment path the paper's §V outlook describes, end to end on a CPU in
under a minute:

1. **train** a small MLP with posit(8,1) quantized training (repro.api);
2. **export** it as a packed artifact — every parameter stored as 8-bit
   posit words, 4x smaller than FP32, with frozen activation scales
   calibrated from the validation set;
3. **serve** it over HTTP with dynamic micro-batching (repro.serve);
4. **query** it with concurrent closed-loop clients and read the server's
   latency/energy accounting back from ``/stats``.

Run with:  python examples/serve_quickstart.py [--concurrency N]
"""

from __future__ import annotations

import argparse
import os
import tempfile

import numpy as np

from repro.api import ExperimentConfig
from repro.serve import (
    BatchingConfig,
    HTTPClient,
    InferenceEngine,
    ModelServer,
    run_load,
    train_and_export,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--concurrency", type=int, default=32)
    parser.add_argument("--requests-per-client", type=int, default=4)
    parser.add_argument("--epochs", type=int, default=2)
    args = parser.parse_args()

    # 1. Train a posit(8,1) model on the spirals toy task.
    config = ExperimentConfig(
        name="serve_quickstart", dataset="spirals", model="mlp",
        policy="posit(8,1)", epochs=args.epochs, train_size=256, test_size=128,
        num_classes=3, model_kwargs={"hidden": [64, 32]})
    artifact = os.path.join(tempfile.mkdtemp(prefix="repro_serve_"), "model.rpak")
    print(f"training {config.name} ({config.policy}, {config.epochs} epochs)...")
    manifest, history = train_and_export(config, artifact)
    print(f"  val accuracy: {history.final_val_accuracy:.3f}")

    # 2. The packed artifact vs the FP32 state it encodes.
    size = os.path.getsize(artifact)
    fp32 = manifest["fp32_state_nbytes"]
    print(f"  artifact: {artifact}")
    print(f"  {size} bytes on disk vs {fp32} bytes of FP32 state "
          f"({fp32 / size:.2f}x smaller)")

    # 3. Serve it over HTTP with micro-batching.
    engine = InferenceEngine(artifact, BatchingConfig(max_batch=32, max_wait_ms=5.0))
    with ModelServer(engine) as server:
        print(f"\nserving on {server.url} "
              f"(max_batch={engine.batching.max_batch}, "
              f"max_wait_ms={engine.batching.max_wait_ms})")
        client = HTTPClient(server.url)
        print(f"  healthz: {client.healthz()}")

        # 4. Fire concurrent closed-loop clients at it.
        rng = np.random.default_rng(7)
        samples = rng.normal(scale=1.5, size=(64, 2))
        report = run_load(client, samples, concurrency=args.concurrency,
                          requests_per_client=args.requests_per_client,
                          client_factory=lambda: HTTPClient(server.url))
        print(f"\nload: {report['completed']} requests from "
              f"{args.concurrency} concurrent clients, "
              f"{report['failed']} failed")
        print(f"  throughput: {report['throughput_rps']:.0f} req/s   "
              f"p50 {report['latency_p50_ms']:.1f} ms   "
              f"p99 {report['latency_p99_ms']:.1f} ms")

        stats = client.stats()
        print(f"  server: {stats['batches']} batches, "
              f"mean batch {stats['mean_batch_size']:.1f}, "
              f"max batch seen {stats['max_batch_seen']}")
        print(f"  hardware-model energy: "
              f"{stats['energy_uj_per_sample'] * 1000:.3f} nJ/sample, "
              f"{stats['energy_uj_total']:.3f} uJ total")

        # Sanity: micro-batched results are bit-identical to a direct pass.
        direct = engine.predict_batch(samples[:8])
        served = np.asarray(client.predict(samples[:8])["logits"])
        assert np.array_equal(direct, served), "serving changed the numerics!"
        print("\nbatched-vs-direct predictions: bit-identical")


if __name__ == "__main__":
    main()
