#!/usr/bin/env python3
"""Distribution and quantization analysis: Fig. 2 and the motivation for §III-B.

Three studies, all printable on a terminal (no plotting dependency):

1. **Fig. 2 reproduction** — track the weight distributions of the first CONV
   layer and the first BN layer while a small ResNet trains, and show that
   the BN distribution shifts sharply in the first epochs while the CONV
   distribution stays put (the reason for FP32 warm-up).
2. **Code-space coverage** — measure how much of the posit code space a
   typical weight tensor exercises with and without the Eq. (2)/(3) scaling
   factor (the reason for distribution-based shifting).
3. **Dynamic-range / es selection** — measure the log2-domain ranges of
   weights, activations, and errors during training and report the es each
   would need (the reason for es=1 forward / es=2 backward).

Run with:  python examples/distribution_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import (
    DistributionRecorder,
    bn_shift_magnitude,
    shifting_coverage_gain,
)
from repro.api import ExperimentConfig, build_experiment
from repro.core import PositTrainer, RangeTracker, recommend_es
from repro.data import cifar_like, train_loader
from repro.models import cifar_resnet8
from repro.nn import CrossEntropyLoss
from repro.optim import SGD
from repro.tensor import Tensor


def ascii_histogram(values: np.ndarray, bins: int = 25, width: int = 40) -> str:
    counts, edges = np.histogram(values, bins=bins)
    peak = counts.max() or 1
    lines = []
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(width * count / peak)
        lines.append(f"  {lo:+8.3f} .. {hi:+8.3f} | {bar}")
    return "\n".join(lines)


def study_1_fig2_distributions() -> None:
    print("=" * 72)
    print("Study 1 — Fig. 2: CONV vs BN weight distributions during training")
    print("=" * 72)

    recorder = DistributionRecorder()
    experiment = build_experiment(
        ExperimentConfig(dataset="cifar_like", model="cifar_resnet",
                         policy="fp32", epochs=3, batch_size=32, lr=0.05,
                         train_size=256, test_size=64, data_seed=1,
                         data_kwargs={"noise_std": 0.5}),
        epoch_callbacks=[recorder],
    )
    model = experiment.model
    recorder.record_model(model, epoch=-1)  # initialization snapshot
    experiment.run()

    for name, snapshot in recorder.snapshots.items():
        kind = "BN " if "bn" in name else "CONV"
        print(f"\n{kind} parameter {name}: std per epoch "
              f"{[round(s, 3) for s in snapshot.stds]}")
        print(ascii_histogram(dict(model.named_parameters())[name].data.ravel()))
    shifts = bn_shift_magnitude(recorder)
    print("\nDistribution shift (|Δmean| + |Δstd|, normalized):")
    for name, shift in shifts.items():
        print(f"  {name:<22} {shift:.3f}")
    print("-> the BN weights move far more than the CONV weights early in training,")
    print("   which is why the paper keeps the first epochs in FP32 (warm-up).")


def study_2_code_space_coverage() -> None:
    print("\n" + "=" * 72)
    print("Study 2 — posit code-space coverage with and without shifting")
    print("=" * 72)

    rng = np.random.default_rng(0)
    weights = rng.standard_normal(20000) * 0.004  # conv-weight-like scale
    # Formats are named by registry spec strings (repro.formats).
    for spec in ("posit(8,0)", "posit(8,1)", "posit(16,1)"):
        gain = shifting_coverage_gain(weights, spec)
        direct, shifted = gain["direct"], gain["shifted"]
        print(f"{gain['format']}: codes used {direct['distinct_codes']:>5} -> "
              f"{shifted['distinct_codes']:>5} with Sf={gain['scale_factor']:.2e}  "
              f"(entropy {direct['entropy_bits']:.2f} -> {shifted['entropy_bits']:.2f} bits)")


def study_3_dynamic_ranges_and_es() -> None:
    print("\n" + "=" * 72)
    print("Study 3 — per-role dynamic ranges and the es-selection criterion")
    print("=" * 72)

    dataset = cifar_like(num_train=128, num_test=32, noise_std=0.5, seed=2)
    train = train_loader(dataset, batch_size=32, seed=0)
    model = cifar_resnet8(base_width=8, rng=np.random.default_rng(0))
    trainer = PositTrainer(model, SGD(model.parameters(), lr=0.05, momentum=0.9),
                           CrossEntropyLoss())
    trainer.fit(train, epochs=1)

    tracker = RangeTracker(n_bits=8)
    tracker.record_model_weights(model)
    # Capture error/gradient ranges from one more backward pass.
    images, labels = next(iter(train))
    logits = model(Tensor(images))
    loss = CrossEntropyLoss()(logits, labels)
    model.zero_grad()
    loss.backward()
    for name, param in model.named_parameters():
        if param.grad is not None:
            tracker.record(name, "weight_grad", param.grad)

    per_role: dict[str, list[float]] = {}
    for row in tracker.report():
        per_role.setdefault(row["role"], []).append(row["overall_log2_range"])
    print(f"{'role':<14} {'mean log2 range':>16} {'max log2 range':>16} {'es needed @8b':>14}")
    for role, ranges in per_role.items():
        mean_range, max_range = float(np.mean(ranges)), float(np.max(ranges))
        print(f"{role:<14} {mean_range:>16.1f} {max_range:>16.1f} "
              f"{recommend_es(max_range, n=8):>14}")
    print("-> gradients span a wider range than weights, matching the paper's choice")
    print("   of es = 2 for the backward tensors and es = 1 for the forward tensors.")


if __name__ == "__main__":
    study_1_fig2_distributions()
    study_2_code_space_coverage()
    study_3_dynamic_ranges_and_es()
