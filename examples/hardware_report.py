#!/usr/bin/env python3
"""Hardware evaluation report: posit MAC vs FP32 MAC (Tables IV and V, Figs. 4-6).

Regenerates, from the analytical synthesis model:

* Table IV — encoder/decoder delay for the original architecture of [6] vs
  the paper's optimized architecture, for posit(8,0), (16,1), (32,3);
* Table V  — power and area of the posit MAC units vs the FP32 MAC at 750 MHz;
* the Fig. 4 observation that the codec accounts for ~40 % of the original
  posit MAC delay, and how much the optimization recovers;
* the §V system-level claim that 8/16-bit posit saves 2-4x communication.

The model is calibrated on exactly one published reference point (the FP32
MAC row of Table V and the [6] posit(16,1) decoder delay); every other number
is a structural prediction.  See EXPERIMENTS.md for the paper-vs-model
comparison.

Run with:  python examples/hardware_report.py
"""

from __future__ import annotations

import numpy as np

from repro.api import build_policy
from repro.hardware import (
    FP32MAC,
    PositMAC,
    calibrate_to_reference,
    codec_optimization_report,
    communication_saving,
    table4_report,
    table5_report,
)
from repro.models import cifar_resnet18
from repro.formats import parse_format
from repro.posit import PositConfig, encode


def print_table(rows: list[dict], title: str) -> None:
    print("\n" + title)
    print("-" * len(title))
    if not rows:
        return
    headers = list(rows[0].keys())
    widths = [max(len(str(h)), max(len(str(r[h])) for r in rows)) for h in headers]
    print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(row[h]).ljust(w) for h, w in zip(headers, widths)))


def functional_spot_check() -> None:
    print("Functional spot check: the posit(16,1) MAC against the software reference")
    cfg = PositConfig(16, 1)
    mac = PositMAC(cfg)
    rng = np.random.default_rng(0)
    mismatches = 0
    for _ in range(1000):
        a, b, c = rng.uniform(-50, 50, 3)
        bits = [encode(float(v), cfg) for v in (a, b, c)]
        from repro.posit import fma

        if mac.mac(*bits) != fma(*bits, cfg, rounding="zero"):
            mismatches += 1
    print(f"  1000 random MAC operations, {mismatches} mismatches vs the bit-exact reference\n")


def main() -> None:
    calibration = calibrate_to_reference()
    print("Calibration (fit on the FP32 MAC row of Table V and the [6] decoder delay):")
    print(f"  area x{calibration.area_scale:.3f}, power x{calibration.power_scale:.3f}, "
          f"delay x{calibration.delay_scale:.3f}\n")

    functional_spot_check()

    print_table(table4_report(calibration=calibration),
                "Table IV — encoder/decoder delay, original [6] vs optimized (ours)")
    print_table(table5_report(calibration=calibration),
                "Table V — MAC power and area at 750 MHz")
    print_table(codec_optimization_report(calibration=calibration),
                "Fig. 4-6 — codec share of the posit MAC critical path")

    print("\n§V — communication saving for ResNet-18 under the paper's policies")
    model = cifar_resnet18(base_width=16, rng=np.random.default_rng(0))
    for name, policy in (("Cifar policy (8-bit CONV / 16-bit BN)", build_policy("cifar_paper")),
                         ("ImageNet policy (16-bit everywhere)", build_policy("imagenet_paper"))):
        saving = communication_saving(model, policy, batch_size=32)
        print(f"  {name:<42} model size x{saving['model_size_ratio']:.2f}, "
              f"traffic x{saving['traffic_ratio']:.2f}, energy x{saving['energy_ratio']:.2f}")

    fp32_area = FP32MAC().cost().area_ge
    print("\nStructural gate counts (FP32 MAC = 1.0):")
    for cfg in map(parse_format, ("posit(8,1)", "posit(8,2)", "posit(16,1)", "posit(16,2)")):
        ratio = PositMAC(cfg).cost().area_ge / fp32_area
        print(f"  {cfg}: {ratio:.2f}")


if __name__ == "__main__":
    main()
