#!/usr/bin/env python3
"""Quickstart: the posit number system and a first posit-quantized training run.

This example walks through the library's public API in three short parts:

1. the posit format itself — value tables (Table I), the transformation
   operator P(x) of Algorithm 1, and how its precision tapers with magnitude;
2. the distribution-based shifting of Eq. (2)/(3) and why it matters;
3. training a small MLP on a toy dataset in FP32 and in posit(16,1)/(16,2)
   with the paper's warm-up strategy, showing that the two runs reach the
   same accuracy.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import compute_scale_factor, parse_format, quantize
from repro.analysis import sqnr_db
from repro.api import ExperimentConfig, build_experiment
from repro.posit import PositConfig, format_table


def part_1_posit_basics() -> None:
    print("=" * 70)
    print("Part 1 — the posit number system")
    print("=" * 70)

    # Table I of the paper: every positive value of the (5,1) posit.
    print(format_table(PositConfig(5, 1)))

    # The transformation operator P(x) of Algorithm 1 snaps reals onto the
    # grid.  Formats resolve from registry spec strings (repro.formats).
    cfg = parse_format("posit(8,1)")
    values = np.array([0.003, 0.3, 1.7, 42.0, 1e9])
    print(f"\nP_(8,1) with round-to-zero applied to {values}:")
    print(f"  -> {np.asarray(quantize(values, cfg, rounding='zero'))}")
    print(f"  (dynamic range of posit(8,1): [{cfg.minpos:.2e}, {cfg.maxpos:.2e}])")

    # Precision tapers away from magnitude 1 — the motivation for shifting.
    for magnitude in (1.0, 64.0, 4096.0):
        sample = np.random.default_rng(0).uniform(0.9, 1.1, 2000) * magnitude
        error = np.abs(np.asarray(quantize(sample, cfg)) - sample) / sample
        print(f"  mean relative error near {magnitude:>7.0f}: {error.mean():.4f}")


def part_2_distribution_shifting() -> None:
    print("\n" + "=" * 70)
    print("Part 2 — distribution-based shifting (Eq. 2/3)")
    print("=" * 70)

    rng = np.random.default_rng(1)
    weights = rng.standard_normal(10000) * 0.004  # typical conv-weight scale
    cfg = PositConfig(8, 1)

    direct = np.asarray(quantize(weights, cfg))
    scale = compute_scale_factor(weights, sigma=2)
    shifted = np.asarray(quantize(weights / scale, cfg)) * scale

    print(f"layer-wise scale factor Sf = {scale} (= 2^(center + 2))")
    print(f"SQNR without shifting: {sqnr_db(weights, direct):6.2f} dB")
    print(f"SQNR with    shifting: {sqnr_db(weights, shifted):6.2f} dB")


def part_3_train_fp32_vs_posit() -> None:
    print("\n" + "=" * 70)
    print("Part 3 — training: FP32 baseline vs posit(16,1)/(16,2)")
    print("=" * 70)

    # The whole experiment is declarative: dataset, model, and policy are
    # plain strings resolved by repro.api (policies also accept dicts and
    # QuantizationPolicy objects).
    base = ExperimentConfig(
        dataset="spirals", model="mlp", num_classes=3,
        train_size=480, test_size=120, batch_size=32,
        epochs=30, lr=0.1, data_seed=0, seed=7, shuffle_seed=0,
        data_kwargs={"noise": 0.15},
    )

    def run(policy, warmup_epochs, label):
        config = base.with_overrides(policy=policy, warmup_epochs=warmup_epochs)
        history = build_experiment(config).run()
        print(f"  {label:<40} final val accuracy: {history.final_val_accuracy:.3f}")
        return history

    run("fp32", 0, "FP32 baseline")
    run("imagenet_paper", 1, "posit(16,1)/(16,2), warm-up 1")
    # 8-bit posit on a tiny all-Linear MLP is deliberately aggressive: the
    # paper's 8-bit recipe applies to CONV layers and keeps BN at 16 bits (see
    # examples/train_cifar_like.py and examples/precision_study.py for that
    # configuration); here it illustrates where 8 bits alone starts to strain.
    run("uniform(8)", 1, "posit(8,1)/(8,2) everywhere (aggressive)")


if __name__ == "__main__":
    part_1_posit_basics()
    part_2_distribution_shifting()
    part_3_train_fp32_vs_posit()
