#!/usr/bin/env python3
"""Precision study: posit vs FP16/FP8/fixed-point on the same training recipe.

Trains the same small model, on the same data, with the same optimizer, under
five number systems and prints a comparison table:

* FP32 (the baseline),
* posit(8,1)/(8,2) with the paper's warm-up + shifting,
* posit(16,1)/(16,2),
* FP16 mixed precision with loss scaling (Micikevicius et al. [9]),
* FP8 (E4M3 forward / E5M2 backward) with FP16 updates (Wang et al. [10]),
* 16-bit fixed point Q2.13 with stochastic rounding (Gupta et al. [7]).

This is the comparison the paper makes qualitatively in its related-work
discussion: posit at 8 bits retains accuracy where aggressive fixed-point
formats fall behind.

Run with:  python examples/precision_study.py [--epochs N]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.baselines import fixed_point_policy, fp8_policy, fp16_policy
from repro.core import PositTrainer, QuantizationPolicy, WarmupSchedule
from repro.data import cifar_like, train_loader
from repro.data.loaders import test_loader as make_test_loader
from repro.models import tiny_resnet
from repro.nn import CrossEntropyLoss, LossScaler
from repro.optim import SGD


def run_one(label: str, policy, warmup: int, args, loss_scaler=None) -> dict:
    dataset = cifar_like(num_train=args.train_size, num_test=args.test_size,
                         noise_std=0.5, seed=args.data_seed)
    train = train_loader(dataset, batch_size=args.batch_size, seed=0)
    val = make_test_loader(dataset, batch_size=256)
    model = tiny_resnet(num_classes=10, base_width=8, rng=np.random.default_rng(0))
    optimizer = SGD(model.parameters(), lr=args.lr, momentum=0.9)
    trainer = PositTrainer(model, optimizer, CrossEntropyLoss(), policy=policy,
                           warmup=WarmupSchedule(warmup), loss_scaler=loss_scaler)
    start = time.time()
    history = trainer.fit(train, val, epochs=args.epochs)
    return {
        "scheme": label,
        "val_accuracy": history.final_val_accuracy,
        "best_accuracy": history.best_val_accuracy,
        "train_loss": history.final_train_loss,
        "seconds": time.time() - start,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=6)
    parser.add_argument("--train-size", type=int, default=384)
    parser.add_argument("--test-size", type=int, default=192)
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--lr", type=float, default=0.05)
    parser.add_argument("--data-seed", type=int, default=1)
    args = parser.parse_args()

    schemes = [
        ("FP32", None, 0, None),
        ("posit(8,1)/(8,2) + warm-up + shift", QuantizationPolicy.cifar_paper(), 1, None),
        ("posit(16,1)/(16,2) + warm-up", QuantizationPolicy.imagenet_paper(), 1, None),
        ("FP16 mixed precision + loss scaling", fp16_policy(), 0, LossScaler(1024.0, dynamic=True)),
        ("FP8 E4M3/E5M2", fp8_policy(), 1, LossScaler(1024.0, dynamic=True)),
        ("fixed point Q2.13 (stochastic)", fixed_point_policy(), 0, None),
    ]

    results = []
    for label, policy, warmup, scaler in schemes:
        print(f"training: {label} ...")
        results.append(run_one(label, policy, warmup, args, loss_scaler=scaler))

    print(f"\n{'scheme':<40} {'val acc':>8} {'best':>8} {'loss':>8} {'time(s)':>8}")
    for row in results:
        print(f"{row['scheme']:<40} {row['val_accuracy']:>8.3f} {row['best_accuracy']:>8.3f} "
              f"{row['train_loss']:>8.3f} {row['seconds']:>8.0f}")
    baseline = results[0]["val_accuracy"]
    print("\nAccuracy gap to FP32 (negative = worse than baseline):")
    for row in results[1:]:
        print(f"  {row['scheme']:<40} {row['val_accuracy'] - baseline:+.3f}")


if __name__ == "__main__":
    main()
