#!/usr/bin/env python3
"""Precision study: posit vs FP16/FP8/fixed-point on the same training recipe.

Trains the same small model, on the same data, with the same optimizer, under
six number systems and prints a comparison table:

* FP32 (the baseline),
* posit(8,1)/(8,2) with the paper's warm-up + shifting,
* posit(16,1)/(16,2),
* FP16 mixed precision with loss scaling (Micikevicius et al. [9]),
* FP8 (E4M3 forward / E5M2 backward) with FP16 updates (Wang et al. [10]),
* 16-bit fixed point Q2.13 with stochastic rounding (Gupta et al. [7]).

This is the comparison the paper makes qualitatively in its related-work
discussion: posit at 8 bits retains accuracy where aggressive fixed-point
formats fall behind.

The whole study is one declarative :class:`~repro.sweeps.SweepConfig` —
three *zipped* axes couple each policy with its warm-up length and loss
scaling — executed by the sharded sweep runner.  Results land in an
append-only JSONL store, so re-running the script resumes instead of
retraining, and ``--workers N`` shards the schemes over processes.  The
same study is committed as ``examples/sweeps/precision_study.json`` for the
``repro`` CLI.

Run with:  python examples/precision_study.py [--epochs N] [--workers N]
"""

from __future__ import annotations

import argparse

from repro.api import ExperimentConfig
from repro.sweeps import SweepAxis, SweepConfig, format_table, result_rows, run_sweep

#: (policy preset, warm-up epochs, loss scaling) per scheme — zipped axes.
SCHEMES = [
    ("fp32", 0, False),
    ("cifar_paper", 1, False),      # posit(8,1)/(8,2) + warm-up + shift
    ("imagenet_paper", 1, False),   # posit(16,1)/(16,2) + warm-up
    ("fp16_mixed", 0, True),        # FP16 mixed precision + loss scaling
    ("fp8_mixed", 1, True),         # FP8 E4M3/E5M2
    ("fixed_point", 0, False),      # fixed point Q2.13 (stochastic)
]


def build_sweep(args) -> SweepConfig:
    base = ExperimentConfig(
        dataset="cifar_like",
        model="tiny_resnet",
        epochs=args.epochs,
        batch_size=args.batch_size,
        lr=args.lr,
        train_size=args.train_size,
        test_size=args.test_size,
        data_seed=args.data_seed,
        data_kwargs={"noise_std": 0.5},
    )
    policies, warmups, scalings = zip(*SCHEMES)
    return SweepConfig(
        name="precision_study",
        base=base,
        zipped=[
            SweepAxis.of("policy", policies),
            SweepAxis.of("warmup_epochs", warmups),
            SweepAxis.of("loss_scaling", scalings),
        ],
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=6)
    parser.add_argument("--train-size", type=int, default=384)
    parser.add_argument("--test-size", type=int, default=192)
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--lr", type=float, default=0.05)
    parser.add_argument("--data-seed", type=int, default=1)
    parser.add_argument("--workers", type=int, default=1,
                        help="shard the schemes over N processes")
    parser.add_argument("--store", default="sweeps/precision_study.jsonl",
                        help="JSONL result store (reruns resume from it)")
    args = parser.parse_args()

    sweep = build_sweep(args)
    run_sweep(sweep, store=args.store, workers=args.workers, progress=print)

    rows = result_rows(args.store, sweep=sweep)
    columns = ("policy", "formats", "warmup_epochs", "loss_scaling",
               "final_val_accuracy", "best_val_accuracy", "final_train_loss",
               "duration_s")
    print()
    print(format_table(rows, columns=columns))

    baseline = next((row for row in rows if row["policy"] == "fp32"), None)
    if baseline and baseline.get("final_val_accuracy") is not None:
        print("\nAccuracy gap to FP32 (negative = worse than baseline):")
        for row in rows:
            if row is baseline or row.get("final_val_accuracy") is None:
                continue
            gap = row["final_val_accuracy"] - baseline["final_val_accuracy"]
            print(f"  {row['policy']:<20} {gap:+.3f}")


if __name__ == "__main__":
    main()
