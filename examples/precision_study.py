#!/usr/bin/env python3
"""Precision study: posit vs FP16/FP8/fixed-point on the same training recipe.

Trains the same small model, on the same data, with the same optimizer, under
five number systems and prints a comparison table:

* FP32 (the baseline),
* posit(8,1)/(8,2) with the paper's warm-up + shifting,
* posit(16,1)/(16,2),
* FP16 mixed precision with loss scaling (Micikevicius et al. [9]),
* FP8 (E4M3 forward / E5M2 backward) with FP16 updates (Wang et al. [10]),
* 16-bit fixed point Q2.13 with stochastic rounding (Gupta et al. [7]).

This is the comparison the paper makes qualitatively in its related-work
discussion: posit at 8 bits retains accuracy where aggressive fixed-point
formats fall behind.

Every scheme is one :class:`~repro.api.ExperimentConfig` whose policy is a
preset name resolved by :func:`repro.api.build_policy` — the study is a list
of plain dicts, not six copies of training wiring.

Run with:  python examples/precision_study.py [--epochs N]
"""

from __future__ import annotations

import argparse
import time

from repro.api import ExperimentConfig, build_experiment


def run_one(label: str, policy, warmup: int, args, loss_scaling: bool = False) -> dict:
    config = ExperimentConfig(
        name=label,
        dataset="cifar_like",
        model="tiny_resnet",
        policy=policy,
        epochs=args.epochs,
        batch_size=args.batch_size,
        lr=args.lr,
        warmup_epochs=warmup,
        loss_scaling=loss_scaling,
        train_size=args.train_size,
        test_size=args.test_size,
        data_seed=args.data_seed,
        data_kwargs={"noise_std": 0.5},
    )
    start = time.time()
    history = build_experiment(config).run()
    return {
        "scheme": label,
        "val_accuracy": history.final_val_accuracy,
        "best_accuracy": history.best_val_accuracy,
        "train_loss": history.final_train_loss,
        "seconds": time.time() - start,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=6)
    parser.add_argument("--train-size", type=int, default=384)
    parser.add_argument("--test-size", type=int, default=192)
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--lr", type=float, default=0.05)
    parser.add_argument("--data-seed", type=int, default=1)
    args = parser.parse_args()

    schemes = [
        ("FP32", "fp32", 0, False),
        ("posit(8,1)/(8,2) + warm-up + shift", "cifar_paper", 1, False),
        ("posit(16,1)/(16,2) + warm-up", "imagenet_paper", 1, False),
        ("FP16 mixed precision + loss scaling", "fp16_mixed", 0, True),
        ("FP8 E4M3/E5M2", "fp8_mixed", 1, True),
        ("fixed point Q2.13 (stochastic)", "fixed_point", 0, False),
    ]

    results = []
    for label, policy, warmup, scaling in schemes:
        print(f"training: {label} ...")
        results.append(run_one(label, policy, warmup, args, loss_scaling=scaling))

    print(f"\n{'scheme':<40} {'val acc':>8} {'best':>8} {'loss':>8} {'time(s)':>8}")
    for row in results:
        print(f"{row['scheme']:<40} {row['val_accuracy']:>8.3f} {row['best_accuracy']:>8.3f} "
              f"{row['train_loss']:>8.3f} {row['seconds']:>8.0f}")
    baseline = results[0]["val_accuracy"]
    print("\nAccuracy gap to FP32 (negative = worse than baseline):")
    for row in results[1:]:
        print(f"  {row['scheme']:<40} {row['val_accuracy'] - baseline:+.3f}")


if __name__ == "__main__":
    main()
