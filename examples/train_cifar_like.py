#!/usr/bin/env python3
"""Cifar-10-style experiment: Cifar-ResNet trained in FP32 and in posit (Table III).

This is the reduced-scale analogue of the paper's Cifar-10 experiment
(Table III, left column).  The real experiment trains Cifar-ResNet-18 for 300
epochs on Cifar-10 with batch size 512; here we train a scaled-down Cifar
ResNet on the synthetic cifar-like dataset so the run finishes in minutes on
a CPU, but every methodological ingredient is the same:

* the paper's layer-wise format assignment — posit(8,1)/(8,2) for CONV
  layers, posit(16,1)/(16,2) for BN layers (Table III footnote 1);
* 1 epoch of FP32 warm-up training;
* distribution-based shifting with sigma = 2;
* SGD with momentum 0.9 and step learning-rate decay.

The quantity to compare is the *gap* between the FP32 row and the posit row,
which the paper reports as ~0.5 % (93.40 vs 92.87).

Run with:  python examples/train_cifar_like.py [--epochs N] [--train-size N]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.core import PositTrainer, QuantizationPolicy, WarmupSchedule
from repro.data import cifar_like, train_loader
from repro.data.loaders import test_loader as make_test_loader
from repro.models import ResNet
from repro.nn import CrossEntropyLoss
from repro.optim import SGD, MultiStepLR


def build_model(seed: int) -> ResNet:
    """A Cifar-style ResNet scaled down (width 8, 3 stages) for CPU training."""
    return ResNet(stage_blocks=(1, 1, 1), num_classes=10, base_width=8,
                  stem="cifar", rng=np.random.default_rng(seed))


def run_experiment(label: str, policy, warmup_epochs: int, args, seed: int = 0) -> dict:
    dataset = cifar_like(num_train=args.train_size, num_test=args.test_size,
                         noise_std=0.5, seed=args.data_seed)
    train = train_loader(dataset, batch_size=args.batch_size, seed=seed)
    val = make_test_loader(dataset, batch_size=256)

    model = build_model(seed)
    optimizer = SGD(model.parameters(), lr=args.lr, momentum=0.9, weight_decay=5e-4)
    scheduler = MultiStepLR(optimizer, milestones=(args.epochs // 2, 3 * args.epochs // 4))
    trainer = PositTrainer(model, optimizer, CrossEntropyLoss(), policy=policy,
                           warmup=WarmupSchedule(warmup_epochs), scheduler=scheduler,
                           verbose=args.verbose)
    start = time.time()
    history = trainer.fit(train, val, epochs=args.epochs)
    elapsed = time.time() - start
    result = {
        "label": label,
        "final_val_accuracy": history.final_val_accuracy,
        "best_val_accuracy": history.best_val_accuracy,
        "final_train_loss": history.final_train_loss,
        "seconds": elapsed,
    }
    print(f"{label:<40} val acc {result['final_val_accuracy']:.3f} "
          f"(best {result['best_val_accuracy']:.3f})  [{elapsed:.0f}s]")
    return result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--train-size", type=int, default=512)
    parser.add_argument("--test-size", type=int, default=256)
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--lr", type=float, default=0.05)
    parser.add_argument("--data-seed", type=int, default=1)
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args()

    print("Cifar-like experiment (Table III, reduced scale)")
    print(f"  dataset: {args.train_size} train / {args.test_size} test synthetic 32x32 images")
    print(f"  model:   Cifar ResNet (3 stages, width 8), {args.epochs} epochs\n")

    results = [
        run_experiment("FP32 baseline", None, 0, args),
        run_experiment("posit CONV(8,1)/(8,2) + BN(16,1)/(16,2)",
                       QuantizationPolicy.cifar_paper(), 1, args),
        run_experiment("posit(8,*) everywhere, no warm-up, no shifting",
                       QuantizationPolicy.uniform(8, use_scaling=False), 0, args),
    ]

    print("\nSummary (compare the FP32-vs-posit gap, as in Table III):")
    baseline = results[0]["final_val_accuracy"]
    for result in results:
        gap = baseline - result["final_val_accuracy"]
        print(f"  {result['label']:<45} accuracy {result['final_val_accuracy']:.3f} "
              f"(gap to FP32: {gap:+.3f})")


if __name__ == "__main__":
    main()
