#!/usr/bin/env python3
"""Cifar-10-style experiment: Cifar-ResNet trained in FP32 and in posit (Table III).

This is the reduced-scale analogue of the paper's Cifar-10 experiment
(Table III, left column).  The real experiment trains Cifar-ResNet-18 for 300
epochs on Cifar-10 with batch size 512; here we train a scaled-down Cifar
ResNet on the synthetic cifar-like dataset so the run finishes in minutes on
a CPU, but every methodological ingredient is the same:

* the paper's layer-wise format assignment — posit(8,1)/(8,2) for CONV
  layers, posit(16,1)/(16,2) for BN layers (Table III footnote 1);
* 1 epoch of FP32 warm-up training;
* distribution-based shifting with sigma = 2;
* SGD with momentum 0.9 and step learning-rate decay.

The quantity to compare is the *gap* between the FP32 row and the posit row,
which the paper reports as ~0.5 % (93.40 vs 92.87).

The study is expressed as a :class:`~repro.sweeps.SweepConfig` — a base
:class:`~repro.api.ExperimentConfig` plus one zipped (policy, warmup) axis —
and executed through :func:`~repro.sweeps.run_sweep`, so it shares the sweep
engine's resume (re-running skips finished cells), store, and reporting
machinery with every other study.  The same sweep could live in a JSON file
and run as ``repro sweep run``.

Run with:  python examples/train_cifar_like.py [--epochs N] [--train-size N]
"""

from __future__ import annotations

import argparse
import os
import tempfile

from repro.api import ExperimentConfig, build_policy
from repro.sweeps import SweepAxis, SweepConfig, format_table, result_rows, run_sweep


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--train-size", type=int, default=512)
    parser.add_argument("--test-size", type=int, default=256)
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--lr", type=float, default=0.05)
    parser.add_argument("--data-seed", type=int, default=1)
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the three runs")
    parser.add_argument("--store", default=None,
                        help="JSONL result store (default: a temp file; pass a "
                             "path to make re-runs resume)")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args()

    base = ExperimentConfig(
        dataset="cifar_like",
        model="cifar_resnet",
        epochs=args.epochs,
        batch_size=args.batch_size,
        lr=args.lr,
        weight_decay=5e-4,
        scheduler="multistep",
        train_size=args.train_size,
        test_size=args.test_size,
        data_seed=args.data_seed,
        verbose=args.verbose,
        data_kwargs={"noise_std": 0.5},
    )
    # Policies are data: the third cell takes the uniform(8) preset and
    # switches off the stabilizing shift via its dict form.  Each policy is
    # zipped with its warm-up length (the paper warms posit runs up in FP32).
    sweep = SweepConfig(
        name="train_cifar_like",
        base=base,
        zipped=(
            SweepAxis.of("policy",
                         ["fp32",
                          "cifar_paper",
                          {**build_policy("uniform(8)").to_dict(),
                           "use_scaling": False}]),
            SweepAxis.of("warmup_epochs", [0, 1, 0], label="warmup"),
        ),
    )

    print("Cifar-like experiment (Table III, reduced scale)")
    print(f"  dataset: {args.train_size} train / {args.test_size} test "
          f"synthetic 32x32 images")
    print(f"  model:   Cifar ResNet (3 stages, width 8), {args.epochs} epochs\n")

    if args.store:
        store, temp_store = args.store, None
    else:
        fd, temp_store = tempfile.mkstemp(suffix=".jsonl")
        os.close(fd)
        store = temp_store
    try:
        summary = run_sweep(sweep, store=store, workers=args.workers,
                            progress=print)
        if summary.failed:
            # Keep the store: it holds the failed cells' tracebacks.
            temp_store = None
            raise SystemExit(f"{summary.failed} run(s) failed (store: {store})")

        rows = result_rows(store, sweep=sweep)
        print()
        print(format_table(rows, columns=("name", "warmup", "final_val_accuracy",
                                          "best_val_accuracy", "duration_s")))

        baseline = next(row for row in rows if row["policy"] == "fp32")
        print("\nSummary (compare the FP32-vs-posit gap, as in Table III):")
        for row in rows:
            gap = baseline["final_val_accuracy"] - row["final_val_accuracy"]
            print(f"  {row['name']:<60} accuracy {row['final_val_accuracy']:.3f} "
                  f"(gap to FP32: {gap:+.3f})")
    finally:
        if temp_store is not None and os.path.exists(temp_store):
            os.unlink(temp_store)


if __name__ == "__main__":
    main()
