#!/usr/bin/env python3
"""Cifar-10-style experiment: Cifar-ResNet trained in FP32 and in posit (Table III).

This is the reduced-scale analogue of the paper's Cifar-10 experiment
(Table III, left column).  The real experiment trains Cifar-ResNet-18 for 300
epochs on Cifar-10 with batch size 512; here we train a scaled-down Cifar
ResNet on the synthetic cifar-like dataset so the run finishes in minutes on
a CPU, but every methodological ingredient is the same:

* the paper's layer-wise format assignment — posit(8,1)/(8,2) for CONV
  layers, posit(16,1)/(16,2) for BN layers (Table III footnote 1);
* 1 epoch of FP32 warm-up training;
* distribution-based shifting with sigma = 2;
* SGD with momentum 0.9 and step learning-rate decay.

The quantity to compare is the *gap* between the FP32 row and the posit row,
which the paper reports as ~0.5 % (93.40 vs 92.87).

The wiring is fully declarative through :mod:`repro.api`: each run is an
:class:`~repro.api.ExperimentConfig` whose policy is a preset name
("cifar_paper") or spec — the same config could come from a JSON file.

Run with:  python examples/train_cifar_like.py [--epochs N] [--train-size N]
"""

from __future__ import annotations

import argparse
import time

from repro.api import ExperimentConfig, build_experiment, build_policy


def run_experiment(label: str, policy, warmup_epochs: int, args) -> dict:
    config = ExperimentConfig(
        name=label,
        dataset="cifar_like",
        model="cifar_resnet",
        policy=policy,
        epochs=args.epochs,
        batch_size=args.batch_size,
        lr=args.lr,
        weight_decay=5e-4,
        warmup_epochs=warmup_epochs,
        scheduler="multistep",
        train_size=args.train_size,
        test_size=args.test_size,
        data_seed=args.data_seed,
        verbose=args.verbose,
        data_kwargs={"noise_std": 0.5},
    )
    start = time.time()
    history = build_experiment(config).run()
    elapsed = time.time() - start
    result = {
        "label": label,
        "final_val_accuracy": history.final_val_accuracy,
        "best_val_accuracy": history.best_val_accuracy,
        "final_train_loss": history.final_train_loss,
        "seconds": elapsed,
    }
    print(f"{label:<40} val acc {result['final_val_accuracy']:.3f} "
          f"(best {result['best_val_accuracy']:.3f})  [{elapsed:.0f}s]")
    return result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--train-size", type=int, default=512)
    parser.add_argument("--test-size", type=int, default=256)
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--lr", type=float, default=0.05)
    parser.add_argument("--data-seed", type=int, default=1)
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args()

    print("Cifar-like experiment (Table III, reduced scale)")
    print(f"  dataset: {args.train_size} train / {args.test_size} test synthetic 32x32 images")
    print(f"  model:   Cifar ResNet (3 stages, width 8), {args.epochs} epochs\n")

    results = [
        run_experiment("FP32 baseline", "fp32", 0, args),
        run_experiment("posit CONV(8,1)/(8,2) + BN(16,1)/(16,2)", "cifar_paper", 1, args),
        run_experiment(
            "posit(8,*) everywhere, no warm-up, no shifting",
            # Policies are data: take the uniform(8) preset and switch off
            # the stabilizing shift via its dict form.
            {**build_policy("uniform(8)").to_dict(), "use_scaling": False},
            0, args),
    ]

    print("\nSummary (compare the FP32-vs-posit gap, as in Table III):")
    baseline = results[0]["final_val_accuracy"]
    for result in results:
        gap = baseline - result["final_val_accuracy"]
        print(f"  {result['label']:<45} accuracy {result['final_val_accuracy']:.3f} "
              f"(gap to FP32: {gap:+.3f})")


if __name__ == "__main__":
    main()
