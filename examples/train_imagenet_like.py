#!/usr/bin/env python3
"""ImageNet-style experiment: ResNet-18 stem trained in FP32 and in 16-bit posit.

Reduced-scale analogue of the paper's ImageNet experiment (Table III, right
column): ResNet-18 trained with posit(16,1) for the forward pass and weight
update and posit(16,2) for the backward pass, after 5 epochs of FP32 warm-up.

Differences from the paper, forced by the offline CPU setting and documented
in DESIGN.md: the dataset is the synthetic imagenet-like generator (64x64
images, 20 classes) instead of ImageNet-1k, the model keeps the ImageNet stem
(7x7 stride-2 conv + max pool + 4 stages) but uses a width of 8, and the run
is a handful of epochs.  The claim under test is the relative one: the 16-bit
posit run tracks the FP32 run.

The wiring is declarative through :mod:`repro.api`.

Run with:  python examples/train_imagenet_like.py [--epochs N]
"""

from __future__ import annotations

import argparse
import time

from repro.api import ExperimentConfig, build_experiment


def run(label: str, policy, warmup_epochs: int, args) -> dict:
    config = ExperimentConfig(
        name=label,
        dataset="imagenet_like",
        model="imagenet_resnet",
        policy=policy,
        epochs=args.epochs,
        batch_size=args.batch_size,
        lr=args.lr,
        weight_decay=1e-4,
        warmup_epochs=warmup_epochs,
        scheduler="step",
        train_size=args.train_size,
        test_size=args.test_size,
        num_classes=args.classes,
        data_seed=args.data_seed,
        verbose=args.verbose,
        data_kwargs={"image_size": args.image_size},
    )
    start = time.time()
    history = build_experiment(config).run()
    elapsed = time.time() - start
    print(f"{label:<42} val acc {history.final_val_accuracy:.3f} "
          f"(best {history.best_val_accuracy:.3f})  [{elapsed:.0f}s]")
    return {"label": label, "accuracy": history.final_val_accuracy}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=6)
    parser.add_argument("--train-size", type=int, default=384)
    parser.add_argument("--test-size", type=int, default=192)
    parser.add_argument("--classes", type=int, default=8)
    parser.add_argument("--image-size", type=int, default=32)
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--lr", type=float, default=0.05)
    parser.add_argument("--data-seed", type=int, default=2)
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args()

    print("ImageNet-like experiment (Table III, reduced scale)")
    print(f"  dataset: {args.train_size} train / {args.test_size} test synthetic "
          f"{args.image_size}x{args.image_size} images, {args.classes} classes")
    print(f"  model:   ResNet (ImageNet stem, width 8), {args.epochs} epochs\n")

    results = [
        run("FP32 baseline", "fp32", 0, args),
        run("posit(16,1) fwd/update, (16,2) bwd, warm-up",
            "imagenet_paper", min(2, args.epochs - 1), args),
    ]
    gap = results[0]["accuracy"] - results[1]["accuracy"]
    print(f"\nFP32-vs-posit16 accuracy gap: {gap:+.3f} "
          f"(the paper reports -0.07 %, i.e. posit slightly ahead)")


if __name__ == "__main__":
    main()
