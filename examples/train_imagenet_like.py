#!/usr/bin/env python3
"""ImageNet-style experiment: ResNet-18 stem trained in FP32 and in 16-bit posit.

Reduced-scale analogue of the paper's ImageNet experiment (Table III, right
column): ResNet-18 trained with posit(16,1) for the forward pass and weight
update and posit(16,2) for the backward pass, after 5 epochs of FP32 warm-up.

Differences from the paper, forced by the offline CPU setting and documented
in DESIGN.md: the dataset is the synthetic imagenet-like generator (64x64
images, 20 classes) instead of ImageNet-1k, the model keeps the ImageNet stem
(7x7 stride-2 conv + max pool + 4 stages) but uses a width of 8, and the run
is a handful of epochs.  The claim under test is the relative one: the 16-bit
posit run tracks the FP32 run.

Run with:  python examples/train_imagenet_like.py [--epochs N]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.core import PositTrainer, QuantizationPolicy, WarmupSchedule
from repro.data import imagenet_like, train_loader
from repro.data.loaders import test_loader as make_test_loader
from repro.models import ResNet
from repro.nn import CrossEntropyLoss
from repro.optim import SGD, StepLR


def build_model(num_classes: int, seed: int) -> ResNet:
    """ResNet with the ImageNet stem, scaled down to width 8 / (1,1,1,1) blocks."""
    return ResNet(stage_blocks=(1, 1, 1, 1), num_classes=num_classes, base_width=8,
                  stem="imagenet", rng=np.random.default_rng(seed))


def run(label: str, policy, warmup_epochs: int, args, seed: int = 0) -> dict:
    dataset = imagenet_like(num_train=args.train_size, num_test=args.test_size,
                            num_classes=args.classes, image_size=args.image_size,
                            seed=args.data_seed)
    train = train_loader(dataset, batch_size=args.batch_size, seed=seed)
    val = make_test_loader(dataset, batch_size=128)

    model = build_model(args.classes, seed)
    optimizer = SGD(model.parameters(), lr=args.lr, momentum=0.9, weight_decay=1e-4)
    scheduler = StepLR(optimizer, step_size=max(args.epochs // 3, 1), gamma=0.1)
    trainer = PositTrainer(model, optimizer, CrossEntropyLoss(), policy=policy,
                           warmup=WarmupSchedule(warmup_epochs), scheduler=scheduler,
                           verbose=args.verbose)
    start = time.time()
    history = trainer.fit(train, val, epochs=args.epochs)
    elapsed = time.time() - start
    print(f"{label:<42} val acc {history.final_val_accuracy:.3f} "
          f"(best {history.best_val_accuracy:.3f})  [{elapsed:.0f}s]")
    return {"label": label, "accuracy": history.final_val_accuracy}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=6)
    parser.add_argument("--train-size", type=int, default=384)
    parser.add_argument("--test-size", type=int, default=192)
    parser.add_argument("--classes", type=int, default=8)
    parser.add_argument("--image-size", type=int, default=32)
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--lr", type=float, default=0.05)
    parser.add_argument("--data-seed", type=int, default=2)
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args()

    print("ImageNet-like experiment (Table III, reduced scale)")
    print(f"  dataset: {args.train_size} train / {args.test_size} test synthetic "
          f"{args.image_size}x{args.image_size} images, {args.classes} classes")
    print(f"  model:   ResNet (ImageNet stem, width 8), {args.epochs} epochs\n")

    results = [
        run("FP32 baseline", None, 0, args),
        run("posit(16,1) fwd/update, (16,2) bwd, warm-up",
            QuantizationPolicy.imagenet_paper(), min(2, args.epochs - 1), args),
    ]
    gap = results[0]["accuracy"] - results[1]["accuracy"]
    print(f"\nFP32-vs-posit16 accuracy gap: {gap:+.3f} "
          f"(the paper reports -0.07 %, i.e. posit slightly ahead)")


if __name__ == "__main__":
    main()
