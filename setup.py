"""Packaging for the posit DNN-training reproduction (Lu et al., SOCC 2019)."""
from setuptools import find_packages, setup

setup(
    name="repro-posit-training",
    version="0.9.0",
    description=(
        "Reproduction of 'Training Deep Neural Networks Using Posit Number "
        "System' (Lu et al., SOCC 2019): posit/float/fixed-point quantized "
        "training, hardware cost models, a declarative sweep engine, and a "
        "packed-artifact inference-serving subsystem with multi-worker "
        "serving and startup accuracy guardrails."
    ),
    packages=find_packages("src"),
    package_dir={"": "src"},
    python_requires=">=3.9",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ],
    },
)
