"""Quantization policies: which format goes where (§III-B "Adjust Dynamic Range").

A :class:`QuantizationPolicy` decides, for every layer and every tensor role
(weights, activations, errors, weight gradients), which number format to use
and whether distribution-based shifting is applied.  The paper's concrete
choices are provided as factory methods:

* :meth:`QuantizationPolicy.cifar_paper` — Table III footnote 1:
  posit(8,1) for CONV forward/update, posit(8,2) for CONV backward,
  posit(16,1)/(16,2) for BN layers.
* :meth:`QuantizationPolicy.imagenet_paper` — Table III footnote 2:
  posit(16,1) for forward/update and posit(16,2) for backward, everywhere.
* :meth:`QuantizationPolicy.uniform` — the same ``(n, es_forward)`` /
  ``(n, es_backward)`` pair for every layer, used by the es-selection and
  word-size sweeps.
* :meth:`QuantizationPolicy.float_baseline` — FP16/FP8 fake quantization for
  the mixed-precision float baselines ([9], [10]).

The paper's qualitative criterion for choosing ``es`` — gradients/errors have
wider dynamic range than weights/activations, so they get ``es = 2`` while
the forward tensors get ``es = 1`` — is what the default policies encode;
:mod:`repro.core.range_analysis` measures the ranges that justify it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..nn import BatchNorm2d, Conv2d, Linear, Module
from ..posit import FloatFormat, FloatQuantizer, PositConfig, PositQuantizer
from .scaling import ScaleEstimator
from .transform import LayerQuantContext, Quantizer

__all__ = ["Format", "RoleFormats", "QuantizationPolicy"]

#: A tensor format: a posit configuration, a float format, or ``None`` (FP32).
Format = Union[PositConfig, FloatFormat, None]


@dataclass(frozen=True)
class RoleFormats:
    """Number formats for the four tensor roles of one layer."""

    weight: Format = None
    activation: Format = None
    error: Format = None
    weight_grad: Format = None

    @classmethod
    def posit(cls, forward: PositConfig, backward: PositConfig) -> "RoleFormats":
        """Forward roles (weights/activations/ΔW-update) vs backward roles (errors/ΔW).

        Following Fig. 3 and the Table III footnotes, the *weight gradient* is
        produced by the backward pass and therefore uses the backward format,
        while the stored weights and activations use the forward format.
        """
        return cls(weight=forward, activation=forward, error=backward, weight_grad=backward)

    @classmethod
    def full_precision(cls) -> "RoleFormats":
        """All roles stay in FP32."""
        return cls()

    def as_dict(self) -> dict:
        """Role-to-format mapping with human-readable format names."""
        def _name(fmt: Format) -> str:
            return "fp32" if fmt is None else str(fmt)

        return {
            "weight": _name(self.weight),
            "activation": _name(self.activation),
            "error": _name(self.error),
            "weight_grad": _name(self.weight_grad),
        }


def _make_quantizer(fmt: Format, rounding: str,
                    rng: Optional[np.random.Generator]) -> Optional[Quantizer]:
    """Instantiate the appropriate quantizer for a format descriptor."""
    if fmt is None:
        return None
    if isinstance(fmt, PositConfig):
        return PositQuantizer(fmt, rounding=rounding, rng=rng)
    if isinstance(fmt, FloatFormat):
        float_rounding = "stochastic" if rounding == "stochastic" else "nearest"
        return FloatQuantizer(fmt, rounding=float_rounding, rng=rng)
    if hasattr(fmt, "make_quantizer"):
        # Extension hook for baseline formats (e.g. fixed point).
        return fmt.make_quantizer(rounding=rounding, rng=rng)
    raise TypeError(f"unsupported format descriptor: {fmt!r}")


class QuantizationPolicy:
    """Maps model layers to per-layer quantization contexts.

    Parameters
    ----------
    conv_formats, bn_formats, linear_formats:
        Role formats for convolution, batch-norm, and fully-connected layers.
        ``linear_formats`` defaults to ``conv_formats`` (the paper does not
        single out the classifier head).
    rounding:
        Rounding mode for the posit transformation; the paper uses
        round-to-zero (``"zero"``) for hardware friendliness.
    use_scaling:
        Whether distribution-based shifting (Eq. (2)/(3)) is applied.
    sigma:
        The σ constant of Eq. (2).
    scale_mode:
        ``"dynamic"`` or ``"calibrated"`` (see :class:`~repro.core.scaling.ScaleEstimator`).
    first_layer_full_precision, last_layer_full_precision:
        Common quantized-training practice keeps the first conv and the final
        classifier in full precision; both default to False because the paper
        quantizes everything, but the ablation benchmarks exercise them.
    seed:
        Seed for stochastic rounding, if selected.
    """

    def __init__(
        self,
        conv_formats: RoleFormats,
        bn_formats: Optional[RoleFormats] = None,
        linear_formats: Optional[RoleFormats] = None,
        rounding: str = "zero",
        use_scaling: bool = True,
        sigma: int = 2,
        scale_mode: str = "dynamic",
        first_layer_full_precision: bool = False,
        last_layer_full_precision: bool = False,
        seed: Optional[int] = None,
    ):
        self.conv_formats = conv_formats
        self.bn_formats = bn_formats if bn_formats is not None else conv_formats
        self.linear_formats = linear_formats if linear_formats is not None else conv_formats
        self.rounding = rounding
        self.use_scaling = use_scaling
        self.sigma = sigma
        self.scale_mode = scale_mode
        self.first_layer_full_precision = first_layer_full_precision
        self.last_layer_full_precision = last_layer_full_precision
        self.seed = seed

    # ------------------------------------------------------------------ #
    # Paper presets
    # ------------------------------------------------------------------ #
    @classmethod
    def cifar_paper(cls, **overrides) -> "QuantizationPolicy":
        """Table III footnote 1: 8-bit posit for CONV, 16-bit posit for BN."""
        return cls(
            conv_formats=RoleFormats.posit(PositConfig(8, 1), PositConfig(8, 2)),
            bn_formats=RoleFormats.posit(PositConfig(16, 1), PositConfig(16, 2)),
            linear_formats=RoleFormats.posit(PositConfig(8, 1), PositConfig(8, 2)),
            **overrides,
        )

    @classmethod
    def imagenet_paper(cls, **overrides) -> "QuantizationPolicy":
        """Table III footnote 2: posit(16,1) forward/update, posit(16,2) backward."""
        formats = RoleFormats.posit(PositConfig(16, 1), PositConfig(16, 2))
        return cls(conv_formats=formats, bn_formats=formats, linear_formats=formats, **overrides)

    @classmethod
    def uniform(cls, n: int, es_forward: int = 1, es_backward: int = 2,
                **overrides) -> "QuantizationPolicy":
        """The same ``(n, es)`` assignment for every layer type."""
        formats = RoleFormats.posit(PositConfig(n, es_forward), PositConfig(n, es_backward))
        return cls(conv_formats=formats, bn_formats=formats, linear_formats=formats, **overrides)

    @classmethod
    def float_baseline(cls, forward_format: FloatFormat, backward_format: FloatFormat,
                       **overrides) -> "QuantizationPolicy":
        """Reduced-precision float baseline (FP16/FP8 mixed precision)."""
        formats = RoleFormats(
            weight=forward_format,
            activation=forward_format,
            error=backward_format,
            weight_grad=backward_format,
        )
        return cls(conv_formats=formats, bn_formats=formats, linear_formats=formats, **overrides)

    @classmethod
    def full_precision(cls, **overrides) -> "QuantizationPolicy":
        """No quantization anywhere (FP32 baseline expressed as a policy)."""
        return cls(conv_formats=RoleFormats.full_precision(), **overrides)

    # ------------------------------------------------------------------ #
    def formats_for(self, module: Module) -> Optional[RoleFormats]:
        """Return the role formats for ``module``, or None for unhandled types."""
        if isinstance(module, Conv2d):
            return self.conv_formats
        if isinstance(module, BatchNorm2d):
            return self.bn_formats
        if isinstance(module, Linear):
            return self.linear_formats
        return None

    def _make_scaler(self) -> Optional[ScaleEstimator]:
        if not self.use_scaling:
            return None
        return ScaleEstimator(sigma=self.sigma, mode=self.scale_mode)

    def build_context(self, name: str, module: Module,
                      formats: RoleFormats) -> LayerQuantContext:
        """Build a :class:`LayerQuantContext` for one layer."""
        rng = np.random.default_rng(self.seed) if self.seed is not None else None
        return LayerQuantContext(
            name=name,
            weight_quantizer=_make_quantizer(formats.weight, self.rounding, rng),
            activation_quantizer=_make_quantizer(formats.activation, self.rounding, rng),
            error_quantizer=_make_quantizer(formats.error, self.rounding, rng),
            weight_grad_quantizer=_make_quantizer(formats.weight_grad, self.rounding, rng),
            weight_scaler=self._make_scaler() if formats.weight is not None else None,
            activation_scaler=self._make_scaler() if formats.activation is not None else None,
            error_scaler=self._make_scaler() if formats.error is not None else None,
            weight_grad_scaler=self._make_scaler() if formats.weight_grad is not None else None,
        )

    def attach(self, model: Module) -> dict[str, LayerQuantContext]:
        """Attach quantization contexts to every supported layer of ``model``.

        Returns the mapping from qualified layer name to context.  Layers the
        policy does not cover keep ``module.quant = None`` and therefore run
        in full precision.
        """
        quantizable = [
            (name, module)
            for name, module in model.named_modules()
            if self.formats_for(module) is not None
        ]
        contexts: dict[str, LayerQuantContext] = {}
        for index, (name, module) in enumerate(quantizable):
            formats = self.formats_for(module)
            if self.first_layer_full_precision and index == 0:
                formats = RoleFormats.full_precision()
            if self.last_layer_full_precision and index == len(quantizable) - 1:
                formats = RoleFormats.full_precision()
            context = self.build_context(name, module, formats)
            module.quant = context
            contexts[name] = context
        return contexts

    @staticmethod
    def detach(model: Module) -> None:
        """Remove all quantization contexts from ``model`` (back to FP32)."""
        for _, module in model.named_modules():
            module.quant = None

    @staticmethod
    def set_enabled(model: Module, enabled: bool) -> None:
        """Enable or disable all attached contexts without removing them."""
        for _, module in model.named_modules():
            if module.quant is not None:
                module.quant.enabled = enabled

    def describe(self) -> dict:
        """Summarize the policy's format assignments and options."""
        return {
            "conv": self.conv_formats.as_dict(),
            "bn": self.bn_formats.as_dict(),
            "linear": self.linear_formats.as_dict(),
            "rounding": self.rounding,
            "use_scaling": self.use_scaling,
            "sigma": self.sigma,
            "scale_mode": self.scale_mode,
            "first_layer_full_precision": self.first_layer_full_precision,
            "last_layer_full_precision": self.last_layer_full_precision,
        }

    def with_overrides(self, **changes) -> "QuantizationPolicy":
        """Return a copy of the policy with the given attributes replaced."""
        current = {
            "conv_formats": self.conv_formats,
            "bn_formats": self.bn_formats,
            "linear_formats": self.linear_formats,
            "rounding": self.rounding,
            "use_scaling": self.use_scaling,
            "sigma": self.sigma,
            "scale_mode": self.scale_mode,
            "first_layer_full_precision": self.first_layer_full_precision,
            "last_layer_full_precision": self.last_layer_full_precision,
            "seed": self.seed,
        }
        current.update(changes)
        return QuantizationPolicy(**current)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QuantizationPolicy(conv={self.conv_formats.as_dict()}, bn={self.bn_formats.as_dict()})"
