"""Quantization policies: which format goes where (§III-B "Adjust Dynamic Range").

A :class:`QuantizationPolicy` decides, for every layer and every tensor role
(weights, activations, errors, weight gradients), which number format to use
and whether distribution-based shifting is applied.  The paper's concrete
choices are provided as factory methods:

* :meth:`QuantizationPolicy.cifar_paper` — Table III footnote 1:
  posit(8,1) for CONV forward/update, posit(8,2) for CONV backward,
  posit(16,1)/(16,2) for BN layers.
* :meth:`QuantizationPolicy.imagenet_paper` — Table III footnote 2:
  posit(16,1) for forward/update and posit(16,2) for backward, everywhere.
* :meth:`QuantizationPolicy.uniform` — the same ``(n, es_forward)`` /
  ``(n, es_backward)`` pair for every layer, used by the es-selection and
  word-size sweeps.
* :meth:`QuantizationPolicy.float_baseline` — FP16/FP8 fake quantization for
  the mixed-precision float baselines ([9], [10]).

The paper's qualitative criterion for choosing ``es`` — gradients/errors have
wider dynamic range than weights/activations, so they get ``es = 2`` while
the forward tensors get ``es = 1`` — is what the default policies encode;
:mod:`repro.core.range_analysis` measures the ranges that justify it.

Formats are uniform :class:`~repro.formats.NumberFormat` values (posit,
float, or fixed point) and policies are constructible declaratively from
registry spec strings: :meth:`RoleFormats.from_specs`,
:meth:`QuantizationPolicy.from_dict` (the inverse of
:meth:`QuantizationPolicy.to_dict`), and
:meth:`QuantizationPolicy.uniform_format`.  Quantizer instances come from
the cached :func:`repro.formats.get_quantizer` factory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Union

import numpy as np

from ..formats import NumberFormat, as_format, get_quantizer
from ..nn import BatchNorm2d, Conv2d, Linear, Module
from ..posit import FloatFormat, PositConfig
from .scaling import ScaleEstimator
from .transform import LayerQuantContext, Quantizer

__all__ = ["TensorFormat", "RoleFormats", "QuantizationPolicy"]

#: A tensor format: any :class:`~repro.formats.NumberFormat` or ``None`` (FP32).
#: (The pre-NumberFormat ``Format`` union alias went through its two-PR
#: deprecation window and was removed; annotate with ``TensorFormat``.)
TensorFormat = Optional[NumberFormat]

#: Role spec strings that mean "leave this tensor in full precision".  Note
#: that at the *policy* level ``"fp32"`` (and its named aliases) maps to
#: ``None`` (no quantizer at all); to fake-quantize through the FP32 grid
#: explicitly, pass the :data:`repro.posit.FP32` format object or the
#: structural spec ``"float(8,23)"``.  ``repro.api.build_policy`` uses the
#: same set so policy-level and role-level synonyms cannot diverge.
_FULL_PRECISION_SPECS = frozenset({"", "fp32", "none", "full", "float32"})


def _as_role_format(value: Union[NumberFormat, str, None]) -> TensorFormat:
    """Resolve one role entry: ``None``/"fp32"-style specs mean full precision."""
    if value is None:
        return None
    if isinstance(value, str) and value.strip().lower() in _FULL_PRECISION_SPECS:
        return None
    return as_format(value)


def _role_name(fmt: TensorFormat) -> str:
    """Round-trippable name for a role format (``"fp32"`` for ``None``)."""
    if fmt is None:
        return "fp32"
    if hasattr(fmt, "spec"):
        spec = fmt.spec()
        if spec in _FULL_PRECISION_SPECS:
            # An explicit FP32 FloatFormat role must not round-trip to None:
            # serialize it structurally so from_dict rebuilds a format with
            # identical quantization behaviour (the FP32 fast path keys on
            # exponent/mantissa widths, not on the named constant).
            return f"float({fmt.exponent_bits},{fmt.mantissa_bits})"
        return spec
    return str(fmt)


@dataclass(frozen=True)
class RoleFormats:
    """Number formats for the four tensor roles of one layer."""

    weight: TensorFormat = None
    activation: TensorFormat = None
    error: TensorFormat = None
    weight_grad: TensorFormat = None

    @classmethod
    def posit(cls, forward: PositConfig, backward: PositConfig) -> "RoleFormats":
        """Forward roles (weights/activations/ΔW-update) vs backward roles (errors/ΔW).

        Following Fig. 3 and the Table III footnotes, the *weight gradient* is
        produced by the backward pass and therefore uses the backward format,
        while the stored weights and activations use the forward format.
        """
        return cls(weight=forward, activation=forward, error=backward, weight_grad=backward)

    @classmethod
    def full_precision(cls) -> "RoleFormats":
        """All roles stay in FP32."""
        return cls()

    @classmethod
    def from_specs(cls, weight=None, activation=None, error=None,
                   weight_grad=None) -> "RoleFormats":
        """Build role formats from spec strings and/or format objects.

        Each role accepts a :class:`~repro.formats.NumberFormat`, a registry
        spec string (``"posit(8,1)"``, ``"fp8_e4m3"``, ``"fixed(16,13)"``),
        or ``None``/``"fp32"`` for full precision.
        """
        return cls(
            weight=_as_role_format(weight),
            activation=_as_role_format(activation),
            error=_as_role_format(error),
            weight_grad=_as_role_format(weight_grad),
        )

    @classmethod
    def uniform(cls, fmt: Union[NumberFormat, str, None]) -> "RoleFormats":
        """The same format (object or spec string) for all four roles."""
        resolved = _as_role_format(fmt)
        return cls(weight=resolved, activation=resolved,
                   error=resolved, weight_grad=resolved)

    @classmethod
    def from_dict(cls, mapping: Mapping[str, Union[NumberFormat, str, None]]) -> "RoleFormats":
        """Inverse of :meth:`as_dict`: build role formats from a plain dict."""
        roles = {"weight", "activation", "error", "weight_grad"}
        unknown = set(mapping) - roles
        if unknown:
            raise ValueError(
                f"unknown tensor roles {sorted(unknown)}; expected a subset of {sorted(roles)}"
            )
        return cls.from_specs(**mapping)

    def as_dict(self) -> dict:
        """Role-to-format mapping with round-trippable spec strings."""
        return {
            "weight": _role_name(self.weight),
            "activation": _role_name(self.activation),
            "error": _role_name(self.error),
            "weight_grad": _role_name(self.weight_grad),
        }


def _make_quantizer(fmt: TensorFormat, rounding: str,
                    rng: Optional[np.random.Generator]) -> Optional[Quantizer]:
    """Instantiate the quantizer for a format descriptor.

    .. deprecated:: thin wrapper around the cached
       :func:`repro.formats.get_quantizer` factory, kept for callers of the
       old private helper.
    """
    return get_quantizer(fmt, rounding=rounding, rng=rng)


class QuantizationPolicy:
    """Maps model layers to per-layer quantization contexts.

    Parameters
    ----------
    conv_formats, bn_formats, linear_formats:
        Role formats for convolution, batch-norm, and fully-connected layers.
        ``linear_formats`` defaults to ``conv_formats`` (the paper does not
        single out the classifier head).
    rounding:
        Rounding mode for the posit transformation; the paper uses
        round-to-zero (``"zero"``) for hardware friendliness.
    use_scaling:
        Whether distribution-based shifting (Eq. (2)/(3)) is applied.
    sigma:
        The σ constant of Eq. (2).
    scale_mode:
        ``"dynamic"`` or ``"calibrated"`` (see :class:`~repro.core.scaling.ScaleEstimator`).
    first_layer_full_precision, last_layer_full_precision:
        Common quantized-training practice keeps the first conv and the final
        classifier in full precision; both default to False because the paper
        quantizes everything, but the ablation benchmarks exercise them.
    seed:
        Seed for stochastic rounding, if selected.
    """

    def __init__(
        self,
        conv_formats: RoleFormats,
        bn_formats: Optional[RoleFormats] = None,
        linear_formats: Optional[RoleFormats] = None,
        rounding: str = "zero",
        use_scaling: bool = True,
        sigma: int = 2,
        scale_mode: str = "dynamic",
        first_layer_full_precision: bool = False,
        last_layer_full_precision: bool = False,
        seed: Optional[int] = None,
    ):
        self.conv_formats = conv_formats
        self.bn_formats = bn_formats if bn_formats is not None else conv_formats
        self.linear_formats = linear_formats if linear_formats is not None else conv_formats
        self.rounding = rounding
        self.use_scaling = use_scaling
        self.sigma = sigma
        self.scale_mode = scale_mode
        self.first_layer_full_precision = first_layer_full_precision
        self.last_layer_full_precision = last_layer_full_precision
        self.seed = seed

    # ------------------------------------------------------------------ #
    # Paper presets
    # ------------------------------------------------------------------ #
    @classmethod
    def cifar_paper(cls, **overrides) -> "QuantizationPolicy":
        """Table III footnote 1: 8-bit posit for CONV, 16-bit posit for BN."""
        return cls(
            conv_formats=RoleFormats.posit(PositConfig(8, 1), PositConfig(8, 2)),
            bn_formats=RoleFormats.posit(PositConfig(16, 1), PositConfig(16, 2)),
            linear_formats=RoleFormats.posit(PositConfig(8, 1), PositConfig(8, 2)),
            **overrides,
        )

    @classmethod
    def imagenet_paper(cls, **overrides) -> "QuantizationPolicy":
        """Table III footnote 2: posit(16,1) forward/update, posit(16,2) backward."""
        formats = RoleFormats.posit(PositConfig(16, 1), PositConfig(16, 2))
        return cls(conv_formats=formats, bn_formats=formats, linear_formats=formats, **overrides)

    @classmethod
    def uniform(cls, n: int, es_forward: int = 1, es_backward: int = 2,
                **overrides) -> "QuantizationPolicy":
        """The same ``(n, es)`` assignment for every layer type."""
        formats = RoleFormats.posit(PositConfig(n, es_forward), PositConfig(n, es_backward))
        return cls(conv_formats=formats, bn_formats=formats, linear_formats=formats, **overrides)

    @classmethod
    def float_baseline(cls, forward_format: FloatFormat, backward_format: FloatFormat,
                       **overrides) -> "QuantizationPolicy":
        """Reduced-precision float baseline (FP16/FP8 mixed precision)."""
        formats = RoleFormats(
            weight=forward_format,
            activation=forward_format,
            error=backward_format,
            weight_grad=backward_format,
        )
        return cls(conv_formats=formats, bn_formats=formats, linear_formats=formats, **overrides)

    @classmethod
    def full_precision(cls, **overrides) -> "QuantizationPolicy":
        """No quantization anywhere (FP32 baseline expressed as a policy)."""
        return cls(conv_formats=RoleFormats.full_precision(), **overrides)

    @classmethod
    def uniform_format(cls, fmt: Union[NumberFormat, str, None],
                       **overrides) -> "QuantizationPolicy":
        """One format (object or spec string) for every role and layer type.

        This is how a single-format sweep point — including fixed-point and
        float baselines — is expressed declaratively, e.g.
        ``QuantizationPolicy.uniform_format("fixed(16,13)", rounding="stochastic")``.
        """
        formats = RoleFormats.uniform(fmt)
        return cls(conv_formats=formats, bn_formats=formats,
                   linear_formats=formats, **overrides)

    # ------------------------------------------------------------------ #
    # Declarative (spec-string / dict) construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dict(cls, data: Mapping) -> "QuantizationPolicy":
        """Build a policy from the plain-dict form produced by :meth:`to_dict`.

        ``data["conv"]`` (required), ``data["bn"]`` and ``data["linear"]``
        (optional, defaulting to the conv assignment) are role->spec
        mappings; every other key is passed to the constructor unchanged.
        The round trip ``QuantizationPolicy.from_dict(p.to_dict())`` yields a
        policy with identical quantization behaviour, which makes policies
        JSON/YAML-able experiment inputs.
        """
        options = dict(data)
        if "conv" not in options:
            raise ValueError("policy dict requires a 'conv' role-format mapping")
        conv = RoleFormats.from_dict(options.pop("conv"))
        bn = options.pop("bn", None)
        linear = options.pop("linear", None)
        return cls(
            conv_formats=conv,
            bn_formats=RoleFormats.from_dict(bn) if bn is not None else None,
            linear_formats=RoleFormats.from_dict(linear) if linear is not None else None,
            **options,
        )

    def to_dict(self) -> dict:
        """JSON-able form of the policy; inverse of :meth:`from_dict`."""
        return {**self.describe(), "seed": self.seed}

    # ------------------------------------------------------------------ #
    def formats_for(self, module: Module) -> Optional[RoleFormats]:
        """Return the role formats for ``module``, or None for unhandled types."""
        if isinstance(module, Conv2d):
            return self.conv_formats
        if isinstance(module, BatchNorm2d):
            return self.bn_formats
        if isinstance(module, Linear):
            return self.linear_formats
        return None

    def _make_scaler(self) -> Optional[ScaleEstimator]:
        if not self.use_scaling:
            return None
        return ScaleEstimator(sigma=self.sigma, mode=self.scale_mode)

    def build_context(self, name: str, module: Module,
                      formats: RoleFormats) -> LayerQuantContext:
        """Build a :class:`LayerQuantContext` for one layer."""
        # With no explicit seed the quantizers are pure functions of
        # (format, rounding) and come from the shared cache; a seeded policy
        # gets per-context instances so layers keep independent rng streams.
        rng = np.random.default_rng(self.seed) if self.seed is not None else None
        return LayerQuantContext(
            name=name,
            weight_quantizer=get_quantizer(formats.weight, self.rounding, rng),
            activation_quantizer=get_quantizer(formats.activation, self.rounding, rng),
            error_quantizer=get_quantizer(formats.error, self.rounding, rng),
            weight_grad_quantizer=get_quantizer(formats.weight_grad, self.rounding, rng),
            weight_scaler=self._make_scaler() if formats.weight is not None else None,
            activation_scaler=self._make_scaler() if formats.activation is not None else None,
            error_scaler=self._make_scaler() if formats.error is not None else None,
            weight_grad_scaler=self._make_scaler() if formats.weight_grad is not None else None,
        )

    def attach(self, model: Module) -> dict[str, LayerQuantContext]:
        """Attach quantization contexts to every supported layer of ``model``.

        Returns the mapping from qualified layer name to context.  Layers the
        policy does not cover keep ``module.quant = None`` and therefore run
        in full precision.
        """
        quantizable = [
            (name, module)
            for name, module in model.named_modules()
            if self.formats_for(module) is not None
        ]
        contexts: dict[str, LayerQuantContext] = {}
        for index, (name, module) in enumerate(quantizable):
            formats = self.formats_for(module)
            if self.first_layer_full_precision and index == 0:
                formats = RoleFormats.full_precision()
            if self.last_layer_full_precision and index == len(quantizable) - 1:
                formats = RoleFormats.full_precision()
            context = self.build_context(name, module, formats)
            module.quant = context
            contexts[name] = context
        return contexts

    def export_formats(self, model: Module) -> dict[str, TensorFormat]:
        """Per-parameter **storage** formats mirroring the forward weight roles.

        The serving-artifact counterpart of :meth:`attach`: for every
        parameter of every layer the policy covers, the layer's *weight*
        role format (the tensor that actually lives in the packed artifact)
        is assigned — so a ``cifar_paper`` policy (posit(8,1) CONV,
        posit(16,1) BN) exports a genuinely mixed-precision artifact, the
        Table III assignment carried through to deployment.  ``None``
        values mean full precision (the exporter stores those as
        ``"fp32"``); parameters of uncovered layers are absent from the
        map and fall back to the exporter's default format.  The first- /
        last-layer full-precision flags apply exactly as in :meth:`attach`.
        """
        quantizable = [
            (name, module)
            for name, module in model.named_modules()
            if self.formats_for(module) is not None
        ]
        result: dict[str, TensorFormat] = {}
        for index, (name, module) in enumerate(quantizable):
            formats = self.formats_for(module)
            if self.first_layer_full_precision and index == 0:
                formats = RoleFormats.full_precision()
            if self.last_layer_full_precision and index == len(quantizable) - 1:
                formats = RoleFormats.full_precision()
            for param_name, _param in module.named_parameters():
                qualified = f"{name}.{param_name}" if name else param_name
                result[qualified] = formats.weight
        return result

    @staticmethod
    def detach(model: Module) -> None:
        """Remove all quantization contexts from ``model`` (back to FP32)."""
        for _, module in model.named_modules():
            module.quant = None

    @staticmethod
    def set_enabled(model: Module, enabled: bool) -> None:
        """Enable or disable all attached contexts without removing them."""
        for _, module in model.named_modules():
            if module.quant is not None:
                module.quant.enabled = enabled

    def describe(self) -> dict:
        """Summarize the policy's format assignments and options."""
        return {
            "conv": self.conv_formats.as_dict(),
            "bn": self.bn_formats.as_dict(),
            "linear": self.linear_formats.as_dict(),
            "rounding": self.rounding,
            "use_scaling": self.use_scaling,
            "sigma": self.sigma,
            "scale_mode": self.scale_mode,
            "first_layer_full_precision": self.first_layer_full_precision,
            "last_layer_full_precision": self.last_layer_full_precision,
        }

    def with_overrides(self, **changes) -> "QuantizationPolicy":
        """Return a copy of the policy with the given attributes replaced."""
        current = {
            "conv_formats": self.conv_formats,
            "bn_formats": self.bn_formats,
            "linear_formats": self.linear_formats,
            "rounding": self.rounding,
            "use_scaling": self.use_scaling,
            "sigma": self.sigma,
            "scale_mode": self.scale_mode,
            "first_layer_full_precision": self.first_layer_full_precision,
            "last_layer_full_precision": self.last_layer_full_precision,
            "seed": self.seed,
        }
        current.update(changes)
        return QuantizationPolicy(**current)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QuantizationPolicy(conv={self.conv_formats.as_dict()}, bn={self.bn_formats.as_dict()})"
