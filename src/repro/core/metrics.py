"""Training metrics and history records.

Collects per-epoch loss/accuracy (train and validation) plus any auxiliary
scalars the trainer wants to log (learning rate, quantization phase, scale
factors).  The benchmark harness serializes these records into the tables
reported in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = ["EpochRecord", "TrainingHistory", "AverageMeter"]


class AverageMeter:
    """Tracks a running mean of a scalar metric over an epoch."""

    def __init__(self, name: str = ""):
        self.name = name
        self.total = 0.0
        self.count = 0

    def update(self, value: float, count: int = 1) -> None:
        """Add ``value`` (already averaged over ``count`` samples) to the meter."""
        self.total += float(value) * count
        self.count += count

    @property
    def average(self) -> float:
        """Mean of all recorded values (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        """Clear the meter."""
        self.total = 0.0
        self.count = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AverageMeter({self.name!r}, average={self.average:.4f}, count={self.count})"


@dataclass
class EpochRecord:
    """Metrics for a single training epoch."""

    epoch: int
    train_loss: float
    train_accuracy: float
    val_loss: Optional[float] = None
    val_accuracy: Optional[float] = None
    learning_rate: Optional[float] = None
    quantized: bool = False
    extras: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """Return a flat dictionary representation."""
        record = {
            "epoch": self.epoch,
            "train_loss": self.train_loss,
            "train_accuracy": self.train_accuracy,
            "val_loss": self.val_loss,
            "val_accuracy": self.val_accuracy,
            "learning_rate": self.learning_rate,
            "quantized": self.quantized,
        }
        record.update(self.extras)
        return record


@dataclass
class TrainingHistory:
    """Sequence of :class:`EpochRecord` objects with convenience accessors."""

    records: list[EpochRecord] = field(default_factory=list)

    def append(self, record: EpochRecord) -> None:
        """Add one epoch record."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, index: int) -> EpochRecord:
        return self.records[index]

    @property
    def final_val_accuracy(self) -> Optional[float]:
        """Validation accuracy of the last epoch that reported one."""
        for record in reversed(self.records):
            if record.val_accuracy is not None:
                return record.val_accuracy
        return None

    @property
    def best_val_accuracy(self) -> Optional[float]:
        """Best validation accuracy observed over the run."""
        values = [r.val_accuracy for r in self.records if r.val_accuracy is not None]
        return max(values) if values else None

    @property
    def final_train_loss(self) -> Optional[float]:
        """Training loss of the last epoch."""
        return self.records[-1].train_loss if self.records else None

    def train_loss_curve(self) -> np.ndarray:
        """Training loss per epoch as an array."""
        return np.array([r.train_loss for r in self.records])

    def val_accuracy_curve(self) -> np.ndarray:
        """Validation accuracy per epoch (NaN where not evaluated)."""
        return np.array(
            [r.val_accuracy if r.val_accuracy is not None else np.nan for r in self.records]
        )

    def as_table(self) -> list[dict]:
        """Return all records as a list of dictionaries (one per epoch)."""
        return [r.as_dict() for r in self.records]

    def summary(self) -> dict:
        """Aggregate summary used by the benchmark reports."""
        return {
            "epochs": len(self.records),
            "final_val_accuracy": self.final_val_accuracy,
            "best_val_accuracy": self.best_val_accuracy,
            "final_train_loss": self.final_train_loss,
        }
