"""Per-layer dynamic-range analysis and es selection (§III-B "Adjust Dynamic Range").

The paper motivates its es assignment (es = 1 for weights/activations, es = 2
for gradients/errors) with a qualitative criterion: a tensor whose values
span a wider range in the log2 domain needs a posit format with a larger
dynamic range, i.e. a larger ``es``.  This module makes that criterion
executable:

* :func:`log2_range` measures a tensor's dynamic range as the difference
  between the maximum and minimum ``log2`` magnitude (the paper's measure).
* :func:`recommend_es` picks the smallest ``es`` whose posit format covers a
  measured range (with a safety margin), which is the "qualitative criteria
  to select a proper es" of the contribution list.
* :class:`RangeTracker` collects those measurements per layer and per role
  during a calibration pass or a training run, producing the evidence table
  that backs the policy choices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..posit import PositConfig

__all__ = ["log2_range", "covered_log2_range", "recommend_es", "RangeObservation", "RangeTracker"]


def log2_range(x: np.ndarray, percentile: float = 0.0) -> float:
    """Dynamic range of ``x`` in the log2 domain.

    Parameters
    ----------
    x:
        Tensor values.
    percentile:
        If non-zero, the range is measured between the ``percentile`` and
        ``100 - percentile`` percentiles of the magnitude distribution rather
        than the absolute min/max, which makes the measure robust to isolated
        outliers.
    """
    mag = np.abs(np.asarray(x, dtype=np.float64)).ravel()
    mag = mag[np.isfinite(mag) & (mag > 0)]
    if mag.size == 0:
        return 0.0
    if percentile > 0:
        low = np.percentile(mag, percentile)
        high = np.percentile(mag, 100 - percentile)
    else:
        low, high = mag.min(), mag.max()
    if low <= 0 or high <= 0:
        return 0.0
    return float(np.log2(high) - np.log2(low))


def covered_log2_range(config: PositConfig) -> float:
    """Total log2 range covered by a posit format, ``log2(maxpos / minpos)``."""
    return float(2 * config.max_exponent)


def recommend_es(measured_range: float, n: int, margin: float = 0.5,
                 max_es: int = 4) -> int:
    """Pick the smallest ``es`` whose ``(n, es)`` posit covers ``measured_range``.

    Parameters
    ----------
    measured_range:
        Dynamic range of the data in the log2 domain (e.g. from
        :func:`log2_range`).
    n:
        Posit word size under consideration.
    margin:
        Fractional head-room: the format must cover
        ``measured_range * (1 + margin)``.
    max_es:
        Upper bound on the returned ``es``.

    Returns
    -------
    int
        The recommended exponent field size.  When even ``max_es`` cannot
        cover the range, ``max_es`` is returned (the caller may then decide
        to rely on scaling factors instead).
    """
    if measured_range < 0:
        raise ValueError(f"measured_range must be non-negative, got {measured_range}")
    target = measured_range * (1.0 + margin)
    for es in range(0, max_es + 1):
        if covered_log2_range(PositConfig(n, es)) >= target:
            return es
    return max_es


@dataclass
class RangeObservation:
    """Accumulated range statistics for one (layer, role) pair."""

    layer: str
    role: str
    count: int = 0
    min_log2: float = field(default=float("inf"))
    max_log2: float = field(default=float("-inf"))
    sum_range: float = 0.0

    def update(self, x: np.ndarray) -> None:
        """Fold one tensor into the statistics."""
        mag = np.abs(np.asarray(x, dtype=np.float64)).ravel()
        mag = mag[np.isfinite(mag) & (mag > 0)]
        if mag.size == 0:
            return
        logs = np.log2(mag)
        self.min_log2 = min(self.min_log2, float(logs.min()))
        self.max_log2 = max(self.max_log2, float(logs.max()))
        self.sum_range += float(logs.max() - logs.min())
        self.count += 1

    @property
    def overall_range(self) -> float:
        """Range between the global min and max magnitudes observed."""
        if self.count == 0:
            return 0.0
        return self.max_log2 - self.min_log2

    @property
    def mean_range(self) -> float:
        """Mean per-tensor range over all observations."""
        return self.sum_range / self.count if self.count else 0.0


class RangeTracker:
    """Collects per-layer, per-role dynamic ranges and recommends es values."""

    def __init__(self, n_bits: int = 8, margin: float = 0.5):
        self.n_bits = n_bits
        self.margin = margin
        self.observations: dict[tuple[str, str], RangeObservation] = {}

    def record(self, layer: str, role: str, x: np.ndarray) -> None:
        """Record one tensor for ``(layer, role)``."""
        key = (layer, role)
        observation = self.observations.get(key)
        if observation is None:
            observation = RangeObservation(layer=layer, role=role)
            self.observations[key] = observation
        observation.update(x)

    def record_model_weights(self, model) -> None:
        """Record the current weights of every parameterized layer of ``model``."""
        for name, param in model.named_parameters():
            self.record(name, "weight", param.data)

    def report(self) -> list[dict]:
        """Return one row per (layer, role) with ranges and the recommended es."""
        rows = []
        for (layer, role), observation in sorted(self.observations.items()):
            rows.append(
                {
                    "layer": layer,
                    "role": role,
                    "observations": observation.count,
                    "overall_log2_range": observation.overall_range,
                    "mean_log2_range": observation.mean_range,
                    "recommended_es": recommend_es(
                        observation.overall_range, self.n_bits, margin=self.margin
                    ),
                }
            )
        return rows

    def recommended_es_by_role(self) -> dict[str, int]:
        """Aggregate the recommendation per role (max over layers).

        This is the form in which the paper states its conclusion: gradients
        and errors need a larger es than weights and activations.
        """
        per_role: dict[str, int] = {}
        for row in self.report():
            role = row["role"]
            per_role[role] = max(per_role.get(role, 0), row["recommended_es"])
        return per_role
