"""Insertion of the posit transformation P(.) into the training flow (Fig. 3).

The paper inserts the transformation operator at four points of the training
computation graph:

* **Forward** (Fig. 3a): the weights ``W_p`` and the output activations
  ``A^l_p`` of every layer are quantized.
* **Backward** (Fig. 3b): the error ``E^{l-1}`` propagated to the previous
  layer and the weight gradient ``ΔW^l`` are quantized.
* **Weight update** (Fig. 3c): the updated weights are re-quantized back to
  posit before being stored.

This module provides the two autograd-level primitives that express the
forward-path and backward-path insertions on :class:`~repro.tensor.Tensor`
objects —

* :func:`fake_quantize` — quantize the *values* in the forward pass and pass
  the gradient through unchanged (straight-through estimator), used for
  weights and activations;
* :func:`grad_quantize` — identity in the forward pass, quantize the
  *gradient* in the backward pass, used on layer inputs so that the error
  flowing to the previous layer is quantized exactly as in Fig. 3b —

plus :class:`LayerQuantContext`, the per-layer object that the layers in
:mod:`repro.nn.layers` consult, and which also exposes the array-level hooks
(``weight_grad``/``param``) wired into the optimizer for the ΔW and
weight-update quantization of Fig. 3b/3c.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..tensor import Tensor
from .scaling import ScaleEstimator

__all__ = [
    "Quantizer",
    "fake_quantize",
    "grad_quantize",
    "apply_scaled_quantization",
    "RoleStats",
    "LayerQuantContext",
]

#: Any callable mapping a float array onto a reduced-precision grid —
#: typically obtained from the cached :func:`repro.formats.get_quantizer`
#: factory for any :class:`~repro.formats.NumberFormat` (posit, float, or
#: fixed point).
Quantizer = Callable[[np.ndarray], np.ndarray]


def apply_scaled_quantization(values: np.ndarray, quantizer: Quantizer,
                              scale: float) -> np.ndarray:
    """Evaluate Eq. (3): ``P(x / S_f) * S_f``."""
    if scale == 1.0:
        return quantizer(values)
    return quantizer(values / scale) * scale


def fake_quantize(x: Tensor, quantizer: Quantizer,
                  scaler: Optional[ScaleEstimator] = None) -> Tensor:
    """Quantize tensor values in the forward pass; straight-through backward.

    Used for weights and activations (Fig. 3a).  The straight-through
    estimator keeps the gradient with respect to the full-precision master
    copy intact, which matches the paper's flow where the FP32 master weights
    are updated and then re-quantized.
    """
    scale = scaler.scale_for(x.data) if scaler is not None else 1.0

    def _forward(values: np.ndarray) -> np.ndarray:
        return apply_scaled_quantization(values, quantizer, scale)

    def _backward(upstream: np.ndarray, inputs: np.ndarray, outputs: np.ndarray) -> np.ndarray:
        return upstream

    return x.apply(_forward, _backward, name="fake_quantize")


def grad_quantize(x: Tensor, quantizer: Quantizer,
                  scaler: Optional[ScaleEstimator] = None,
                  stats: Optional["RoleStats"] = None) -> Tensor:
    """Identity forward; quantize the gradient in the backward pass.

    Applied to a layer's *input* tensor, this quantizes exactly the error
    ``E^{l-1}`` that the layer sends back to its predecessor (Fig. 3b).
    """

    def _forward(values: np.ndarray) -> np.ndarray:
        return values

    def _backward(upstream: np.ndarray, inputs: np.ndarray, outputs: np.ndarray) -> np.ndarray:
        scale = scaler.scale_for(upstream) if scaler is not None else 1.0
        quantized = apply_scaled_quantization(upstream, quantizer, scale)
        if stats is not None:
            stats.record(upstream, scale)
        return quantized

    return x.apply(_forward, _backward, name="grad_quantize")


@dataclass
class RoleStats:
    """Running statistics about the tensors quantized under one role.

    Used by the analysis tooling (Fig. 2 reproduction, dynamic-range reports)
    and by the calibrated scaling mode.
    """

    calls: int = 0
    elements: int = 0
    last_scale: float = 1.0
    min_log2: float = field(default=float("inf"))
    max_log2: float = field(default=float("-inf"))
    sum_log2_center: float = 0.0

    def record(self, values: np.ndarray, scale: float) -> None:
        """Accumulate statistics for one quantized tensor."""
        mag = np.abs(values[np.isfinite(values)])
        mag = mag[mag > 0]
        self.calls += 1
        self.elements += int(values.size)
        self.last_scale = scale
        if mag.size:
            logs = np.log2(mag)
            self.min_log2 = min(self.min_log2, float(logs.min()))
            self.max_log2 = max(self.max_log2, float(logs.max()))
            self.sum_log2_center += float(logs.mean())

    @property
    def mean_center(self) -> float:
        """Average log2-domain center over all recorded tensors."""
        return self.sum_log2_center / self.calls if self.calls else 0.0

    @property
    def log2_range(self) -> float:
        """Observed dynamic range in the log2 domain (max - min)."""
        if self.calls == 0 or not np.isfinite(self.min_log2):
            return 0.0
        return self.max_log2 - self.min_log2

    def as_dict(self) -> dict:
        """Return the statistics as a plain dictionary."""
        return {
            "calls": self.calls,
            "elements": self.elements,
            "last_scale": self.last_scale,
            "min_log2": self.min_log2,
            "max_log2": self.max_log2,
            "mean_center": self.mean_center,
            "log2_range": self.log2_range,
        }


class LayerQuantContext:
    """Per-layer quantization context attached to a module (``module.quant``).

    Holds one quantizer and one scale estimator per tensor role and exposes
    the four insertion points of Fig. 3:

    * :meth:`weight` / :meth:`activation` — forward-path fake quantization,
      called from the layer's ``forward``;
    * :meth:`error` — backward-path gradient quantization, called from the
      layer's ``forward`` on its input;
    * :meth:`weight_grad` / :meth:`param` — array-level hooks installed into
      the optimizer by the trainer for ΔW and post-update W quantization.

    Any role may be ``None``, meaning that role stays in full precision —
    this is how partial-quantization ablations are expressed.
    """

    ROLES = ("weight", "activation", "error", "weight_grad")

    def __init__(
        self,
        name: str,
        weight_quantizer: Optional[Quantizer] = None,
        activation_quantizer: Optional[Quantizer] = None,
        error_quantizer: Optional[Quantizer] = None,
        weight_grad_quantizer: Optional[Quantizer] = None,
        weight_scaler: Optional[ScaleEstimator] = None,
        activation_scaler: Optional[ScaleEstimator] = None,
        error_scaler: Optional[ScaleEstimator] = None,
        weight_grad_scaler: Optional[ScaleEstimator] = None,
        enabled: bool = True,
    ):
        self.name = name
        self.enabled = enabled
        self.quantizers: dict[str, Optional[Quantizer]] = {
            "weight": weight_quantizer,
            "activation": activation_quantizer,
            "error": error_quantizer,
            "weight_grad": weight_grad_quantizer,
        }
        self.scalers: dict[str, Optional[ScaleEstimator]] = {
            "weight": weight_scaler,
            "activation": activation_scaler,
            "error": error_scaler,
            "weight_grad": weight_grad_scaler,
        }
        self.stats: dict[str, RoleStats] = {role: RoleStats() for role in self.ROLES}

    # ------------------------------------------------------------------ #
    # Forward-path (tensor-level) hooks
    # ------------------------------------------------------------------ #
    def weight(self, w: Tensor) -> Tensor:
        """Fake-quantize a weight/bias tensor for the forward computation."""
        quantizer = self.quantizers["weight"]
        if not self.enabled or quantizer is None:
            return w
        scaler = self.scalers["weight"]
        scale = scaler.scale_for(w.data) if scaler is not None else 1.0
        self.stats["weight"].record(w.data, scale)
        return fake_quantize(w, quantizer, scaler)

    def activation(self, a: Tensor) -> Tensor:
        """Quantize an output activation tensor."""
        quantizer = self.quantizers["activation"]
        if not self.enabled or quantizer is None:
            return a
        scaler = self.scalers["activation"]
        scale = scaler.scale_for(a.data) if scaler is not None else 1.0
        self.stats["activation"].record(a.data, scale)
        return fake_quantize(a, quantizer, scaler)

    def error(self, x: Tensor) -> Tensor:
        """Wrap a layer input so its backward error is quantized (Fig. 3b)."""
        quantizer = self.quantizers["error"]
        if not self.enabled or quantizer is None:
            return x
        return grad_quantize(x, quantizer, self.scalers["error"], stats=self.stats["error"])

    # ------------------------------------------------------------------ #
    # Array-level hooks (installed into the optimizer by the trainer)
    # ------------------------------------------------------------------ #
    def weight_grad(self, grad: np.ndarray, param=None) -> np.ndarray:
        """Quantize a weight gradient ΔW before the optimizer consumes it."""
        quantizer = self.quantizers["weight_grad"]
        if not self.enabled or quantizer is None:
            return grad
        scaler = self.scalers["weight_grad"]
        scale = scaler.scale_for(grad) if scaler is not None else 1.0
        self.stats["weight_grad"].record(grad, scale)
        return apply_scaled_quantization(grad, quantizer, scale)

    def param(self, data: np.ndarray, param=None) -> np.ndarray:
        """Quantize updated weights back to posit after the optimizer step (Fig. 3c)."""
        quantizer = self.quantizers["weight"]
        if not self.enabled or quantizer is None:
            return data
        scaler = self.scalers["weight"]
        scale = scaler.scale_for(data) if scaler is not None else 1.0
        return apply_scaled_quantization(data, quantizer, scale)

    # ------------------------------------------------------------------ #
    def describe(self) -> dict:
        """Summarize the context: formats per role and recorded statistics."""
        def _fmt(quantizer: Optional[Quantizer]) -> str:
            if quantizer is None:
                return "fp32"
            fmt = getattr(quantizer, "format", None)
            if fmt is not None and hasattr(fmt, "spec"):
                return fmt.spec()
            config = getattr(quantizer, "config", None) or getattr(quantizer, "fmt", None)
            return str(config) if config is not None else type(quantizer).__name__

        return {
            "name": self.name,
            "enabled": self.enabled,
            "formats": {role: _fmt(q) for role, q in self.quantizers.items()},
            "stats": {role: s.as_dict() for role, s in self.stats.items()},
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        formats = self.describe()["formats"]
        return f"LayerQuantContext({self.name!r}, {formats})"
