"""The paper's primary contribution: the posit DNN training methodology.

Contains the posit transformation insertion (Fig. 3), the warm-up schedule,
the distribution-based shifting of Eq. (2)/(3), the per-layer/per-role format
policies of Table III, the dynamic-range / es-selection criterion, and the
trainer that assembles them.
"""

from .inference import evaluate_quantized, inference_sweep, quantize_model_weights
from .metrics import AverageMeter, EpochRecord, TrainingHistory
from .policy import QuantizationPolicy, RoleFormats, TensorFormat
from .range_analysis import (
    RangeObservation,
    RangeTracker,
    covered_log2_range,
    log2_range,
    recommend_es,
)
from .scaling import ScaleEstimator, ScaleFactor, compute_scale_factor, log2_center
from .trainer import PositTrainer
from .transform import (
    LayerQuantContext,
    Quantizer,
    RoleStats,
    apply_scaled_quantization,
    fake_quantize,
    grad_quantize,
)
from .warmup import WarmupSchedule

__all__ = [
    "PositTrainer",
    "quantize_model_weights",
    "evaluate_quantized",
    "inference_sweep",
    "QuantizationPolicy",
    "RoleFormats",
    "TensorFormat",
    "WarmupSchedule",
    "ScaleEstimator",
    "ScaleFactor",
    "compute_scale_factor",
    "log2_center",
    "LayerQuantContext",
    "RoleStats",
    "Quantizer",
    "fake_quantize",
    "grad_quantize",
    "apply_scaled_quantization",
    "log2_range",
    "covered_log2_range",
    "recommend_es",
    "RangeTracker",
    "RangeObservation",
    "TrainingHistory",
    "EpochRecord",
    "AverageMeter",
]
