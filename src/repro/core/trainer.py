"""The posit training loop (the paper's training methodology, assembled).

:class:`PositTrainer` wires together the pieces of §III:

1. a model whose layers carry :class:`~repro.core.transform.LayerQuantContext`
   objects attached by a :class:`~repro.core.policy.QuantizationPolicy`
   (posit transformation inserted at the Fig. 3 points),
2. the FP32 warm-up schedule of §III-B (quantization disabled for the first
   1-5 epochs, then switched on; scale factors optionally calibrated at the
   transition),
3. an SGD-with-momentum optimizer whose ``grad_transform``/``param_transform``
   hooks quantize the weight gradients (ΔW) and the updated weights (Fig. 3b/3c),
4. per-epoch evaluation and history recording.

The same class also runs the FP32 baseline — simply construct it without a
policy — so baseline and posit runs share every line of training logic, which
is what makes the Table III comparison meaningful.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..data.loaders import ArrayDataLoader
from ..nn import CrossEntropyLoss, Module
from ..optim import LRScheduler, Optimizer
from ..tensor import Tensor, accuracy, no_grad
from .metrics import AverageMeter, EpochRecord, TrainingHistory
from .policy import QuantizationPolicy
from .transform import LayerQuantContext
from .warmup import WarmupSchedule

__all__ = ["PositTrainer"]

EpochCallback = Callable[["PositTrainer", int, EpochRecord], None]


class PositTrainer:
    """Training loop with optional posit (or low-bit float) quantization.

    Parameters
    ----------
    model:
        The network to train.
    optimizer:
        An optimizer over ``model.parameters()`` (the paper uses SGD with
        momentum 0.9).
    loss_fn:
        Loss module; defaults to cross-entropy.
    policy:
        Quantization policy.  ``None`` trains the FP32 baseline.  Besides a
        :class:`~repro.core.policy.QuantizationPolicy` instance, a preset
        name (``"cifar_paper"``), a format spec (``"posit(8,1)"``), or a
        policy dict (the :meth:`~repro.core.policy.QuantizationPolicy.to_dict`
        form) is accepted and resolved through :func:`repro.api.build_policy`.
    warmup:
        FP32 warm-up schedule.  Ignored when ``policy`` is None.
    scheduler:
        Optional learning-rate scheduler stepped once per epoch.
    epoch_callbacks:
        Callables invoked after every epoch with
        ``(trainer, epoch, record)`` — used by the distribution analysis
        (Fig. 2) and by tests.
    loss_scaler:
        Optional :class:`~repro.nn.loss.LossScaler` used by the FP16/FP8
        mixed-precision baselines ([9], [10]).  The loss is scaled before
        backward and gradients are unscaled before the optimizer step; steps
        with non-finite gradients are skipped.  Posit runs do not need one.
    verbose:
        Whether to print a one-line summary per epoch.
    """

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        loss_fn: Optional[Module] = None,
        policy: Optional[QuantizationPolicy] = None,
        warmup: Optional[WarmupSchedule] = None,
        scheduler: Optional[LRScheduler] = None,
        epoch_callbacks: Optional[list[EpochCallback]] = None,
        loss_scaler=None,
        verbose: bool = False,
    ):
        if isinstance(policy, (str, dict)):
            # Deferred import: repro.api composes this trainer, so the
            # spec-resolution helper cannot be imported at module load time.
            from ..api import build_policy

            policy = build_policy(policy)
        self.model = model
        self.optimizer = optimizer
        self.loss_fn = loss_fn if loss_fn is not None else CrossEntropyLoss()
        self.policy = policy
        self.warmup = warmup if warmup is not None else WarmupSchedule(0)
        self.scheduler = scheduler
        self.epoch_callbacks = list(epoch_callbacks or [])
        self.loss_scaler = loss_scaler
        self.verbose = verbose
        self.history = TrainingHistory()

        self.contexts: dict[str, LayerQuantContext] = {}
        self._param_contexts: dict[int, LayerQuantContext] = {}
        if policy is not None:
            self.contexts = policy.attach(model)
            self._param_contexts = self._map_parameters_to_contexts()
            self._install_optimizer_hooks()
            # Quantization stays off until the warm-up phase completes.
            QuantizationPolicy.set_enabled(model, self.warmup.quantization_enabled(0))

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #
    def _map_parameters_to_contexts(self) -> dict[int, LayerQuantContext]:
        """Associate every parameter with the context of its owning layer."""
        mapping: dict[int, LayerQuantContext] = {}
        for _, module in self.model.named_modules():
            context = module.quant
            if context is None:
                continue
            for param in module._parameters.values():
                if param is not None:
                    mapping[id(param)] = context
        return mapping

    def _install_optimizer_hooks(self) -> None:
        """Install ΔW and post-update weight quantization into the optimizer."""

        def grad_transform(grad: np.ndarray, param) -> np.ndarray:
            context = self._param_contexts.get(id(param))
            if context is None:
                return grad
            return context.weight_grad(grad, param)

        def param_transform(data: np.ndarray, param) -> np.ndarray:
            context = self._param_contexts.get(id(param))
            if context is None:
                return data
            return context.param(data, param)

        self.optimizer.grad_transform = grad_transform
        self.optimizer.param_transform = param_transform

    @property
    def quantization_active(self) -> bool:
        """Whether any attached quantization context is currently enabled."""
        return any(context.enabled for context in self.contexts.values())

    def calibrate_scale_factors(self) -> dict[str, float]:
        """Freeze calibrated weight scale factors from the current weights.

        Implements the paper's "based on the warm-up trained model, the
        scaling factor of each layer can be calculated": every layer whose
        weight scaler runs in calibrated mode gets its center frozen from the
        current (warm-up trained) weight tensor.  Returns the resulting scale
        per layer for reporting.
        """
        scales: dict[str, float] = {}
        for name, module in self.model.named_modules():
            context = module.quant
            if context is None:
                continue
            scaler = context.scalers.get("weight")
            weight = module._parameters.get("weight")
            if scaler is not None and scaler.mode == "calibrated" and weight is not None:
                scales[name] = scaler.calibrate(weight.data)
        return scales

    # ------------------------------------------------------------------ #
    # Epoch-level operations
    # ------------------------------------------------------------------ #
    def train_epoch(self, loader: ArrayDataLoader, epoch: int = 0) -> tuple[float, float]:
        """Run one training epoch; returns ``(mean_loss, mean_accuracy)``."""
        self.model.train(True)
        loss_meter = AverageMeter("loss")
        acc_meter = AverageMeter("accuracy")
        for inputs, labels in loader:
            logits = self.model(Tensor(inputs))
            loss = self.loss_fn(logits, labels)
            self.model.zero_grad()
            if self.loss_scaler is not None:
                self.loss_scaler.scale_loss(loss).backward()
                if self.loss_scaler.unscale_gradients(self.model.parameters()):
                    self.optimizer.step()
            else:
                loss.backward()
                self.optimizer.step()
            batch = len(labels)
            loss_meter.update(loss.item(), batch)
            acc_meter.update(accuracy(logits, labels), batch)
        return loss_meter.average, acc_meter.average

    def evaluate(self, loader: ArrayDataLoader) -> tuple[float, float]:
        """Evaluate on a loader; returns ``(mean_loss, mean_accuracy)``."""
        self.model.train(False)
        loss_meter = AverageMeter("val_loss")
        acc_meter = AverageMeter("val_accuracy")
        with no_grad():
            for inputs, labels in loader:
                logits = self.model(Tensor(inputs))
                loss = self.loss_fn(logits, labels)
                batch = len(labels)
                loss_meter.update(loss.item(), batch)
                acc_meter.update(accuracy(logits, labels), batch)
        return loss_meter.average, acc_meter.average

    # ------------------------------------------------------------------ #
    # Full training run
    # ------------------------------------------------------------------ #
    def fit(
        self,
        train_loader: ArrayDataLoader,
        val_loader: Optional[ArrayDataLoader] = None,
        epochs: int = 10,
    ) -> TrainingHistory:
        """Train for ``epochs`` epochs, following the warm-up schedule.

        Returns the accumulated :class:`TrainingHistory`.
        """
        for epoch in range(epochs):
            if self.policy is not None:
                enabled = self.warmup.quantization_enabled(epoch)
                QuantizationPolicy.set_enabled(self.model, enabled)
                if self.warmup.is_transition(epoch):
                    self.calibrate_scale_factors()
            if self.scheduler is not None:
                self.scheduler.step(epoch)

            train_loss, train_acc = self.train_epoch(train_loader, epoch)
            val_loss, val_acc = (None, None)
            if val_loader is not None:
                val_loss, val_acc = self.evaluate(val_loader)

            record = EpochRecord(
                epoch=epoch,
                train_loss=train_loss,
                train_accuracy=train_acc,
                val_loss=val_loss,
                val_accuracy=val_acc,
                learning_rate=self.optimizer.lr,
                quantized=self.policy is not None and self.quantization_active,
            )
            self.history.append(record)
            for callback in self.epoch_callbacks:
                callback(self, epoch, record)
            if self.verbose:
                val_part = (
                    f" val_loss={val_loss:.4f} val_acc={val_acc:.4f}"
                    if val_loss is not None
                    else ""
                )
                print(
                    f"epoch {epoch:3d} loss={train_loss:.4f} acc={train_acc:.4f}"
                    f"{val_part} lr={self.optimizer.lr:.4g} "
                    f"quantized={record.quantized}"
                )
        return self.history

    # ------------------------------------------------------------------ #
    def describe(self) -> dict:
        """Summary of the trainer configuration (used in benchmark reports)."""
        return {
            "model_parameters": self.model.num_parameters(),
            "policy": self.policy.describe() if self.policy is not None else None,
            "warmup": self.warmup.describe(),
            "quantized_layers": sorted(self.contexts),
        }
