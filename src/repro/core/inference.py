"""Post-training quantization and low-bit posit inference.

The paper's related work (Deep Positron [12], Johnson's log-float [13])
studies posit for *inference*; the paper itself notes that a model trained in
posit can be deployed directly at the training precision.  This module covers
both paths:

* :func:`quantize_model_weights` — post-training quantization: snap a trained
  model's weights onto a posit (or float/fixed-point) grid in place, with
  optional Eq. (2)/(3) shifting, without touching the training pipeline.
* :func:`evaluate_quantized` — attach a policy (weights + activations only,
  no backward roles needed) for evaluation and report the accuracy.
* :func:`inference_sweep` — accuracy as a function of word size / es, the
  standard "how low can you go at inference time" study.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..data.loaders import ArrayDataLoader
from ..formats import get_quantizer
from ..nn import Module
from ..tensor import Tensor, accuracy, no_grad
from .policy import QuantizationPolicy, RoleFormats, TensorFormat, _as_role_format
from .scaling import compute_scale_factor
from .transform import apply_scaled_quantization

__all__ = ["quantize_model_weights", "evaluate_quantized", "inference_sweep"]

#: A format argument: a NumberFormat, a registry spec string, or None (FP32).
FormatLike = Union[TensorFormat, str]


def quantize_model_weights(model: Module, fmt: FormatLike, rounding: str = "nearest",
                           use_scaling: bool = True, sigma: int = 2) -> dict[str, float]:
    """Snap every parameter of ``model`` onto the grid of ``fmt`` in place.

    ``fmt`` may be a :class:`~repro.formats.NumberFormat` or a registry spec
    string like ``"posit(8,1)"``.  Returns the per-parameter scale factors
    that were applied (1.0 when scaling is disabled), so callers can
    reconstruct the stored representation.
    """
    quantizer = get_quantizer(_as_role_format(fmt), rounding, rng=None)
    scales: dict[str, float] = {}
    if quantizer is None:
        return scales
    for name, param in model.named_parameters():
        scale = compute_scale_factor(param.data, sigma=sigma) if use_scaling else 1.0
        param.data[...] = apply_scaled_quantization(param.data, quantizer, scale)
        scales[name] = scale
    return scales


def evaluate_quantized(model: Module, loader: ArrayDataLoader, fmt: FormatLike,
                       rounding: str = "nearest", use_scaling: bool = True,
                       quantize_activations: bool = True) -> float:
    """Evaluate ``model`` with weights and (optionally) activations in ``fmt``.

    The model's stored weights are left untouched: quantization is applied
    through a temporary per-layer policy, exactly as the forward path of
    Fig. 3a, and removed afterwards.  ``fmt`` accepts spec strings.
    """
    fmt = _as_role_format(fmt)
    formats = RoleFormats(weight=fmt, activation=fmt if quantize_activations else None)
    policy = QuantizationPolicy(conv_formats=formats, bn_formats=formats,
                                linear_formats=formats, rounding=rounding,
                                use_scaling=use_scaling)
    policy.attach(model)
    try:
        model.train(False)
        total, correct = 0, 0.0
        with no_grad():
            for inputs, labels in loader:
                logits = model(Tensor(inputs))
                correct += accuracy(logits, labels) * len(labels)
                total += len(labels)
        return correct / total if total else 0.0
    finally:
        QuantizationPolicy.detach(model)


def inference_sweep(model: Module, loader: ArrayDataLoader,
                    formats: Optional[list[FormatLike]] = None,
                    rounding: str = "nearest", use_scaling: bool = True) -> list[dict]:
    """Accuracy of ``model`` under a sweep of inference number formats.

    Defaults to the posit formats the paper and Deep Positron [12] consider:
    (8,0), (8,1), (8,2), (16,1), plus the FP32 reference (``None``).  Sweep
    entries may be format objects or spec strings, so callers can drive the
    study from a plain config file.
    """
    from ..posit import PositConfig

    if formats is None:
        formats = [None, PositConfig(16, 1), PositConfig(8, 2), PositConfig(8, 1),
                   PositConfig(8, 0), PositConfig(6, 1)]
    rows = []
    for fmt in formats:
        fmt = _as_role_format(fmt)
        if fmt is None:
            model.train(False)
            total, correct = 0, 0.0
            with no_grad():
                for inputs, labels in loader:
                    logits = model(Tensor(inputs))
                    correct += accuracy(logits, labels) * len(labels)
                    total += len(labels)
            acc = correct / total if total else 0.0
        else:
            acc = evaluate_quantized(model, loader, fmt, rounding=rounding,
                                     use_scaling=use_scaling)
        rows.append({"format": "fp32" if fmt is None else fmt.spec(), "accuracy": acc})
    return rows
