"""Warm-up training controller (§III-B "Warm-up Training").

The paper observes (Fig. 2) that BatchNorm weight distributions shift sharply
during the first epochs because of their all-ones initialization, making the
model highly sensitive to precision early in training.  The fix is to run the
first 1-5 epochs entirely in FP32 ("warm-up"), then switch the quantization
contexts on and, optionally, calibrate the layer-wise scale factors from the
warm-up model before the posit phase starts.

:class:`WarmupSchedule` is a tiny state machine the trainer consults at every
epoch boundary; it reports whether quantization should be active and whether
this is the transition epoch at which calibration should run.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["WarmupSchedule"]


@dataclass
class WarmupSchedule:
    """Decides, per epoch, whether the model trains in FP32 or in posit.

    Parameters
    ----------
    warmup_epochs:
        Number of initial epochs trained in full precision.  The paper uses 1
        for Cifar-10 and 5 for ImageNet; 0 disables the warm-up entirely (the
        ablation case).
    """

    warmup_epochs: int = 1

    def __post_init__(self) -> None:
        if self.warmup_epochs < 0:
            raise ValueError(f"warmup_epochs must be non-negative, got {self.warmup_epochs}")

    def in_warmup(self, epoch: int) -> bool:
        """Whether ``epoch`` (0-based) is still part of the FP32 warm-up phase."""
        return epoch < self.warmup_epochs

    def quantization_enabled(self, epoch: int) -> bool:
        """Whether quantization contexts should be active during ``epoch``."""
        return not self.in_warmup(epoch)

    def is_transition(self, epoch: int) -> bool:
        """Whether ``epoch`` is the first quantized epoch (calibration point)."""
        return epoch == self.warmup_epochs

    def describe(self) -> dict:
        """Return the schedule parameters as a dictionary."""
        return {"warmup_epochs": self.warmup_epochs}
