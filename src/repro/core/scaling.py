"""Distribution-based shifting: layer-wise scaling factors (Eq. (2)/(3)).

The precision of a posit format is highest for magnitudes near 1 and tapers
off toward ``maxpos`` and ``minpos``.  DNN tensors, however, concentrate
around layer-specific magnitudes that are usually far from 1 (weights around
1e-2, gradients around 1e-4 ...), so quantizing them directly wastes the
dense center of the posit code space.  The paper fixes the mismatch with a
layer-wise scaling factor

.. math::

    \\text{center} = \\mathrm{round}(\\mathrm{mean}(\\log_2 |x|)), \\qquad
    S_f = 2^{\\text{center} + \\sigma}

applied around the transformation operator: ``px = P(x / S_f) * S_f``
(Eq. (3)).  ``sigma`` (default 2, as in the paper) biases the shift so that
the *larger* values in the tensor — which the deep-compression literature
[15] identifies as the more important ones — land on the highest-precision
region of the format.

Because the scale is a power of two, multiplying and dividing by it is exact
in binary floating point and costs only an exponent adjustment in hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["log2_center", "compute_scale_factor", "ScaleFactor", "ScaleEstimator"]


def log2_center(x: np.ndarray) -> float:
    """Return ``round(mean(log2 |x|))`` over the non-zero elements of ``x``.

    Zeros carry no magnitude information and would send the mean to
    ``-inf``, so they are excluded; an all-zero tensor has center 0.
    """
    mag = np.abs(np.asarray(x, dtype=np.float64))
    mag = mag[np.isfinite(mag) & (mag > 0)]
    if mag.size == 0:
        return 0.0
    return float(np.round(np.mean(np.log2(mag))))


def compute_scale_factor(x: np.ndarray, sigma: int = 2) -> float:
    """Compute the layer-wise scaling factor ``S_f = 2**(center + sigma)`` (Eq. (2)).

    Parameters
    ----------
    x:
        The tensor to be converted (weights, activations, errors, or weight
        gradients of one layer).
    sigma:
        The positive integer constant of Eq. (2); the paper uses 2.
    """
    center = log2_center(x)
    return float(2.0 ** (center + sigma))


@dataclass
class ScaleFactor:
    """A frozen scale factor together with the statistics it was derived from."""

    value: float
    center: float
    sigma: int

    @classmethod
    def from_tensor(cls, x: np.ndarray, sigma: int = 2) -> "ScaleFactor":
        """Compute Eq. (2) for ``x`` and record the intermediate center."""
        center = log2_center(x)
        return cls(value=float(2.0 ** (center + sigma)), center=center, sigma=sigma)


class ScaleEstimator:
    """Produces scale factors either dynamically or from calibrated statistics.

    Two operating modes:

    ``dynamic``
        Eq. (2) is evaluated on every tensor as it is quantized.  This is the
        most faithful reading of the paper's "x is a tensor to be converted"
        and needs no extra state, at the cost of a cheap log/mean per call.

    ``calibrated``
        The scale is frozen from statistics collected during/after the warm-up
        phase (via :meth:`calibrate` or an exponential moving average through
        :meth:`observe`), matching the paper's remark that "based on the
        warm-up trained model, the scaling factor of each layer can be
        calculated".

    A ``ScaleEstimator`` with ``enabled=False`` always returns 1.0, which is
    how the no-shifting ablation is expressed.
    """

    def __init__(self, sigma: int = 2, mode: str = "dynamic", enabled: bool = True,
                 ema_momentum: float = 0.1):
        if mode not in ("dynamic", "calibrated"):
            raise ValueError(f"mode must be 'dynamic' or 'calibrated', got {mode!r}")
        if sigma < 0:
            raise ValueError(f"sigma must be a non-negative integer, got {sigma}")
        self.sigma = int(sigma)
        self.mode = mode
        self.enabled = enabled
        self.ema_momentum = ema_momentum
        self._calibrated_center: Optional[float] = None
        self.num_observations = 0

    def calibrate(self, x: np.ndarray) -> float:
        """Freeze the center statistic from ``x`` and return the resulting scale."""
        self._calibrated_center = log2_center(x)
        self.num_observations += 1
        return self.scale_for(x)

    def observe(self, x: np.ndarray) -> None:
        """Update the calibrated center with an exponential moving average."""
        center = log2_center(x)
        if self._calibrated_center is None:
            self._calibrated_center = center
        else:
            self._calibrated_center = (
                (1.0 - self.ema_momentum) * self._calibrated_center
                + self.ema_momentum * center
            )
        self.num_observations += 1

    @property
    def calibrated_center(self) -> Optional[float]:
        """The frozen/averaged log2 center, or None if never calibrated."""
        return self._calibrated_center

    def set_center(self, center: Optional[float]) -> None:
        """Install a precomputed log2 center (e.g. restored from a checkpoint).

        The serving path (:mod:`repro.serve`) freezes activation centers at
        export time and re-installs them at load time so that serving-side
        quantization is independent of batch composition.
        """
        self._calibrated_center = None if center is None else float(center)

    def scale_for(self, x: np.ndarray) -> float:
        """Return the scale factor to use when quantizing ``x``."""
        if not self.enabled:
            return 1.0
        if self.mode == "calibrated" and self._calibrated_center is not None:
            return float(2.0 ** (round(self._calibrated_center) + self.sigma))
        return compute_scale_factor(x, sigma=self.sigma)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ScaleEstimator(sigma={self.sigma}, mode={self.mode!r}, "
            f"enabled={self.enabled}, center={self._calibrated_center})"
        )
