"""High-level experiment API: declarative config -> wired experiment.

Every example script and benchmark used to copy-paste the same dozen lines
of wiring (dataset -> loaders -> model -> optimizer -> scheduler -> policy
-> trainer).  This module makes that wiring a function of plain data:

>>> from repro.api import ExperimentConfig, build_experiment
>>> config = ExperimentConfig(dataset="cifar_like", model="cifar_resnet",
...                           policy="cifar_paper", epochs=4, warmup_epochs=1)
>>> experiment = build_experiment(config)
>>> history = experiment.run()

Because :class:`ExperimentConfig` round-trips through plain dicts
(:meth:`~ExperimentConfig.to_dict` / :meth:`~ExperimentConfig.from_dict`)
and policies round-trip through spec strings and dicts (the
:mod:`repro.formats` registry), an entire experiment is expressible as a
JSON/YAML document — the declarative entry point the sweep and benchmark
harnesses build on.

:func:`build_policy` is the single resolution point for every way a policy
can be named: a :class:`~repro.core.policy.QuantizationPolicy` instance, a
preset name (``"cifar_paper"``, ``"imagenet_paper"``, ``"fp16_mixed"``,
``"fp8_mixed"``, ``"fixed_point"``, ``"full_precision"``), a parametric
preset (``"uniform(8)"``), a bare format spec (``"posit(8,1)"``,
``"fixed(16,13)"`` — that format everywhere), a policy dict, or
``None``/``"fp32"`` for the unquantized baseline.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Optional, Union

import numpy as np

from .baselines import fixed_point_policy, fp8_policy, fp16_policy, make_loss_scaler
from .core import PositTrainer, QuantizationPolicy, WarmupSchedule
from .core.policy import _FULL_PRECISION_SPECS
from .data import (
    ArrayDataLoader,
    cifar_like,
    imagenet_like,
    make_blobs,
    make_spirals,
    test_loader,
    train_loader,
)
from .formats import FormatSpecError, parse_format
from .models import MLP, LeNet, ResNet, tiny_resnet
from .nn import CrossEntropyLoss, LossScaler
from .optim import SGD, CosineAnnealingLR, MultiStepLR, StepLR

__all__ = [
    "ExperimentConfig",
    "Experiment",
    "build_policy",
    "build_experiment",
    "run_experiment",
    "POLICY_PRESETS",
    "clear_dataset_cache",
    "dataset_cache_info",
]

#: Named policy presets resolvable by :func:`build_policy`.  Values are
#: zero-argument factories so each call gets a fresh policy instance.
POLICY_PRESETS = {
    "cifar_paper": QuantizationPolicy.cifar_paper,
    "imagenet_paper": QuantizationPolicy.imagenet_paper,
    "full_precision": QuantizationPolicy.full_precision,
    "fp16_mixed": fp16_policy,
    "fp8_mixed": fp8_policy,
    "fixed_point": fixed_point_policy,
}

_UNIFORM_PRESET = re.compile(r"^uniform\((\d+)(?:,(\d+),(\d+))?\)$")


def build_policy(
    spec: Union[QuantizationPolicy, Mapping, str, None],
) -> Optional[QuantizationPolicy]:
    """Resolve any policy description to a :class:`QuantizationPolicy` (or None).

    See the module docstring for the accepted forms.  ``None`` and the
    full-precision spec strings (``"fp32"``, ``"none"``) resolve to ``None``,
    which the trainer interprets as the unquantized FP32 baseline.
    """
    if spec is None or isinstance(spec, QuantizationPolicy):
        return spec
    if isinstance(spec, Mapping):
        return QuantizationPolicy.from_dict(spec)
    if not isinstance(spec, str):
        raise TypeError(
            f"policy must be a QuantizationPolicy, dict, spec string, or None; "
            f"got {type(spec).__name__}"
        )

    key = spec.strip().lower().replace(" ", "")
    # Same synonym set the policy layer uses for per-role specs, so
    # "fp32"/"none"/"float32"/... mean the FP32 baseline at every level.
    if key in _FULL_PRECISION_SPECS:
        return None
    preset = POLICY_PRESETS.get(key)
    if preset is not None:
        return preset()
    uniform = _UNIFORM_PRESET.match(key)
    if uniform is not None:
        n, es_forward, es_backward = uniform.groups()
        if es_forward is None:
            return QuantizationPolicy.uniform(int(n))
        return QuantizationPolicy.uniform(int(n), es_forward=int(es_forward),
                                          es_backward=int(es_backward))
    try:
        fmt = parse_format(key)
    except FormatSpecError as exc:
        raise ValueError(
            f"unknown policy spec {spec!r}; expected one of the presets "
            f"{sorted(POLICY_PRESETS)}, 'uniform(n[,es_fwd,es_bwd])', 'fp32', "
            f"or a format spec like 'posit(8,1)' ({exc})"
        ) from exc
    return QuantizationPolicy.uniform_format(fmt)


@dataclass
class ExperimentConfig:
    """Declarative description of one training experiment.

    Every field is plain data; :meth:`to_dict`/:meth:`from_dict` round-trip
    the config through JSON-able form (the policy is serialized via
    :meth:`QuantizationPolicy.to_dict` when it is an object).

    Parameters
    ----------
    dataset:
        ``"cifar_like"``, ``"imagenet_like"``, ``"spirals"``, or ``"blobs"``.
    model:
        ``"mlp"``, ``"lenet"``, ``"tiny_resnet"``, ``"cifar_resnet"``, or
        ``"imagenet_resnet"``.
    policy:
        Anything :func:`build_policy` accepts.
    loss_scaling:
        Attach a :class:`~repro.nn.LossScaler` (the float-baseline recipe).
    model_kwargs / data_kwargs:
        Escape hatches merged into the model constructor / dataset builder.
    """

    name: str = "experiment"
    dataset: str = "cifar_like"
    model: str = "cifar_resnet"
    policy: Union[QuantizationPolicy, Mapping, str, None] = "cifar_paper"
    epochs: int = 4
    batch_size: int = 32
    lr: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 0.0
    warmup_epochs: int = 1
    scheduler: Optional[str] = None  # None | "step" | "multistep" | "cosine"
    loss_scaling: bool = False
    train_size: int = 256
    test_size: int = 128
    num_classes: int = 10
    seed: int = 0
    data_seed: int = 1
    shuffle_seed: Optional[int] = None  # loader shuffle; defaults to `seed`
    verbose: bool = False
    model_kwargs: dict = field(default_factory=dict)
    data_kwargs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-able form of the config."""
        data = {
            "name": self.name,
            "dataset": self.dataset,
            "model": self.model,
            "policy": (self.policy.to_dict()
                       if isinstance(self.policy, QuantizationPolicy) else self.policy),
            "epochs": self.epochs,
            "batch_size": self.batch_size,
            "lr": self.lr,
            "momentum": self.momentum,
            "weight_decay": self.weight_decay,
            "warmup_epochs": self.warmup_epochs,
            "scheduler": self.scheduler,
            "loss_scaling": self.loss_scaling,
            "train_size": self.train_size,
            "test_size": self.test_size,
            "num_classes": self.num_classes,
            "seed": self.seed,
            "data_seed": self.data_seed,
            "shuffle_seed": self.shuffle_seed,
            "verbose": self.verbose,
            "model_kwargs": dict(self.model_kwargs),
            "data_kwargs": dict(self.data_kwargs),
        }
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "ExperimentConfig":
        """Inverse of :meth:`to_dict` (policy dicts stay declarative)."""
        return cls(**dict(data))

    def with_overrides(self, **changes) -> "ExperimentConfig":
        """Copy of the config with the given fields replaced."""
        return replace(self, **changes)


@dataclass
class Experiment:
    """A fully wired experiment: model, data, policy, and trainer."""

    config: ExperimentConfig
    model: Any
    optimizer: Any
    scheduler: Any
    policy: Optional[QuantizationPolicy]
    loss_scaler: Optional[LossScaler]
    trainer: PositTrainer
    train_loader: ArrayDataLoader
    val_loader: ArrayDataLoader

    def run(self, epochs: Optional[int] = None):
        """Train for ``epochs`` (default: the config's) and return the history."""
        return self.trainer.fit(self.train_loader, self.val_loader,
                                epochs=epochs if epochs is not None else self.config.epochs)

    def format_specs(self) -> list[str]:
        """Sorted unique spec strings of every resolved role format.

        ``["fp32"]`` for the unquantized baseline — so sweep reports and
        logs are self-describing even when the config named the policy by
        preset (``"cifar_paper"``) rather than by explicit formats.
        """
        if self.policy is None:
            return ["fp32"]
        specs = set()
        for role_formats in (self.policy.conv_formats, self.policy.bn_formats,
                             self.policy.linear_formats):
            specs.update(role_formats.as_dict().values())
        return sorted(specs)

    def describe(self) -> dict:
        """Config + resolved policy/formats + trainer summary, for reports."""
        return {
            "config": self.config.to_dict(),
            "formats": self.format_specs(),
            "policy": self.policy.describe() if self.policy is not None else None,
            "trainer": self.trainer.describe(),
        }


#: Per-process memo of dataset construction, keyed by the JSON form of the
#: dataset-determining config fields.  Sweep grids typically vary the policy
#: or learning rate while sharing one dataset, so every worker process would
#: otherwise regenerate identical synthetic data once per cell — the
#: generated arrays are deterministic in the key and treated as read-only
#: (loaders copy batches out via fancy indexing / transforms), so sharing
#: them across runs in one process is safe.  Bounded FIFO to keep a long
#: multi-dataset sweep from accumulating every dataset it ever touched.
_DATASET_CACHE: dict = {}
_DATASET_CACHE_LIMIT = 8
_DATASET_CACHE_STATS = {"hits": 0, "misses": 0}
_DATASET_CACHE_LOCK = threading.Lock()


def _cached_dataset(kind: str, builder, kwargs: dict):
    """Memoize ``builder(**kwargs)`` per process (see ``_DATASET_CACHE``)."""
    import json as _json

    key = (kind, _json.dumps(kwargs, sort_keys=True, default=str))
    with _DATASET_CACHE_LOCK:
        if key in _DATASET_CACHE:
            _DATASET_CACHE_STATS["hits"] += 1
            return _DATASET_CACHE[key]
        _DATASET_CACHE_STATS["misses"] += 1
    # Build outside the lock: dataset generation is the expensive part and
    # builders are deterministic, so a rare duplicate build is harmless.
    value = builder(**kwargs)
    with _DATASET_CACHE_LOCK:
        while len(_DATASET_CACHE) >= _DATASET_CACHE_LIMIT:
            _DATASET_CACHE.pop(next(iter(_DATASET_CACHE)), None)
        _DATASET_CACHE[key] = value
    return value


def clear_dataset_cache() -> None:
    """Drop all memoized datasets (tests; long-lived servers changing data)."""
    with _DATASET_CACHE_LOCK:
        _DATASET_CACHE.clear()
        _DATASET_CACHE_STATS["hits"] = 0
        _DATASET_CACHE_STATS["misses"] = 0


def dataset_cache_info() -> dict:
    """Introspection: cache size, hit/miss counters."""
    with _DATASET_CACHE_LOCK:
        return {"size": len(_DATASET_CACHE), **_DATASET_CACHE_STATS}


def _build_loaders(config: ExperimentConfig) -> tuple[ArrayDataLoader, ArrayDataLoader, int]:
    """Build (train_loader, val_loader, input_features) for the config."""
    shuffle_seed = config.shuffle_seed if config.shuffle_seed is not None else config.seed
    if config.dataset in ("cifar_like", "imagenet_like"):
        builder = cifar_like if config.dataset == "cifar_like" else imagenet_like
        kwargs = dict(num_train=config.train_size, num_test=config.test_size,
                      num_classes=config.num_classes, seed=config.data_seed)
        kwargs.update(config.data_kwargs)
        dataset = _cached_dataset(config.dataset, builder, kwargs)
        train = train_loader(dataset, batch_size=config.batch_size, seed=shuffle_seed)
        val = test_loader(dataset, batch_size=max(config.batch_size, 128))
        image_shape = dataset.train_images.shape[1:]
        features = int(np.prod(image_shape))
        return train, val, features

    if config.dataset in ("spirals", "blobs"):
        builder = make_spirals if config.dataset == "spirals" else make_blobs
        total = config.train_size + config.test_size
        # The toy builders emit (num_samples // num_classes) per class, so a
        # non-divisible total would come up short — and the shortfall would
        # silently empty the validation split.  Over-request and trim after
        # shuffling instead.
        per_class = -(-total // config.num_classes)  # ceil division
        kwargs = dict(num_samples=per_class * config.num_classes,
                      num_classes=config.num_classes, seed=config.data_seed)
        kwargs.update(config.data_kwargs)
        points, labels = _cached_dataset(config.dataset, builder, kwargs)
        order = np.random.default_rng(config.data_seed).permutation(len(points))
        points, labels = points[order][:total], labels[order][:total]
        split = config.train_size
        train = ArrayDataLoader(points[:split], labels[:split],
                                batch_size=config.batch_size, seed=shuffle_seed)
        val = ArrayDataLoader(points[split:], labels[split:],
                              batch_size=max(len(points) - split, 1), shuffle=False)
        return train, val, points.shape[1]

    raise ValueError(
        f"unknown dataset {config.dataset!r}; expected one of "
        f"'cifar_like', 'imagenet_like', 'spirals', 'blobs'"
    )


def _build_model(config: ExperimentConfig, in_features: int):
    """Build the model named by the config (rng seeded from config.seed)."""
    rng = np.random.default_rng(config.seed)
    kwargs = dict(config.model_kwargs)
    if config.model == "mlp":
        kwargs.setdefault("hidden", (64, 32))
        return MLP(in_features, num_classes=config.num_classes, rng=rng, **kwargs)
    if config.model == "lenet":
        return LeNet(num_classes=config.num_classes, rng=rng, **kwargs)
    if config.model == "tiny_resnet":
        kwargs.setdefault("base_width", 8)
        return tiny_resnet(num_classes=config.num_classes, rng=rng, **kwargs)
    if config.model == "cifar_resnet":
        kwargs.setdefault("stage_blocks", (1, 1, 1))
        kwargs.setdefault("base_width", 8)
        kwargs.setdefault("stem", "cifar")
        return ResNet(num_classes=config.num_classes, rng=rng, **kwargs)
    if config.model == "imagenet_resnet":
        kwargs.setdefault("stage_blocks", (1, 1, 1, 1))
        kwargs.setdefault("base_width", 8)
        kwargs.setdefault("stem", "imagenet")
        return ResNet(num_classes=config.num_classes, rng=rng, **kwargs)
    raise ValueError(
        f"unknown model {config.model!r}; expected one of "
        f"'mlp', 'lenet', 'tiny_resnet', 'cifar_resnet', 'imagenet_resnet'"
    )


def _build_scheduler(config: ExperimentConfig, optimizer):
    if config.scheduler is None or config.scheduler == "none":
        return None
    if config.scheduler == "step":
        return StepLR(optimizer, step_size=max(config.epochs // 3, 1))
    if config.scheduler == "multistep":
        return MultiStepLR(optimizer, milestones=(config.epochs // 2,
                                                  3 * config.epochs // 4))
    if config.scheduler == "cosine":
        return CosineAnnealingLR(optimizer, t_max=max(config.epochs, 1))
    raise ValueError(
        f"unknown scheduler {config.scheduler!r}; expected "
        f"'step', 'multistep', 'cosine', or None"
    )


def build_experiment(config: Union[ExperimentConfig, Mapping],
                     epoch_callbacks: Optional[list] = None) -> Experiment:
    """Wire a complete experiment from a config (or its dict form).

    ``epoch_callbacks`` are passed to the trainer (they are code, not data,
    so they ride alongside the declarative config).
    """
    if isinstance(config, Mapping):
        config = ExperimentConfig.from_dict(config)
    train, val, in_features = _build_loaders(config)
    model = _build_model(config, in_features)
    optimizer = SGD(model.parameters(), lr=config.lr, momentum=config.momentum,
                    weight_decay=config.weight_decay)
    scheduler = _build_scheduler(config, optimizer)
    policy = build_policy(config.policy)
    loss_scaler = make_loss_scaler(policy) if config.loss_scaling else None
    trainer = PositTrainer(
        model,
        optimizer,
        CrossEntropyLoss(),
        policy=policy,
        warmup=WarmupSchedule(config.warmup_epochs),
        scheduler=scheduler,
        epoch_callbacks=epoch_callbacks,
        loss_scaler=loss_scaler,
        verbose=config.verbose,
    )
    return Experiment(
        config=config,
        model=model,
        optimizer=optimizer,
        scheduler=scheduler,
        policy=policy,
        loss_scaler=loss_scaler,
        trainer=trainer,
        train_loader=train,
        val_loader=val,
    )


def run_experiment(config: Union[ExperimentConfig, Mapping],
                   epoch_callbacks: Optional[list] = None):
    """Build and run an experiment; returns its :class:`TrainingHistory`."""
    return build_experiment(config, epoch_callbacks=epoch_callbacks).run()
