"""Bit-exact scalar posit encode/decode and arithmetic.

This module works on *bit patterns* (Python integers in ``[0, 2**n)``) and is
the ground truth against which the vectorized quantizer in
:mod:`repro.posit.quantize` and the hardware models in :mod:`repro.hardware`
are validated.  It follows the type-3 unum / posit definition used by the
paper (Eq. (1)):

``x = (-1)**s * useed**k * 2**e * (1 + f)``

with two special patterns: ``000...0`` encodes zero and ``100...0`` encodes
NaR (the paper writes it as +-inf).

Negative values use two's-complement encoding of the bit pattern, as in the
posit standard.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .config import PositConfig

__all__ = [
    "PositFields",
    "decode_fields",
    "decode",
    "encode",
    "next_up",
    "next_down",
    "enumerate_positive_values",
    "add",
    "sub",
    "mul",
    "div",
    "fma",
    "PositScalar",
]


@dataclass(frozen=True)
class PositFields:
    """Decomposition of a posit bit pattern into its structural fields.

    Attributes
    ----------
    sign:
        0 for non-negative patterns, 1 for negative patterns.
    regime:
        The regime value ``k`` (an integer, possibly negative).
    regime_width:
        Number of bits occupied by the regime run *including* the terminating
        bit (when present).
    exponent:
        The decoded exponent value ``e`` in ``[0, 2**es)``.  When fewer than
        ``es`` exponent bits fit in the word the missing low-order bits are
        taken as zero.
    exponent_width:
        Number of exponent bits physically present in the word.
    fraction:
        The fraction value ``f`` in ``[0, 1)``.
    fraction_width:
        Number of fraction bits physically present in the word.
    is_zero / is_nar:
        Flags for the two special patterns.
    """

    sign: int
    regime: int
    regime_width: int
    exponent: int
    exponent_width: int
    fraction: float
    fraction_width: int
    is_zero: bool = False
    is_nar: bool = False

    @property
    def scale(self) -> int:
        """Total power-of-two scale, ``k * 2**es + e`` (requires config es).

        Note: this property is only meaningful when combined with the config
        that produced it; prefer :func:`decode` for values.
        """
        raise AttributeError("use decode() for values; scale depends on es")


def _validate_pattern(bits: int, config: PositConfig) -> int:
    mask = (1 << config.n) - 1
    if not isinstance(bits, (int,)):
        raise TypeError(f"bit pattern must be an int, got {type(bits).__name__}")
    return bits & mask


def decode_fields(bits: int, config: PositConfig) -> PositFields:
    """Split a posit bit pattern into sign/regime/exponent/fraction fields.

    For negative patterns the fields describe the two's complement of the
    pattern (i.e. the magnitude), which is how posit hardware decoders operate.
    """
    n, es = config.n, config.es
    bits = _validate_pattern(bits, config)

    if bits == 0:
        return PositFields(0, 0, 0, 0, 0, 0.0, 0, is_zero=True)
    if bits == config.nar_pattern:
        return PositFields(1, 0, 0, 0, 0, 0.0, 0, is_nar=True)

    sign = (bits >> (n - 1)) & 1
    if sign:
        # Two's complement to obtain the magnitude pattern.
        bits = (-bits) & ((1 << n) - 1)

    body = bits & ((1 << (n - 1)) - 1)  # n-1 bits after the sign
    body_width = n - 1

    # Regime: run of identical leading bits, terminated by the opposite bit
    # (or by the end of the word).
    first_bit = (body >> (body_width - 1)) & 1
    run = 0
    for i in range(body_width - 1, -1, -1):
        if (body >> i) & 1 == first_bit:
            run += 1
        else:
            break
    if first_bit == 1:
        regime = run - 1
    else:
        regime = -run
    regime_width = min(run + 1, body_width)

    remaining = body_width - regime_width
    exponent_width = min(es, max(remaining, 0))
    fraction_width = max(remaining - es, 0)

    if remaining > 0:
        tail = body & ((1 << remaining) - 1)
    else:
        tail = 0

    frac_bits = tail & ((1 << fraction_width) - 1) if fraction_width > 0 else 0
    exp_bits = tail >> fraction_width if exponent_width > 0 else 0
    # Missing low-order exponent bits are zero.
    exponent = exp_bits << (es - exponent_width)

    fraction = frac_bits / float(1 << fraction_width) if fraction_width > 0 else 0.0

    return PositFields(
        sign=sign,
        regime=regime,
        regime_width=regime_width,
        exponent=exponent,
        exponent_width=exponent_width,
        fraction=fraction,
        fraction_width=fraction_width,
    )


def decode(bits: int, config: PositConfig) -> float:
    """Decode a posit bit pattern to its real value.

    Zero decodes to ``0.0`` and NaR decodes to ``float('nan')``.
    """
    fields = decode_fields(bits, config)
    if fields.is_zero:
        return 0.0
    if fields.is_nar:
        return math.nan
    scale = fields.regime * (1 << config.es) + fields.exponent
    magnitude = (2.0**scale) * (1.0 + fields.fraction)
    return -magnitude if fields.sign else magnitude


def _encode_magnitude_rtz(x: float, config: PositConfig) -> int:
    """Encode a positive magnitude with round-to-zero (truncation).

    ``x`` must satisfy ``minpos <= x <= maxpos``.  Returns the positive bit
    pattern (sign bit clear).
    """
    n, es = config.n, config.es

    exp = math.floor(math.log2(x))
    # Guard against log2 rounding at exact powers of two.
    if 2.0**exp > x:
        exp -= 1
    elif 2.0 ** (exp + 1) <= x:
        exp += 1
    exp = max(-config.max_exponent, min(config.max_exponent, exp))

    k = exp >> es  # floor division for negative values as well
    e = exp - (k << es)
    f = x / (2.0**exp) - 1.0

    if k >= 0:
        regime_width = k + 2
        regime_field = (1 << (k + 1)) - 1  # k+1 ones followed by a zero
        regime_field <<= 1
    else:
        regime_width = -k + 1
        regime_field = 1  # -k zeros followed by a one

    body_width = n - 1
    if regime_width > body_width:
        # Regime saturates the word: the terminating bit (and everything
        # after) is dropped.  This only happens at maxpos / minpos.
        if k >= 0:
            return (1 << body_width) - 1
        return 1

    remaining = body_width - regime_width
    eb = min(es, remaining)
    fb = max(remaining - es, 0)

    exp_field = e >> (es - eb)  # truncate low-order exponent bits
    frac_field = int(math.floor(f * (1 << fb))) if fb > 0 else 0
    frac_field = min(frac_field, (1 << fb) - 1) if fb > 0 else 0

    # The regime field (run plus terminating bit) occupies the top
    # ``regime_width`` bits of the body; for k < 0 it reduces to a single 1
    # preceded by zeros, which the shift below places correctly.
    body = (regime_field << remaining) | (exp_field << fb) | frac_field
    return body & ((1 << body_width) - 1)


def encode(x: float, config: PositConfig, rounding: str = "nearest") -> int:
    """Encode a real number to the closest posit bit pattern.

    Parameters
    ----------
    x:
        The value to encode.  ``nan``/``inf`` map to NaR.
    config:
        Target posit format.
    rounding:
        ``"nearest"`` (round to nearest, ties to even code — the posit
        standard behaviour), ``"zero"`` (round the magnitude toward zero, as
        in Algorithm 1 of the paper), or ``"up"`` / ``"down"`` (directed
        rounding of the magnitude).

    Notes
    -----
    Under ``"zero"`` rounding, magnitudes smaller than ``minpos`` flush to the
    zero pattern (Algorithm 1, lines 3-4).  Under ``"nearest"`` rounding the
    posit convention is that non-zero values never round to zero, so such
    magnitudes encode to ``minpos`` when they are at least ``minpos / 2``
    and to zero below that midpoint.
    """
    n = config.n
    if math.isnan(x) or math.isinf(x):
        return config.nar_pattern
    if x == 0.0:
        return 0

    sign = x < 0
    mag = abs(x)

    if rounding == "zero":
        if mag < config.minpos:
            return 0
        mag = min(mag, config.maxpos)
        body = _encode_magnitude_rtz(mag, config)
    elif rounding in ("nearest", "up", "down"):
        if mag >= config.maxpos:
            body = (1 << (n - 1)) - 1
        elif mag <= config.minpos:
            if rounding == "up":
                body = 1
            elif rounding == "down":
                body = 1 if mag >= config.minpos else 0
            else:  # nearest: never round a non-zero value to zero unless
                # it is below half of minpos.
                body = 1 if mag >= config.minpos / 2.0 else 0
        else:
            lo = _encode_magnitude_rtz(mag, config)
            lo_val = decode(lo, config)
            if lo_val == mag:
                body = lo
            else:
                hi = lo + 1
                hi_val = decode(hi, config)
                if rounding == "down":
                    body = lo
                elif rounding == "up":
                    body = hi
                else:
                    mid = (lo_val + hi_val) / 2.0
                    if mag < mid:
                        body = lo
                    elif mag > mid:
                        body = hi
                    else:  # tie: round to even code
                        body = lo if (lo & 1) == 0 else hi
    else:
        raise ValueError(f"unknown rounding mode: {rounding!r}")

    if body == 0:
        return 0
    if sign:
        return (-body) & ((1 << n) - 1)
    return body


def next_up(bits: int, config: PositConfig) -> int:
    """Return the bit pattern of the next larger representable value.

    The posit encoding has the property that interpreting patterns as signed
    two's-complement integers orders them by value, so ``next_up`` is simply
    ``bits + 1`` (skipping NaR).
    """
    n = config.n
    mask = (1 << n) - 1
    nxt = (bits + 1) & mask
    if nxt == config.nar_pattern:
        raise OverflowError("next_up of maxpos is NaR")
    return nxt


def next_down(bits: int, config: PositConfig) -> int:
    """Return the bit pattern of the next smaller representable value."""
    n = config.n
    mask = (1 << n) - 1
    if bits == config.nar_pattern:
        raise ValueError("next_down of NaR is undefined")
    nxt = (bits - 1) & mask
    if nxt == config.nar_pattern:
        raise OverflowError("next_down of -maxpos is NaR")
    return nxt


def enumerate_positive_values(config: PositConfig) -> list[float]:
    """Return all strictly positive representable values in increasing order."""
    return [decode(code, config) for code in range(1, 1 << (config.n - 1))]


def _binary_op(a: int, b: int, config: PositConfig, op, rounding: str = "nearest") -> int:
    """Decode-to-float, operate, re-encode.  NaR is propagated."""
    if a == config.nar_pattern or b == config.nar_pattern:
        return config.nar_pattern
    va, vb = decode(a, config), decode(b, config)
    try:
        result = op(va, vb)
    except ZeroDivisionError:
        return config.nar_pattern
    return encode(result, config, rounding=rounding)


def add(a: int, b: int, config: PositConfig, rounding: str = "nearest") -> int:
    """Posit addition on bit patterns."""
    return _binary_op(a, b, config, lambda x, y: x + y, rounding)


def sub(a: int, b: int, config: PositConfig, rounding: str = "nearest") -> int:
    """Posit subtraction on bit patterns."""
    return _binary_op(a, b, config, lambda x, y: x - y, rounding)


def mul(a: int, b: int, config: PositConfig, rounding: str = "nearest") -> int:
    """Posit multiplication on bit patterns."""
    return _binary_op(a, b, config, lambda x, y: x * y, rounding)


def div(a: int, b: int, config: PositConfig, rounding: str = "nearest") -> int:
    """Posit division on bit patterns.  Division by zero yields NaR."""
    return _binary_op(a, b, config, lambda x, y: x / y, rounding)


def fma(a: int, b: int, c: int, config: PositConfig, rounding: str = "nearest") -> int:
    """Fused multiply-add ``a * b + c`` with a single final rounding."""
    if config.nar_pattern in (a, b, c):
        return config.nar_pattern
    va, vb, vc = decode(a, config), decode(b, config), decode(c, config)
    return encode(va * vb + vc, config, rounding=rounding)


class PositScalar:
    """A convenience wrapper pairing a bit pattern with its format.

    Supports the usual arithmetic operators with correct per-operation
    rounding, comparison by value, and conversion to/from floats.

    Examples
    --------
    >>> from repro.posit import PositConfig
    >>> cfg = PositConfig(8, 1)
    >>> a = PositScalar.from_float(1.5, cfg)
    >>> b = PositScalar.from_float(2.25, cfg)
    >>> float(a * b)
    3.375
    """

    __slots__ = ("bits", "config")

    def __init__(self, bits: int, config: PositConfig):
        self.bits = _validate_pattern(bits, config)
        self.config = config

    @classmethod
    def from_float(cls, x: float, config: PositConfig, rounding: str = "nearest") -> "PositScalar":
        """Construct from a real value, rounding to the nearest posit."""
        return cls(encode(x, config, rounding=rounding), config)

    def __float__(self) -> float:
        return decode(self.bits, self.config)

    @property
    def value(self) -> float:
        """The real value represented by this posit."""
        return decode(self.bits, self.config)

    @property
    def is_nar(self) -> bool:
        """Whether this is the NaR (Not a Real) pattern."""
        return self.bits == self.config.nar_pattern

    @property
    def is_zero(self) -> bool:
        """Whether this is the zero pattern."""
        return self.bits == 0

    def fields(self) -> PositFields:
        """Return the structural field decomposition of this posit."""
        return decode_fields(self.bits, self.config)

    def _check_compatible(self, other: "PositScalar") -> None:
        if self.config != other.config:
            raise ValueError(
                f"cannot mix posit formats {self.config} and {other.config}"
            )

    def _coerce(self, other) -> "PositScalar":
        if isinstance(other, PositScalar):
            self._check_compatible(other)
            return other
        if isinstance(other, (int, float)):
            return PositScalar.from_float(float(other), self.config)
        return NotImplemented

    def __add__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return PositScalar(add(self.bits, other.bits, self.config), self.config)

    __radd__ = __add__

    def __sub__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return PositScalar(sub(self.bits, other.bits, self.config), self.config)

    def __rsub__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return PositScalar(sub(other.bits, self.bits, self.config), self.config)

    def __mul__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return PositScalar(mul(self.bits, other.bits, self.config), self.config)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return PositScalar(div(self.bits, other.bits, self.config), self.config)

    def __rtruediv__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return PositScalar(div(other.bits, self.bits, self.config), self.config)

    def __neg__(self):
        return PositScalar((-self.bits) & ((1 << self.config.n) - 1), self.config)

    def __abs__(self):
        return -self if self.value < 0 else self

    def __eq__(self, other) -> bool:
        if isinstance(other, PositScalar):
            return self.config == other.config and self.bits == other.bits
        if isinstance(other, (int, float)):
            return self.value == float(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.bits, self.config))

    def __lt__(self, other) -> bool:
        other = self._coerce(other)
        return self.value < other.value

    def __le__(self, other) -> bool:
        other = self._coerce(other)
        return self.value <= other.value

    def __gt__(self, other) -> bool:
        other = self._coerce(other)
        return self.value > other.value

    def __ge__(self, other) -> bool:
        other = self._coerce(other)
        return self.value >= other.value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PositScalar(bits=0b{self.bits:0{self.config.n}b}, "
            f"value={self.value!r}, format={self.config})"
        )
