"""Vectorized posit quantization (Algorithm 1 of the paper).

The paper's training methodology never executes arithmetic natively in posit
hardware; instead every tensor flowing through the network is passed through
the transformation operator ``P_{n,es}(x)`` which snaps each FP32 value to the
nearest-below (round-to-zero) value representable in the target posit format
(Algorithm 1), and real arithmetic is then performed on those snapped values.
This module provides an exact, vectorized NumPy implementation of that
operator plus the round-to-nearest-even and stochastic-rounding variants used
in the ablation studies.

Two views of the quantized data are offered:

* :func:`quantize` — returns *real values* lying on the posit grid
  ("fake quantization", the form used during training).
* :func:`quantize_to_bits` / :func:`bits_to_float` — returns/consumes the
  actual bit patterns, used by the hardware model and the memory-traffic
  accounting.

All functions are validated against the scalar reference implementation in
:mod:`repro.posit.scalar` by exhaustive enumeration for small word sizes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .config import PositConfig

__all__ = [
    "ROUNDING_MODES",
    "quantize",
    "quantize_to_bits",
    "bits_to_float",
    "PositQuantizer",
]

#: Supported rounding modes.  ``"zero"`` is Algorithm 1 (truncation toward
#: zero); ``"nearest"`` is round-to-nearest with ties to the even code (the
#: posit standard); ``"stochastic"`` rounds up with probability proportional
#: to the distance from the lower grid point.
ROUNDING_MODES = ("zero", "nearest", "stochastic")

#: Formats up to this word size use a cached lookup table of all positive
#: values (2**(n-1) - 1 entries) and ``numpy.searchsorted``, which is several
#: times faster than the field-by-field algorithmic path for the large
#: activation/gradient tensors seen during training.
_GRID_MAX_BITS = 20

_GRID_CACHE: dict[tuple[int, int], np.ndarray] = {}


def positive_value_grid(config: PositConfig) -> np.ndarray:
    """Return all strictly positive values of ``config`` in increasing order.

    The grid is cached per format.  Grids are only built for word sizes up to
    ``_GRID_MAX_BITS``; larger formats fall back to the algorithmic path.
    """
    key = config.as_tuple()
    grid = _GRID_CACHE.get(key)
    if grid is None:
        codes = np.arange(1, np.int64(1) << (config.n - 1), dtype=np.int64)
        grid = _decode_bodies(codes, config)
        _GRID_CACHE[key] = grid
    return grid


def _as_float_array(x) -> np.ndarray:
    arr = np.asarray(x, dtype=np.float64)
    return arr


def _encode_magnitudes_rtz(mag: np.ndarray, config: PositConfig) -> np.ndarray:
    """Encode positive magnitudes (clipped to [minpos, maxpos]) to codes.

    Returns the ``n - 1``-bit body codes (sign bit excluded) as ``int64``.
    Rounding is toward zero, i.e. the returned code is the largest code whose
    value does not exceed ``mag``.
    """
    n, es = config.n, config.es
    body_width = n - 1

    exp = np.floor(np.log2(mag)).astype(np.int64)
    # Repair off-by-one errors from floating-point log2 at power-of-two
    # boundaries.
    exp = np.where(np.power(2.0, exp + 1) <= mag, exp + 1, exp)
    exp = np.where(np.power(2.0, exp.astype(np.float64)) > mag, exp - 1, exp)
    exp = np.clip(exp, -config.max_exponent, config.max_exponent)

    k = exp >> es  # arithmetic shift == floor division by 2**es
    e = exp - (k << es)
    f = mag / np.power(2.0, exp.astype(np.float64)) - 1.0

    regime_width = np.where(k >= 0, k + 2, -k + 1)
    remaining = body_width - regime_width
    remaining_c = np.maximum(remaining, 0)
    eb = np.minimum(es, remaining_c)
    fb = np.maximum(remaining_c - es, 0)

    exp_field = e >> (es - eb)
    frac_field = np.floor(f * np.power(2.0, fb.astype(np.float64))).astype(np.int64)
    frac_max = (np.int64(1) << fb) - 1
    frac_field = np.minimum(frac_field, frac_max)

    regime_field = np.where(
        k >= 0,
        ((np.int64(1) << np.minimum(k + 1, body_width)) - 1) << 1,
        np.int64(1),
    )

    body = (regime_field << remaining_c) | (exp_field << fb) | frac_field
    # Saturating regimes (k == n - 2 gives remaining == -1): the pattern is
    # simply all ones after the sign bit (maxpos).
    body = np.where((k >= 0) & (remaining < 0), (np.int64(1) << body_width) - 1, body)
    body = np.minimum(body, (np.int64(1) << body_width) - 1)
    return body.astype(np.int64)


def _decode_bodies(codes: np.ndarray, config: PositConfig) -> np.ndarray:
    """Decode positive body codes (``1 <= code <= 2**(n-1) - 1``) to values."""
    n, es = config.n, config.es
    body_width = n - 1
    codes = codes.astype(np.int64)

    first_bit = (codes >> (body_width - 1)) & 1
    run = np.zeros(codes.shape, dtype=np.int64)
    still_running = np.ones(codes.shape, dtype=bool)
    for i in range(body_width - 1, -1, -1):
        bit = (codes >> i) & 1
        matches = still_running & (bit == first_bit)
        run += matches.astype(np.int64)
        still_running = matches

    k = np.where(first_bit == 1, run - 1, -run)
    regime_width = np.minimum(run + 1, body_width)
    remaining = body_width - regime_width
    eb = np.minimum(es, remaining)
    fb = np.maximum(remaining - es, 0)

    tail = codes & ((np.int64(1) << remaining) - 1)
    frac_bits = tail & ((np.int64(1) << fb) - 1)
    exp_bits = tail >> fb
    e = exp_bits << (es - eb)
    f = frac_bits / np.power(2.0, fb.astype(np.float64))

    scale = k * (1 << es) + e
    value = np.power(2.0, scale.astype(np.float64)) * (1.0 + f)
    return value


def _values_from_codes(codes: np.ndarray, config: PositConfig) -> np.ndarray:
    """Map positive body codes to their real values, via the grid when cached."""
    if config.n <= _GRID_MAX_BITS:
        grid = positive_value_grid(config)
        return grid[codes - 1]
    return _decode_bodies(codes, config)


def _round_codes(
    mag: np.ndarray,
    config: PositConfig,
    rounding: str,
    rng: Optional[np.random.Generator],
) -> np.ndarray:
    """Round positive magnitudes (within [minpos, maxpos]) to body codes."""
    body_width = config.n - 1
    max_code = (np.int64(1) << body_width) - 1

    if config.n <= _GRID_MAX_BITS:
        # Fast path: binary search against the cached value grid.  Codes are
        # ``grid index + 1`` because code 0 is the zero pattern.
        grid = positive_value_grid(config)
        lo = np.searchsorted(grid, mag, side="right").astype(np.int64)
        lo = np.clip(lo, 1, max_code)
    else:
        lo = _encode_magnitudes_rtz(mag, config)
    if rounding == "zero":
        return lo

    lo_val = _values_from_codes(lo, config)
    exact = lo_val >= mag  # lo_val == mag up to float equality
    hi = np.minimum(lo + 1, max_code)
    hi_val = _values_from_codes(hi, config)

    if rounding == "nearest":
        mid = 0.5 * (lo_val + hi_val)
        pick_hi = mag > mid
        tie = mag == mid
        # Ties go to the even code.
        pick_hi = pick_hi | (tie & ((lo & 1) == 1))
    elif rounding == "stochastic":
        if rng is None:
            rng = np.random.default_rng()
        gap = hi_val - lo_val
        with np.errstate(divide="ignore", invalid="ignore"):
            prob = np.where(gap > 0, (mag - lo_val) / gap, 0.0)
        prob = np.clip(prob, 0.0, 1.0)
        pick_hi = rng.random(mag.shape) < prob
    else:
        raise ValueError(
            f"unknown rounding mode {rounding!r}; expected one of {ROUNDING_MODES}"
        )

    return np.where(exact, lo, np.where(pick_hi, hi, lo))


def quantize(
    x,
    config: PositConfig,
    rounding: str = "zero",
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Snap ``x`` element-wise onto the ``(n, es)`` posit value grid.

    This is the transformation operator ``P_{n,es}(x)`` of Algorithm 1 when
    ``rounding="zero"`` (the paper's hardware-friendly choice).

    Parameters
    ----------
    x:
        Array-like of real values (interpreted as FP32/FP64 reals).
    config:
        Target posit format.
    rounding:
        One of :data:`ROUNDING_MODES`.
    rng:
        Random generator used only by stochastic rounding.

    Returns
    -------
    numpy.ndarray
        Array of ``float64`` values, each exactly representable in the target
        posit format.  NaN and infinity map to NaN (NaR has no real value).

    Notes
    -----
    Underflow behaviour follows the selected mode: with ``"zero"`` rounding,
    magnitudes below ``minpos`` flush to 0 (Algorithm 1 lines 3-4); with
    ``"nearest"`` rounding they round to ``minpos`` when at least half of
    ``minpos`` (the posit standard never rounds a non-zero value to zero, but
    the fake-quantization training path benefits from flushing genuinely
    negligible values, so we use the midpoint rule); stochastic rounding
    chooses between 0 and ``minpos`` proportionally.
    """
    arr = _as_float_array(x)
    scalar_input = arr.ndim == 0
    arr = np.atleast_1d(arr)

    out = np.zeros_like(arr)
    sign = np.sign(arr)
    mag = np.abs(arr)

    nonfinite = ~np.isfinite(arr)
    nonzero = (mag > 0) & ~nonfinite

    if rounding == "zero":
        representable = nonzero & (mag >= config.minpos)
        underflow_to_min = np.zeros_like(representable)
    elif rounding == "nearest":
        representable = nonzero & (mag >= config.minpos)
        underflow_to_min = nonzero & (mag < config.minpos) & (mag >= config.minpos / 2.0)
    elif rounding == "stochastic":
        representable = nonzero & (mag >= config.minpos)
        small = nonzero & (mag < config.minpos)
        if rng is None:
            rng = np.random.default_rng()
        draw = rng.random(arr.shape)
        underflow_to_min = small & (draw < mag / config.minpos)
    else:
        raise ValueError(
            f"unknown rounding mode {rounding!r}; expected one of {ROUNDING_MODES}"
        )

    if np.any(representable):
        clipped = np.clip(mag[representable], config.minpos, config.maxpos)
        codes = _round_codes(clipped, config, rounding, rng)
        out[representable] = sign[representable] * _values_from_codes(codes, config)

    if np.any(underflow_to_min):
        out[underflow_to_min] = sign[underflow_to_min] * config.minpos

    out[nonfinite] = np.nan

    if scalar_input:
        return out[0]
    return out


def quantize_to_bits(
    x,
    config: PositConfig,
    rounding: str = "zero",
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Quantize ``x`` and return the posit *bit patterns* (two's complement).

    The returned array has dtype ``int64``; each element lies in
    ``[0, 2**n)``.  NaN/inf map to the NaR pattern.
    """
    arr = np.atleast_1d(_as_float_array(x))
    values = np.atleast_1d(quantize(arr, config, rounding=rounding, rng=rng))

    n = config.n
    mask = (np.int64(1) << n) - 1
    bits = np.zeros(arr.shape, dtype=np.int64)

    nar = ~np.isfinite(values)
    bits[nar] = config.nar_pattern

    nonzero = (values != 0) & ~nar
    if np.any(nonzero):
        mags = np.abs(values[nonzero])
        bodies = _encode_magnitudes_rtz(mags, config)
        negative = values[nonzero] < 0
        patterns = np.where(negative, (-bodies) & mask, bodies)
        bits[nonzero] = patterns

    scalar_input = np.asarray(x).ndim == 0
    return bits[0] if scalar_input else bits


def bits_to_float(bits, config: PositConfig) -> np.ndarray:
    """Decode an array of posit bit patterns to real values.

    Zero decodes to 0.0 and NaR decodes to NaN.
    """
    arr = np.atleast_1d(np.asarray(bits, dtype=np.int64))
    n = config.n
    mask = (np.int64(1) << n) - 1
    arr = arr & mask

    out = np.zeros(arr.shape, dtype=np.float64)
    nar = arr == config.nar_pattern
    zero = arr == 0
    regular = ~nar & ~zero

    if np.any(regular):
        patterns = arr[regular]
        negative = (patterns >> (n - 1)) & 1 == 1
        bodies = np.where(negative, (-patterns) & mask, patterns) & ((np.int64(1) << (n - 1)) - 1)
        values = _decode_bodies(bodies, config)
        out[regular] = np.where(negative, -values, values)

    out[nar] = np.nan

    scalar_input = np.asarray(bits).ndim == 0
    return out[0] if scalar_input else out


class PositQuantizer:
    """Reusable quantizer bound to a format and rounding mode.

    This is the object that the training pipeline (:mod:`repro.core`)
    attaches to each tensor role.  It optionally records simple running
    statistics about the data it quantizes, which the analysis tooling uses
    to reproduce Fig. 2 style plots.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.posit import PositConfig, PositQuantizer
    >>> q = PositQuantizer(PositConfig(8, 1))
    >>> q(np.array([0.1, 1.0, 100.0]))
    array([9.96093750e-02, 1.00000000e+00, 9.60000000e+01])
    """

    def __init__(
        self,
        config: PositConfig,
        rounding: str = "zero",
        rng: Optional[np.random.Generator] = None,
        track_stats: bool = False,
    ):
        if rounding not in ROUNDING_MODES:
            raise ValueError(
                f"unknown rounding mode {rounding!r}; expected one of {ROUNDING_MODES}"
            )
        self.config = config
        self.rounding = rounding
        self.rng = rng
        self.track_stats = track_stats
        self.num_calls = 0
        self.num_elements = 0
        self.num_underflows = 0
        self.num_saturations = 0

    @property
    def format(self) -> PositConfig:
        """The bound format (uniform accessor across quantizer families)."""
        return self.config

    def __call__(self, x) -> np.ndarray:
        """Quantize ``x`` to the bound posit format."""
        arr = _as_float_array(x)
        result = quantize(arr, self.config, rounding=self.rounding, rng=self.rng)
        if self.track_stats:
            flat = np.atleast_1d(arr)
            mag = np.abs(flat[np.isfinite(flat)])
            self.num_calls += 1
            self.num_elements += int(mag.size)
            self.num_underflows += int(np.sum((mag > 0) & (mag < self.config.minpos)))
            self.num_saturations += int(np.sum(mag > self.config.maxpos))
        return result

    def to_bits(self, x) -> np.ndarray:
        """Quantize ``x`` and return bit patterns instead of values."""
        return quantize_to_bits(x, self.config, rounding=self.rounding, rng=self.rng)

    def reset_stats(self) -> None:
        """Zero the running statistics counters."""
        self.num_calls = 0
        self.num_elements = 0
        self.num_underflows = 0
        self.num_saturations = 0

    @property
    def stats(self) -> dict:
        """Snapshot of the running statistics as a plain dict."""
        return {
            "calls": self.num_calls,
            "elements": self.num_elements,
            "underflows": self.num_underflows,
            "saturations": self.num_saturations,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PositQuantizer({self.config}, rounding={self.rounding!r})"
