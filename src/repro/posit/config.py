"""Posit format configuration.

A posit format is fully determined by the pair ``(n, es)`` where ``n`` is the
total word size in bits and ``es`` is the maximum number of exponent bits
(Gustafson & Yonemoto, 2017).  This module defines :class:`PositConfig`, a
small immutable value object that exposes the derived constants used
throughout the library:

``useed``
    ``2 ** (2 ** es)`` — the base of the regime scaling.
``maxpos`` / ``minpos``
    The largest and smallest representable positive values,
    ``useed ** (n - 2)`` and ``useed ** (2 - n)`` respectively.

The configurations used in the paper are provided as module-level constants,
e.g. :data:`POSIT_8_1` and :data:`POSIT_16_2`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache


@dataclass(frozen=True, order=True)
class PositConfig:
    """Immutable description of an ``(n, es)`` posit format.

    Parameters
    ----------
    n:
        Total word size in bits.  Must be at least 2.
    es:
        Maximum exponent field width in bits.  Must be non-negative and small
        enough that the derived constants stay inside IEEE double range
        (``(n - 2) * 2 ** es < 1024``).

    Examples
    --------
    >>> cfg = PositConfig(8, 1)
    >>> cfg.useed
    4
    >>> cfg.maxpos
    16777216.0
    >>> cfg.minpos
    5.960464477539063e-08
    """

    n: int
    es: int

    def __post_init__(self) -> None:
        if not isinstance(self.n, int) or not isinstance(self.es, int):
            raise TypeError("n and es must be integers")
        if self.n < 2:
            raise ValueError(f"posit word size must be >= 2, got n={self.n}")
        if self.es < 0:
            raise ValueError(f"exponent field size must be >= 0, got es={self.es}")
        # Guard against formats whose dynamic range exceeds IEEE double, which
        # the software implementation relies on for exact intermediate values.
        if (self.n - 2) * (1 << self.es) >= 1024:
            raise ValueError(
                f"(n={self.n}, es={self.es}) exceeds the dynamic range representable "
                "in float64; this software model supports (n - 2) * 2**es < 1024"
            )

    @property
    def useed(self) -> int:
        """The regime base, ``2 ** (2 ** es)``."""
        return 1 << (1 << self.es)

    @property
    def maxpos(self) -> float:
        """Largest representable positive value, ``useed ** (n - 2)``."""
        return float(2.0 ** ((self.n - 2) * (1 << self.es)))

    @property
    def minpos(self) -> float:
        """Smallest representable positive value, ``useed ** (2 - n)``."""
        return float(2.0 ** (-(self.n - 2) * (1 << self.es)))

    @property
    def max_exponent(self) -> int:
        """Largest power-of-two exponent representable, ``(n - 2) * 2**es``."""
        return (self.n - 2) * (1 << self.es)

    @property
    def nar_pattern(self) -> int:
        """Bit pattern of NaR (Not a Real): sign bit set, all others zero."""
        return 1 << (self.n - 1)

    @property
    def code_count(self) -> int:
        """Total number of distinct bit patterns, ``2 ** n``."""
        return 1 << self.n

    @property
    def positive_code_count(self) -> int:
        """Number of strictly positive representable values, ``2**(n-1) - 1``."""
        return (1 << (self.n - 1)) - 1

    @property
    def dynamic_range_decades(self) -> float:
        """Dynamic range in decades, ``log10(maxpos / minpos)``."""
        import math

        return 2 * self.max_exponent * math.log10(2.0)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"posit({self.n},{self.es})"

    def as_tuple(self) -> tuple[int, int]:
        """Return ``(n, es)`` as a plain tuple."""
        return (self.n, self.es)


@lru_cache(maxsize=None)
def get_config(n: int, es: int) -> PositConfig:
    """Return a cached :class:`PositConfig` for ``(n, es)``."""
    return PositConfig(n, es)


#: Formats used throughout the paper's experiments (Table III) and hardware
#: evaluation (Tables IV and V).
POSIT_5_1 = PositConfig(5, 1)
POSIT_8_0 = PositConfig(8, 0)
POSIT_8_1 = PositConfig(8, 1)
POSIT_8_2 = PositConfig(8, 2)
POSIT_16_1 = PositConfig(16, 1)
POSIT_16_2 = PositConfig(16, 2)
POSIT_32_2 = PositConfig(32, 2)
POSIT_32_3 = PositConfig(32, 3)

#: All formats that appear in the paper, keyed by a human-readable name.
PAPER_FORMATS: dict[str, PositConfig] = {
    "posit(5,1)": POSIT_5_1,
    "posit(8,0)": POSIT_8_0,
    "posit(8,1)": POSIT_8_1,
    "posit(8,2)": POSIT_8_2,
    "posit(16,1)": POSIT_16_1,
    "posit(16,2)": POSIT_16_2,
    "posit(32,3)": POSIT_32_3,
}
