"""Posit format configuration.

A posit format is fully determined by the pair ``(n, es)`` where ``n`` is the
total word size in bits and ``es`` is the maximum number of exponent bits
(Gustafson & Yonemoto, 2017).  This module defines :class:`PositConfig`, a
small immutable value object that exposes the derived constants used
throughout the library:

``useed``
    ``2 ** (2 ** es)`` — the base of the regime scaling.
``maxpos`` / ``minpos``
    The largest and smallest representable positive values,
    ``useed ** (n - 2)`` and ``useed ** (2 - n)`` respectively.

The configurations used in the paper are provided as module-level constants,
e.g. :data:`POSIT_8_1` and :data:`POSIT_16_2`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

import numpy as np


@dataclass(frozen=True, order=True)
class PositConfig:
    """Immutable description of an ``(n, es)`` posit format.

    Parameters
    ----------
    n:
        Total word size in bits.  Must be at least 2.
    es:
        Maximum exponent field width in bits.  Must be non-negative and small
        enough that the derived constants stay inside IEEE double range
        (``(n - 2) * 2 ** es < 1024``).

    Examples
    --------
    >>> cfg = PositConfig(8, 1)
    >>> cfg.useed
    4
    >>> cfg.maxpos
    16777216.0
    >>> cfg.minpos
    5.960464477539063e-08
    """

    n: int
    es: int

    def __post_init__(self) -> None:
        if not isinstance(self.n, int) or not isinstance(self.es, int):
            raise TypeError("n and es must be integers")
        if self.n < 2:
            raise ValueError(f"posit word size must be >= 2, got n={self.n}")
        if self.es < 0:
            raise ValueError(f"exponent field size must be >= 0, got es={self.es}")
        # Guard against formats whose dynamic range exceeds IEEE double, which
        # the software implementation relies on for exact intermediate values.
        if (self.n - 2) * (1 << self.es) >= 1024:
            raise ValueError(
                f"(n={self.n}, es={self.es}) exceeds the dynamic range representable "
                "in float64; this software model supports (n - 2) * 2**es < 1024"
            )

    @property
    def useed(self) -> int:
        """The regime base, ``2 ** (2 ** es)``."""
        return 1 << (1 << self.es)

    @property
    def maxpos(self) -> float:
        """Largest representable positive value, ``useed ** (n - 2)``."""
        return float(2.0 ** ((self.n - 2) * (1 << self.es)))

    @property
    def minpos(self) -> float:
        """Smallest representable positive value, ``useed ** (2 - n)``."""
        return float(2.0 ** (-(self.n - 2) * (1 << self.es)))

    @property
    def max_exponent(self) -> int:
        """Largest power-of-two exponent representable, ``(n - 2) * 2**es``."""
        return (self.n - 2) * (1 << self.es)

    @property
    def nar_pattern(self) -> int:
        """Bit pattern of NaR (Not a Real): sign bit set, all others zero."""
        return 1 << (self.n - 1)

    @property
    def code_count(self) -> int:
        """Total number of distinct bit patterns, ``2 ** n``."""
        return 1 << self.n

    @property
    def positive_code_count(self) -> int:
        """Number of strictly positive representable values, ``2**(n-1) - 1``."""
        return (1 << (self.n - 1)) - 1

    @property
    def dynamic_range_decades(self) -> float:
        """Dynamic range in decades, ``log10(maxpos / minpos)``."""
        return 2 * self.max_exponent * math.log10(2.0)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"posit({self.n},{self.es})"

    def as_tuple(self) -> tuple[int, int]:
        """Return ``(n, es)`` as a plain tuple."""
        return (self.n, self.es)

    # ------------------------------------------------------------------ #
    # NumberFormat protocol surface (see repro.formats).  The quantize
    # machinery lives in repro.posit.quantize, which imports this module,
    # so these methods resolve it lazily at call time.
    # ------------------------------------------------------------------ #
    @property
    def bits(self) -> int:
        """Total storage width in bits (protocol alias for ``n``)."""
        return self.n

    @property
    def name(self) -> str:
        """Human-readable format name, e.g. ``"posit(8,1)"``."""
        return f"posit({self.n},{self.es})"

    def spec(self) -> str:
        """Canonical registry spec string; identical to :attr:`name`."""
        return f"posit({self.n},{self.es})"

    def quantize(self, x, mode: str = "zero",
                 rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Snap ``x`` onto this posit grid (Algorithm 1 when ``mode="zero"``).

        Dispatches to the LUT kernel (:mod:`repro.formats.kernels`) when
        enabled; the vectorized scalar path below remains the conformance
        oracle and handles formats/modes the kernels don't cover.
        """
        from repro.formats.kernels import active_kernel

        kernel = active_kernel(self, mode)
        if kernel is not None:
            return kernel.quantize(x, mode, rng)
        from .quantize import quantize as _quantize

        return _quantize(x, self, rounding=mode, rng=rng)

    def to_bits(self, x, mode: str = "zero",
                rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Quantize ``x`` and return posit bit patterns (``int64``)."""
        from repro.formats.kernels import active_kernel

        kernel = active_kernel(self, mode)
        if kernel is not None:
            return kernel.to_bits(x, mode, rng)
        from .quantize import quantize_to_bits as _quantize_to_bits

        return _quantize_to_bits(x, self, rounding=mode, rng=rng)

    def from_bits(self, bits) -> np.ndarray:
        """Decode posit bit patterns back to real values."""
        from repro.formats.kernels import active_kernel

        kernel = active_kernel(self)
        if kernel is not None:
            return kernel.from_bits(bits)
        from .quantize import bits_to_float as _bits_to_float

        return _bits_to_float(bits, self)

    def make_quantizer(self, rounding: str = "zero",
                       rng: Optional[np.random.Generator] = None,
                       track_stats: bool = False):
        """Build a :class:`~repro.posit.quantize.PositQuantizer` for this format."""
        from .quantize import PositQuantizer

        return PositQuantizer(self, rounding=rounding, rng=rng, track_stats=track_stats)


@lru_cache(maxsize=None)
def get_config(n: int, es: int) -> PositConfig:
    """Return a cached :class:`PositConfig` for ``(n, es)``."""
    return PositConfig(n, es)


#: Formats used throughout the paper's experiments (Table III) and hardware
#: evaluation (Tables IV and V).
POSIT_5_1 = PositConfig(5, 1)
POSIT_8_0 = PositConfig(8, 0)
POSIT_8_1 = PositConfig(8, 1)
POSIT_8_2 = PositConfig(8, 2)
POSIT_16_1 = PositConfig(16, 1)
POSIT_16_2 = PositConfig(16, 2)
POSIT_32_2 = PositConfig(32, 2)
POSIT_32_3 = PositConfig(32, 3)

#: All formats that appear in the paper, keyed by a human-readable name.
#: POSIT_32_2 (the posit-standard 32-bit format) is deliberately excluded:
#: the paper's experiments and hardware tables use posit(32,3), not (32,2);
#: the constant exists for interop with other posit work.  The format
#: registry (:mod:`repro.formats`) exposes *every* module-level constant,
#: including ``"posit(32,2)"``, so nothing is lost by the curation here.
PAPER_FORMATS: dict[str, PositConfig] = {
    "posit(5,1)": POSIT_5_1,
    "posit(8,0)": POSIT_8_0,
    "posit(8,1)": POSIT_8_1,
    "posit(8,2)": POSIT_8_2,
    "posit(16,1)": POSIT_16_1,
    "posit(16,2)": POSIT_16_2,
    "posit(32,3)": POSIT_32_3,
}
