"""Posit (type-3 unum) number system substrate.

This subpackage is a self-contained software implementation of the posit
number system as used by the paper: bit-exact scalar encode/decode and
arithmetic (:mod:`repro.posit.scalar`), fast vectorized quantization for
training (:mod:`repro.posit.quantize`, Algorithm 1), value-table generation
(:mod:`repro.posit.tables`, Table I), exact quire accumulation
(:mod:`repro.posit.quire`), and reduced-precision float baselines
(:mod:`repro.posit.floatformats`).
"""

from .config import (
    PAPER_FORMATS,
    POSIT_5_1,
    POSIT_8_0,
    POSIT_8_1,
    POSIT_8_2,
    POSIT_16_1,
    POSIT_16_2,
    POSIT_32_2,
    POSIT_32_3,
    PositConfig,
    get_config,
)
from .floatformats import (
    BFLOAT16,
    FP8_E4M3,
    FP8_E5M2,
    FP16,
    FP32,
    FloatFormat,
    FloatQuantizer,
    float_from_bits,
    float_quantize,
    float_to_bits,
)
from .quantize import (
    ROUNDING_MODES,
    PositQuantizer,
    bits_to_float,
    quantize,
    quantize_to_bits,
)
from .quire import Quire, exact_dot, fused_dot
from .scalar import (
    PositFields,
    PositScalar,
    add,
    decode,
    decode_fields,
    div,
    encode,
    enumerate_positive_values,
    fma,
    mul,
    next_down,
    next_up,
    sub,
)
from .tables import PositTableRow, code_space_summary, format_table, positive_value_table

__all__ = [
    # config
    "PositConfig",
    "get_config",
    "PAPER_FORMATS",
    "POSIT_5_1",
    "POSIT_8_0",
    "POSIT_8_1",
    "POSIT_8_2",
    "POSIT_16_1",
    "POSIT_16_2",
    "POSIT_32_2",
    "POSIT_32_3",
    # scalar
    "PositFields",
    "PositScalar",
    "decode",
    "decode_fields",
    "encode",
    "enumerate_positive_values",
    "next_up",
    "next_down",
    "add",
    "sub",
    "mul",
    "div",
    "fma",
    # quantize
    "ROUNDING_MODES",
    "quantize",
    "quantize_to_bits",
    "bits_to_float",
    "PositQuantizer",
    # quire
    "Quire",
    "exact_dot",
    "fused_dot",
    # tables
    "PositTableRow",
    "positive_value_table",
    "format_table",
    "code_space_summary",
    # float formats
    "FloatFormat",
    "FloatQuantizer",
    "float_quantize",
    "float_to_bits",
    "float_from_bits",
    "FP32",
    "FP16",
    "BFLOAT16",
    "FP8_E4M3",
    "FP8_E5M2",
]
