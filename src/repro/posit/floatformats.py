"""Reduced-precision IEEE-style float quantizers (baseline formats).

The paper positions posit against reduced-precision floating point formats
used by prior mixed-precision training work: FP16 (Micikevicius et al. [9]),
FP8 (Wang et al. [10]), and plain FP32.  This module provides fake-quantizers
for those formats so that the benchmark harness can run the same training
recipes under float baselines and compare.

A ``FloatFormat`` is described by exponent bits, mantissa bits, and an
exponent bias; quantization is round-to-nearest-even with gradual underflow
(subnormals) and saturation at the maximum finite value (matching the
behaviour used by quantized-training literature rather than producing inf).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "FloatFormat",
    "FP32",
    "FP16",
    "BFLOAT16",
    "FP8_E4M3",
    "FP8_E5M2",
    "float_quantize",
    "float_to_bits",
    "float_from_bits",
    "FloatQuantizer",
]


@dataclass(frozen=True)
class FloatFormat:
    """Description of a binary floating-point format.

    Attributes
    ----------
    exponent_bits:
        Width of the exponent field.
    mantissa_bits:
        Width of the explicit mantissa (fraction) field.
    name:
        Human-readable format name used in reports.
    """

    exponent_bits: int
    mantissa_bits: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.exponent_bits < 2:
            raise ValueError("exponent_bits must be >= 2")
        if self.mantissa_bits < 0:
            raise ValueError("mantissa_bits must be >= 0")

    @property
    def bits(self) -> int:
        """Total storage width including the sign bit."""
        return 1 + self.exponent_bits + self.mantissa_bits

    @property
    def bias(self) -> int:
        """Exponent bias, ``2**(exponent_bits - 1) - 1``."""
        return (1 << (self.exponent_bits - 1)) - 1

    @property
    def max_exponent(self) -> int:
        """Largest unbiased exponent of a normal number."""
        return (1 << self.exponent_bits) - 2 - self.bias

    @property
    def min_exponent(self) -> int:
        """Smallest unbiased exponent of a normal number."""
        return 1 - self.bias

    @property
    def max_value(self) -> float:
        """Largest finite representable magnitude."""
        return float(2.0**self.max_exponent * (2.0 - 2.0 ** (-self.mantissa_bits)))

    @property
    def min_normal(self) -> float:
        """Smallest positive normal magnitude."""
        return float(2.0**self.min_exponent)

    @property
    def min_subnormal(self) -> float:
        """Smallest positive subnormal magnitude."""
        return float(2.0 ** (self.min_exponent - self.mantissa_bits))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name or f"fp{self.bits}(e{self.exponent_bits}m{self.mantissa_bits})"

    # ------------------------------------------------------------------ #
    # NumberFormat protocol surface (see repro.formats).
    # ------------------------------------------------------------------ #
    @property
    def code_count(self) -> int:
        """Number of *finite* bit patterns (code-space accounting).

        The all-ones exponent is reserved for NaN/infinity in both
        directions of the bit codec, so those ``2 * 2**mantissa_bits``
        patterns can never be produced by finite data.
        """
        return (1 << self.bits) - 2 * (1 << self.mantissa_bits)

    @property
    def maxpos(self) -> float:
        """Largest representable positive magnitude (protocol alias)."""
        return self.max_value

    @property
    def minpos(self) -> float:
        """Smallest representable positive magnitude (smallest subnormal)."""
        return self.min_subnormal

    def spec(self) -> str:
        """Canonical registry spec string.

        The standard constants round-trip through their short names
        (``"fp16"``, ``"fp8_e4m3"``, ...); anonymous parametric formats use
        ``"float(<exponent bits>,<mantissa bits>)"`` — note that parsing a
        parametric spec does not reconstruct a custom ``name``.
        """
        canonical = _CANONICAL_SPECS.get(self)
        if canonical is not None:
            return canonical
        return f"float({self.exponent_bits},{self.mantissa_bits})"

    def quantize(self, x, mode: str = "nearest",
                 rng: np.random.Generator | None = None) -> np.ndarray:
        """Snap ``x`` onto this float grid.

        ``mode`` is ``"nearest"`` or ``"stochastic"``; posit's ``"zero"``
        mode is accepted and mapped to ``"nearest"`` (the convention the
        policy layer has always used for float baselines).  Narrow formats
        dispatch to the LUT kernel (:mod:`repro.formats.kernels`) when
        enabled; the module functions remain the conformance oracle.
        """
        from repro.formats.kernels import active_kernel

        kernel = active_kernel(self, mode)
        if kernel is not None:
            return kernel.quantize(x, mode, rng)
        rounding = "stochastic" if mode == "stochastic" else "nearest"
        return float_quantize(x, self, rng=rng, rounding=rounding)

    def to_bits(self, x, mode: str = "nearest",
                rng: np.random.Generator | None = None) -> np.ndarray:
        """Quantize ``x`` and return sign/exponent/mantissa bit patterns."""
        from repro.formats.kernels import active_kernel

        kernel = active_kernel(self, mode)
        if kernel is not None:
            return kernel.to_bits(x, mode, rng)
        rounding = "stochastic" if mode == "stochastic" else "nearest"
        return float_to_bits(x, self, rounding=rounding, rng=rng)

    def from_bits(self, bits) -> np.ndarray:
        """Decode sign/exponent/mantissa bit patterns to real values."""
        from repro.formats.kernels import active_kernel

        kernel = active_kernel(self)
        if kernel is not None:
            return kernel.from_bits(bits)
        return float_from_bits(bits, self)

    def make_quantizer(self, rounding: str = "nearest",
                       rng: np.random.Generator | None = None) -> "FloatQuantizer":
        """Build a :class:`FloatQuantizer` bound to this format."""
        mode = "stochastic" if rounding == "stochastic" else "nearest"
        return FloatQuantizer(self, rounding=mode, rng=rng)


#: Standard formats referenced by the paper and its baselines.
FP32 = FloatFormat(8, 23, "FP32")
FP16 = FloatFormat(5, 10, "FP16")
BFLOAT16 = FloatFormat(8, 7, "bfloat16")
FP8_E4M3 = FloatFormat(4, 3, "FP8-E4M3")
FP8_E5M2 = FloatFormat(5, 2, "FP8-E5M2")

#: Short registry specs for the standard constants (exact instance match,
#: including the cosmetic name, so spec round-tripping is unambiguous).
_CANONICAL_SPECS: dict[FloatFormat, str] = {
    FP32: "fp32",
    FP16: "fp16",
    BFLOAT16: "bfloat16",
    FP8_E4M3: "fp8_e4m3",
    FP8_E5M2: "fp8_e5m2",
}


def float_quantize(x, fmt: FloatFormat, rng: np.random.Generator | None = None,
                   rounding: str = "nearest") -> np.ndarray:
    """Snap ``x`` element-wise onto the value grid of ``fmt``.

    Parameters
    ----------
    x:
        Array-like of real values.
    fmt:
        Target float format.
    rounding:
        ``"nearest"`` (round-to-nearest-even) or ``"stochastic"``.
    rng:
        Random generator for stochastic rounding.

    Returns
    -------
    numpy.ndarray
        ``float64`` array of values exactly representable in ``fmt``.
        Out-of-range magnitudes saturate to the maximum finite value; NaN is
        propagated.
    """
    arr = np.asarray(x, dtype=np.float64)
    scalar_input = arr.ndim == 0
    arr = np.atleast_1d(arr).copy()

    if fmt is FP32 or (fmt.exponent_bits >= 8 and fmt.mantissa_bits >= 23):
        with np.errstate(over="ignore"):
            result = arr.astype(np.float32).astype(np.float64)
        # The narrow-format path below saturates out-of-range magnitudes
        # (and infinite inputs) to the largest finite value; the float32
        # cast produces IEEE infs instead.  Saturate them the same way so
        # the documented contract — and the bit codec, which has no inf
        # representation — hold for every float format uniformly.
        result = np.where(np.isinf(result),
                          np.sign(result) * fmt.max_value, result)
        return result[0] if scalar_input else result

    sign = np.sign(arr)
    mag = np.abs(arr)
    out = np.zeros_like(arr)

    nan_mask = np.isnan(arr)
    inf_mask = np.isinf(arr)
    finite = ~nan_mask & ~inf_mask
    nonzero = finite & (mag > 0)

    if np.any(nonzero):
        m = mag[nonzero]
        # Effective quantization step: normals have a step of 2**(e - mant),
        # subnormals a fixed step of min_subnormal.
        exp = np.floor(np.log2(m))
        exp = np.where(2.0 ** (exp + 1) <= m, exp + 1, exp)
        exp = np.where(2.0**exp > m, exp - 1, exp)
        exp = np.maximum(exp, fmt.min_exponent)  # subnormal range shares min_exponent step
        step = 2.0 ** (exp - fmt.mantissa_bits)

        if rounding == "nearest":
            quantized = np.round(m / step) * step
        elif rounding == "stochastic":
            if rng is None:
                rng = np.random.default_rng()
            lower = np.floor(m / step)
            frac = m / step - lower
            up = rng.random(m.shape) < frac
            quantized = (lower + up.astype(np.float64)) * step
        else:
            raise ValueError(f"unknown rounding mode {rounding!r}")

        # Rounding up may cross into the next binade; that value is still
        # representable, so no correction is needed.  Saturate at max.
        quantized = np.minimum(quantized, fmt.max_value)
        # Values that round to below the smallest subnormal flush to zero.
        quantized = np.where(quantized < fmt.min_subnormal, 0.0, quantized)
        out[nonzero] = sign[nonzero] * quantized

    out[inf_mask] = sign[inf_mask] * fmt.max_value
    out[nan_mask] = np.nan

    return out[0] if scalar_input else out


def float_to_bits(x, fmt: FloatFormat, rounding: str = "nearest",
                  rng: np.random.Generator | None = None) -> np.ndarray:
    """Quantize ``x`` and return IEEE-style bit patterns (``int64``).

    Layout is ``[sign | exponent | mantissa]`` with the format's widths; the
    all-ones exponent is reserved (as in IEEE) and used to encode NaN.
    Because :func:`float_quantize` saturates infinities, every finite input
    maps to a normal, subnormal, or zero pattern.
    """
    values = float_quantize(x, fmt, rng=rng, rounding=rounding)
    arr = np.atleast_1d(np.asarray(values, dtype=np.float64))

    e_width, m_width = fmt.exponent_bits, fmt.mantissa_bits
    exp_all_ones = np.int64((1 << e_width) - 1)

    sign = (np.signbit(arr)).astype(np.int64)
    mag = np.abs(arr)
    # Canonical zero: values that quantize to zero encode as the all-zero
    # pattern regardless of which side they approached from, so the codec
    # is a stable fixed point (encode(decode(code)) == code) — the packed
    # artifact layer relies on this for byte-identical re-exports.
    sign[mag == 0] = 0
    exp_field = np.zeros(arr.shape, dtype=np.int64)
    mant_field = np.zeros(arr.shape, dtype=np.int64)

    nan_mask = np.isnan(arr)
    normal = ~nan_mask & (mag >= fmt.min_normal)
    subnormal = ~nan_mask & (mag > 0) & (mag < fmt.min_normal)

    if np.any(normal):
        m = mag[normal]
        exps = np.floor(np.log2(m)).astype(np.int64)
        # Repair float64 log2 off-by-one at binade boundaries.
        exps = np.where(np.power(2.0, (exps + 1).astype(np.float64)) <= m, exps + 1, exps)
        exps = np.where(np.power(2.0, exps.astype(np.float64)) > m, exps - 1, exps)
        frac = m / np.power(2.0, exps.astype(np.float64)) - 1.0
        exp_field[normal] = exps + fmt.bias
        # Quantized values sit exactly on the grid, so this rint is exact.
        mant_field[normal] = np.rint(frac * (1 << m_width)).astype(np.int64)

    if np.any(subnormal):
        mant_field[subnormal] = np.rint(mag[subnormal] / fmt.min_subnormal).astype(np.int64)

    if np.any(nan_mask):
        sign[nan_mask] = 0
        exp_field[nan_mask] = exp_all_ones
        mant_field[nan_mask] = (1 << m_width) >> 1  # quiet-NaN style payload

    bits = (sign << (e_width + m_width)) | (exp_field << m_width) | mant_field
    return bits[0] if np.asarray(x).ndim == 0 else bits


def float_from_bits(bits, fmt: FloatFormat) -> np.ndarray:
    """Decode ``[sign | exponent | mantissa]`` bit patterns to real values.

    The all-ones exponent decodes to NaN (this codec never produces
    infinities — out-of-range magnitudes saturate on the encode side).
    """
    arr = np.atleast_1d(np.asarray(bits, dtype=np.int64))
    e_width, m_width = fmt.exponent_bits, fmt.mantissa_bits
    arr = arr & ((np.int64(1) << fmt.bits) - 1)

    sign = (arr >> (e_width + m_width)) & 1
    exp_field = (arr >> m_width) & ((np.int64(1) << e_width) - 1)
    mant_field = arr & ((np.int64(1) << m_width) - 1)

    exp_all_ones = (1 << e_width) - 1
    frac = mant_field.astype(np.float64) / (1 << m_width)
    normal_values = (1.0 + frac) * np.power(2.0, (exp_field - fmt.bias).astype(np.float64))
    subnormal_values = mant_field.astype(np.float64) * fmt.min_subnormal

    out = np.where(exp_field == 0, subnormal_values, normal_values)
    out = np.where(sign == 1, -out, out)
    out = np.where(exp_field == exp_all_ones, np.nan, out)
    return out[0] if np.asarray(bits).ndim == 0 else out


class FloatQuantizer:
    """Callable wrapper around :func:`float_quantize`, mirroring ``PositQuantizer``."""

    def __init__(self, fmt: FloatFormat, rounding: str = "nearest",
                 rng: np.random.Generator | None = None):
        self.fmt = fmt
        self.rounding = rounding
        self.rng = rng

    @property
    def format(self) -> FloatFormat:
        """The bound format (uniform accessor across quantizer families)."""
        return self.fmt

    def __call__(self, x) -> np.ndarray:
        """Quantize ``x`` to the bound float format."""
        return float_quantize(x, self.fmt, rng=self.rng, rounding=self.rounding)

    def to_bits(self, x) -> np.ndarray:
        """Quantize ``x`` and return bit patterns instead of values."""
        return float_to_bits(x, self.fmt, rounding=self.rounding, rng=self.rng)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FloatQuantizer({self.fmt}, rounding={self.rounding!r})"
