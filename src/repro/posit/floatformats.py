"""Reduced-precision IEEE-style float quantizers (baseline formats).

The paper positions posit against reduced-precision floating point formats
used by prior mixed-precision training work: FP16 (Micikevicius et al. [9]),
FP8 (Wang et al. [10]), and plain FP32.  This module provides fake-quantizers
for those formats so that the benchmark harness can run the same training
recipes under float baselines and compare.

A ``FloatFormat`` is described by exponent bits, mantissa bits, and an
exponent bias; quantization is round-to-nearest-even with gradual underflow
(subnormals) and saturation at the maximum finite value (matching the
behaviour used by quantized-training literature rather than producing inf).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "FloatFormat",
    "FP32",
    "FP16",
    "BFLOAT16",
    "FP8_E4M3",
    "FP8_E5M2",
    "float_quantize",
    "FloatQuantizer",
]


@dataclass(frozen=True)
class FloatFormat:
    """Description of a binary floating-point format.

    Attributes
    ----------
    exponent_bits:
        Width of the exponent field.
    mantissa_bits:
        Width of the explicit mantissa (fraction) field.
    name:
        Human-readable format name used in reports.
    """

    exponent_bits: int
    mantissa_bits: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.exponent_bits < 2:
            raise ValueError("exponent_bits must be >= 2")
        if self.mantissa_bits < 0:
            raise ValueError("mantissa_bits must be >= 0")

    @property
    def bits(self) -> int:
        """Total storage width including the sign bit."""
        return 1 + self.exponent_bits + self.mantissa_bits

    @property
    def bias(self) -> int:
        """Exponent bias, ``2**(exponent_bits - 1) - 1``."""
        return (1 << (self.exponent_bits - 1)) - 1

    @property
    def max_exponent(self) -> int:
        """Largest unbiased exponent of a normal number."""
        return (1 << self.exponent_bits) - 2 - self.bias

    @property
    def min_exponent(self) -> int:
        """Smallest unbiased exponent of a normal number."""
        return 1 - self.bias

    @property
    def max_value(self) -> float:
        """Largest finite representable magnitude."""
        return float(2.0**self.max_exponent * (2.0 - 2.0 ** (-self.mantissa_bits)))

    @property
    def min_normal(self) -> float:
        """Smallest positive normal magnitude."""
        return float(2.0**self.min_exponent)

    @property
    def min_subnormal(self) -> float:
        """Smallest positive subnormal magnitude."""
        return float(2.0 ** (self.min_exponent - self.mantissa_bits))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name or f"fp{self.bits}(e{self.exponent_bits}m{self.mantissa_bits})"


#: Standard formats referenced by the paper and its baselines.
FP32 = FloatFormat(8, 23, "FP32")
FP16 = FloatFormat(5, 10, "FP16")
BFLOAT16 = FloatFormat(8, 7, "bfloat16")
FP8_E4M3 = FloatFormat(4, 3, "FP8-E4M3")
FP8_E5M2 = FloatFormat(5, 2, "FP8-E5M2")


def float_quantize(x, fmt: FloatFormat, rng: np.random.Generator | None = None,
                   rounding: str = "nearest") -> np.ndarray:
    """Snap ``x`` element-wise onto the value grid of ``fmt``.

    Parameters
    ----------
    x:
        Array-like of real values.
    fmt:
        Target float format.
    rounding:
        ``"nearest"`` (round-to-nearest-even) or ``"stochastic"``.
    rng:
        Random generator for stochastic rounding.

    Returns
    -------
    numpy.ndarray
        ``float64`` array of values exactly representable in ``fmt``.
        Out-of-range magnitudes saturate to the maximum finite value; NaN is
        propagated.
    """
    arr = np.asarray(x, dtype=np.float64)
    scalar_input = arr.ndim == 0
    arr = np.atleast_1d(arr).copy()

    if fmt is FP32 or (fmt.exponent_bits >= 8 and fmt.mantissa_bits >= 23):
        result = arr.astype(np.float32).astype(np.float64)
        return result[0] if scalar_input else result

    sign = np.sign(arr)
    mag = np.abs(arr)
    out = np.zeros_like(arr)

    nan_mask = np.isnan(arr)
    inf_mask = np.isinf(arr)
    finite = ~nan_mask & ~inf_mask
    nonzero = finite & (mag > 0)

    if np.any(nonzero):
        m = mag[nonzero]
        # Effective quantization step: normals have a step of 2**(e - mant),
        # subnormals a fixed step of min_subnormal.
        exp = np.floor(np.log2(m))
        exp = np.where(2.0 ** (exp + 1) <= m, exp + 1, exp)
        exp = np.where(2.0**exp > m, exp - 1, exp)
        exp = np.maximum(exp, fmt.min_exponent)  # subnormal range shares min_exponent step
        step = 2.0 ** (exp - fmt.mantissa_bits)

        if rounding == "nearest":
            quantized = np.round(m / step) * step
        elif rounding == "stochastic":
            if rng is None:
                rng = np.random.default_rng()
            lower = np.floor(m / step)
            frac = m / step - lower
            up = rng.random(m.shape) < frac
            quantized = (lower + up.astype(np.float64)) * step
        else:
            raise ValueError(f"unknown rounding mode {rounding!r}")

        # Rounding up may cross into the next binade; that value is still
        # representable, so no correction is needed.  Saturate at max.
        quantized = np.minimum(quantized, fmt.max_value)
        # Values that round to below the smallest subnormal flush to zero.
        quantized = np.where(quantized < fmt.min_subnormal, 0.0, quantized)
        out[nonzero] = sign[nonzero] * quantized

    out[inf_mask] = sign[inf_mask] * fmt.max_value
    out[nan_mask] = np.nan

    return out[0] if scalar_input else out


class FloatQuantizer:
    """Callable wrapper around :func:`float_quantize`, mirroring ``PositQuantizer``."""

    def __init__(self, fmt: FloatFormat, rounding: str = "nearest",
                 rng: np.random.Generator | None = None):
        self.fmt = fmt
        self.rounding = rounding
        self.rng = rng

    def __call__(self, x) -> np.ndarray:
        """Quantize ``x`` to the bound float format."""
        return float_quantize(x, self.fmt, rng=self.rng, rounding=self.rounding)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FloatQuantizer({self.fmt}, rounding={self.rounding!r})"
