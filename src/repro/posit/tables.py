"""Posit value-table generation (reproduces Table I of the paper).

Table I of the paper enumerates every positive value representable by the
``(5, 1)`` posit format together with its regime, exponent, and mantissa
fields.  :func:`positive_value_table` regenerates that table for any format,
and :func:`format_table` renders it in the same layout as the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from .config import PositConfig
from .scalar import decode_fields

__all__ = ["PositTableRow", "positive_value_table", "format_table", "code_space_summary"]


@dataclass(frozen=True)
class PositTableRow:
    """One row of the posit value table.

    Mirrors the columns of Table I: the binary code, the regime value, the
    exponent value, the mantissa (fraction) value, and the represented real
    value.  The mantissa and value are stored as exact :class:`~fractions.Fraction`
    objects so that the table is bit-exact rather than a float approximation.
    """

    code: int
    binary: str
    regime: int
    exponent: int
    mantissa: Fraction
    value: Fraction

    def as_dict(self) -> dict:
        """Return the row as a plain dictionary (useful for DataFrame-style dumps)."""
        return {
            "code": self.code,
            "binary": self.binary,
            "regime": self.regime,
            "exponent": self.exponent,
            "mantissa": self.mantissa,
            "value": self.value,
        }


def _exact_value(regime: int, exponent: int, mantissa: Fraction, config: PositConfig) -> Fraction:
    scale = regime * (1 << config.es) + exponent
    if scale >= 0:
        base = Fraction(1 << scale, 1)
    else:
        base = Fraction(1, 1 << (-scale))
    return base * (1 + mantissa)


def positive_value_table(config: PositConfig, include_zero: bool = True) -> list[PositTableRow]:
    """Enumerate all non-negative codes of ``config`` with their field values.

    Parameters
    ----------
    config:
        The posit format to enumerate.  Intended for small word sizes
        (``n <= 16``); the table has ``2**(n-1)`` rows.
    include_zero:
        Whether to include the all-zeros pattern as the first row (value 0),
        matching the presentation of Table I.

    Returns
    -------
    list[PositTableRow]
        Rows ordered by increasing code (and therefore increasing value).
    """
    if config.n > 16:
        raise ValueError(
            f"refusing to enumerate {config}: table would have {1 << (config.n - 1)} rows"
        )

    rows: list[PositTableRow] = []
    start = 0 if include_zero else 1
    for code in range(start, 1 << (config.n - 1)):
        binary = format(code, f"0{config.n}b")
        if code == 0:
            rows.append(
                PositTableRow(
                    code=0,
                    binary=binary,
                    regime=0,
                    exponent=0,
                    mantissa=Fraction(0),
                    value=Fraction(0),
                )
            )
            continue
        fields = decode_fields(code, config)
        if fields.fraction_width > 0:
            mantissa = Fraction(
                int(round(fields.fraction * (1 << fields.fraction_width))),
                1 << fields.fraction_width,
            )
        else:
            mantissa = Fraction(0)
        value = _exact_value(fields.regime, fields.exponent, mantissa, config)
        rows.append(
            PositTableRow(
                code=code,
                binary=binary,
                regime=fields.regime,
                exponent=fields.exponent,
                mantissa=mantissa,
                value=value,
            )
        )
    return rows


def format_table(config: PositConfig, include_zero: bool = True) -> str:
    """Render the positive-value table as fixed-width text.

    The layout mirrors Table I of the paper: binary code, regime, exponent,
    mantissa, and real value columns.
    """
    rows = positive_value_table(config, include_zero=include_zero)
    header = f"{'Binary Code':>12} {'Regime':>7} {'Exponent':>9} {'Mantissa':>9} {'Real Value':>12}"
    lines = [f"Positive values of the ({config.n}, {config.es}) posit", header, "-" * len(header)]
    for row in rows:
        if row.code == 0:
            lines.append(f"{row.binary:>12} {'x':>7} {'x':>9} {'x':>9} {'0':>12}")
            continue
        mant = str(row.mantissa)
        val = str(row.value)
        lines.append(
            f"{row.binary:>12} {row.regime:>7} {row.exponent:>9} {mant:>9} {val:>12}"
        )
    return "\n".join(lines)


def code_space_summary(config: PositConfig) -> dict:
    """Summarize how the code space of ``config`` is distributed over magnitudes.

    Returns a dictionary with the number of representable values per binade
    (power-of-two interval), which quantifies the paper's observation that
    posit precision is concentrated around magnitude 1 — the motivation for
    the distribution-based shifting of Eq. (2)/(3).
    """
    rows = positive_value_table(config, include_zero=False)
    per_binade: dict[int, int] = {}
    for row in rows:
        scale = row.regime * (1 << config.es) + row.exponent
        per_binade[scale] = per_binade.get(scale, 0) + 1
    return {
        "format": str(config),
        "positive_values": len(rows),
        "values_per_binade": dict(sorted(per_binade.items())),
        "max_values_in_a_binade": max(per_binade.values()),
        "binade_of_max_precision": max(
            sorted(per_binade), key=lambda s: (per_binade[s], -abs(s))
        ),
    }
