"""Quire: exact fixed-point accumulation for posit dot products.

The posit standard pairs each format with a *quire*, a wide fixed-point
register that can accumulate sums of products of posits without any rounding
until the final conversion back to posit.  The hardware MAC evaluated in the
paper (Fig. 4) accumulates in a float format internally; the quire is the
exact alternative used by Deep Positron [12] ("exact multiply-and-accumulate",
EMAC).  We provide it both for completeness and as a reference against which
the rounding error of float-accumulation MACs is measured in the benchmarks.

The implementation uses Python's arbitrary-precision integers scaled by a
power of two, so accumulation is exact by construction.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable

import numpy as np

from .config import PositConfig
from .quantize import quantize
from .scalar import decode, encode

__all__ = ["Quire", "exact_dot", "fused_dot"]


class Quire:
    """Exact accumulator for sums of products of posit values.

    The quire for an ``(n, es)`` posit needs ``(n - 2) * 2**(es + 2) + 1``
    integer bits plus the same number of fraction bits to hold any sum of up
    to ``2**(n - 1)`` products exactly; because we use unbounded Python
    integers we do not enforce the width, but we expose the nominal width for
    the hardware cost model.

    Examples
    --------
    >>> from repro.posit import PositConfig
    >>> q = Quire(PositConfig(8, 1))
    >>> q.add_product(0.5, 0.25)
    >>> q.add_product(1.5, 2.0)
    >>> q.to_float()
    3.125
    """

    def __init__(self, config: PositConfig):
        self.config = config
        self._acc = Fraction(0)
        self.num_accumulations = 0

    @property
    def nominal_width_bits(self) -> int:
        """Width of the hardware quire register for this format (standard sizing)."""
        # Standard quire size: 16 * n / 2 ... the 2022 standard fixes it at 16*n;
        # the classic sizing is (n-2)*2**(es+2) + es + 5 carry bits.  We report
        # the classic sizing, which is what EMAC hardware implements.
        return (self.config.n - 2) * (1 << (self.config.es + 2)) + self.config.es + 5

    def add_product(self, a: float, b: float) -> None:
        """Accumulate ``P(a) * P(b)`` exactly (inputs are first posit-rounded)."""
        pa = Fraction(quantize(a, self.config, rounding="nearest").item())
        pb = Fraction(quantize(b, self.config, rounding="nearest").item())
        self._acc += pa * pb
        self.num_accumulations += 1

    def add_posit(self, value: float) -> None:
        """Accumulate a single posit-rounded value exactly."""
        self._acc += Fraction(quantize(value, self.config, rounding="nearest").item())
        self.num_accumulations += 1

    def add_exact(self, value: Fraction) -> None:
        """Accumulate an already-exact rational value (no posit rounding)."""
        self._acc += value
        self.num_accumulations += 1

    def clear(self) -> None:
        """Reset the accumulator to zero."""
        self._acc = Fraction(0)
        self.num_accumulations = 0

    def to_float(self) -> float:
        """Return the exact accumulated value as a float (double rounding only here)."""
        return float(self._acc)

    def to_posit_bits(self) -> int:
        """Round the accumulated value to the target posit format and return bits."""
        return encode(float(self._acc), self.config, rounding="nearest")

    def to_posit_value(self) -> float:
        """Round the accumulated value to the target posit format and return its value."""
        return decode(self.to_posit_bits(), self.config)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Quire({self.config}, value={float(self._acc)!r}, terms={self.num_accumulations})"


def exact_dot(a: Iterable[float], b: Iterable[float], config: PositConfig) -> float:
    """Exact (quire-accumulated) dot product of two posit-quantized vectors.

    Each element of ``a`` and ``b`` is first rounded to the target posit
    format; the products are then accumulated without intermediate rounding
    and the final sum is rounded once back to posit.  This is the EMAC
    semantics of Deep Positron [12].
    """
    quire = Quire(config)
    a_arr = np.asarray(list(a), dtype=np.float64)
    b_arr = np.asarray(list(b), dtype=np.float64)
    if a_arr.shape != b_arr.shape:
        raise ValueError(f"shape mismatch: {a_arr.shape} vs {b_arr.shape}")
    pa = quantize(a_arr, config, rounding="nearest")
    pb = quantize(b_arr, config, rounding="nearest")
    for x, y in zip(pa.ravel(), pb.ravel()):
        quire.add_exact(Fraction(float(x)) * Fraction(float(y)))
    return quire.to_posit_value()


def fused_dot(a: Iterable[float], b: Iterable[float], config: PositConfig) -> float:
    """Dot product with per-step posit rounding (non-exact MAC chain).

    This models the behaviour of the paper's MAC unit when the accumulator is
    itself a posit register that is re-rounded after every multiply-add, and
    is used in the benchmarks to quantify how much accuracy the exact quire
    buys.
    """
    a_arr = np.asarray(list(a), dtype=np.float64)
    b_arr = np.asarray(list(b), dtype=np.float64)
    if a_arr.shape != b_arr.shape:
        raise ValueError(f"shape mismatch: {a_arr.shape} vs {b_arr.shape}")
    pa = quantize(a_arr, config, rounding="nearest")
    pb = quantize(b_arr, config, rounding="nearest")
    acc = 0.0
    for x, y in zip(pa.ravel(), pb.ravel()):
        acc = float(quantize(acc + x * y, config, rounding="nearest"))
    return acc
