"""Synthetic datasets standing in for Cifar-10 and ImageNet.

The paper's experiments (Table III) train on Cifar-10 and ImageNet.  Neither
dataset can be shipped in this offline reproduction, so this module generates
deterministic synthetic image-classification problems with the same tensor
shapes and a controllable difficulty:

* :class:`SyntheticImageDataset` draws one random *class prototype* image per
  class and produces samples as ``prototype + structured noise`` with random
  shifts, flips, and per-sample brightness/contrast jitter.  With enough
  noise the problem is non-trivial (a linear model does not saturate it) but
  a small ResNet can fit it within a few epochs, which is exactly what the
  FP32-vs-posit comparison needs: a task where degradation from bad
  quantization is visible.
* :func:`make_spirals` and :func:`make_blobs` are classic 2-D toy problems
  used by the quickstart example and unit tests.

All generators take an explicit seed so that runs are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "SyntheticImageDataset",
    "cifar_like",
    "imagenet_like",
    "make_spirals",
    "make_blobs",
]


@dataclass
class SyntheticImageDataset:
    """Prototype-plus-noise synthetic image classification dataset.

    Parameters
    ----------
    num_classes:
        Number of classes.
    num_train, num_test:
        Dataset sizes.
    image_size:
        Spatial resolution of the (square) images.
    channels:
        Number of channels (3 for the cifar-like / imagenet-like presets).
    noise_std:
        Standard deviation of the additive Gaussian noise; larger values make
        the task harder.
    prototype_smoothness:
        Size of the low-resolution grid from which prototypes are upsampled;
        smaller values give smoother (easier) prototypes.
    max_shift:
        Maximum circular shift (in pixels) applied as augmentation-style
        variation when generating samples.
    seed:
        Seed for the dataset's private random generator.
    """

    num_classes: int = 10
    num_train: int = 2000
    num_test: int = 500
    image_size: int = 32
    channels: int = 3
    noise_std: float = 0.6
    prototype_smoothness: int = 8
    max_shift: int = 4
    seed: int = 0

    train_images: np.ndarray = field(init=False, repr=False)
    train_labels: np.ndarray = field(init=False, repr=False)
    test_images: np.ndarray = field(init=False, repr=False)
    test_labels: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ValueError("need at least two classes")
        if self.prototype_smoothness > self.image_size:
            raise ValueError("prototype_smoothness cannot exceed image_size")
        rng = np.random.default_rng(self.seed)
        self._prototypes = self._make_prototypes(rng)
        self.train_images, self.train_labels = self._sample(rng, self.num_train)
        self.test_images, self.test_labels = self._sample(rng, self.num_test)

    # ------------------------------------------------------------------ #
    def _make_prototypes(self, rng: np.random.Generator) -> np.ndarray:
        """Draw one smooth prototype image per class."""
        small = rng.standard_normal(
            (self.num_classes, self.channels, self.prototype_smoothness, self.prototype_smoothness)
        )
        # Nearest-neighbour upsample to the target resolution, then lightly
        # blur by averaging shifted copies for smoother class structure.
        repeat = self.image_size // self.prototype_smoothness
        upsampled = small.repeat(repeat, axis=2).repeat(repeat, axis=3)
        if upsampled.shape[2] != self.image_size:
            pad_h = self.image_size - upsampled.shape[2]
            pad_w = self.image_size - upsampled.shape[3]
            upsampled = np.pad(upsampled, ((0, 0), (0, 0), (0, pad_h), (0, pad_w)), mode="edge")
        blurred = (
            upsampled
            + np.roll(upsampled, 1, axis=2)
            + np.roll(upsampled, -1, axis=2)
            + np.roll(upsampled, 1, axis=3)
            + np.roll(upsampled, -1, axis=3)
        ) / 5.0
        # Normalize prototypes to zero mean / unit std per class.
        mean = blurred.mean(axis=(1, 2, 3), keepdims=True)
        std = blurred.std(axis=(1, 2, 3), keepdims=True)
        return (blurred - mean) / (std + 1e-8)

    def _sample(self, rng: np.random.Generator, count: int) -> tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, self.num_classes, size=count)
        images = self._prototypes[labels].copy()
        # Random circular shifts (a cheap stand-in for translation augmentation).
        if self.max_shift > 0:
            shifts = rng.integers(-self.max_shift, self.max_shift + 1, size=(count, 2))
            for i, (dy, dx) in enumerate(shifts):
                images[i] = np.roll(images[i], (int(dy), int(dx)), axis=(1, 2))
        # Random horizontal flips.
        flips = rng.random(count) < 0.5
        images[flips] = images[flips, :, :, ::-1]
        # Brightness / contrast jitter.
        contrast = 1.0 + 0.2 * rng.standard_normal((count, 1, 1, 1))
        brightness = 0.2 * rng.standard_normal((count, 1, 1, 1))
        images = images * contrast + brightness
        # Additive noise controls difficulty.
        images = images + self.noise_std * rng.standard_normal(images.shape)
        return images.astype(np.float64), labels.astype(np.int64)

    # ------------------------------------------------------------------ #
    @property
    def input_shape(self) -> tuple[int, int, int]:
        """Shape of one sample, ``(channels, image_size, image_size)``."""
        return (self.channels, self.image_size, self.image_size)

    def __len__(self) -> int:
        return self.num_train

    def describe(self) -> dict:
        """Return a summary of the dataset configuration."""
        return {
            "num_classes": self.num_classes,
            "num_train": self.num_train,
            "num_test": self.num_test,
            "input_shape": self.input_shape,
            "noise_std": self.noise_std,
            "seed": self.seed,
        }


def cifar_like(num_train: int = 2000, num_test: int = 500, num_classes: int = 10,
               noise_std: float = 0.6, seed: int = 0) -> SyntheticImageDataset:
    """A Cifar-10-shaped synthetic dataset: 32x32 RGB, 10 classes."""
    return SyntheticImageDataset(
        num_classes=num_classes,
        num_train=num_train,
        num_test=num_test,
        image_size=32,
        channels=3,
        noise_std=noise_std,
        prototype_smoothness=8,
        max_shift=4,
        seed=seed,
    )


def imagenet_like(num_train: int = 2000, num_test: int = 500, num_classes: int = 20,
                  image_size: int = 64, noise_std: float = 0.8, seed: int = 0) -> SyntheticImageDataset:
    """An ImageNet-flavoured synthetic dataset: larger images, more classes, harder noise."""
    return SyntheticImageDataset(
        num_classes=num_classes,
        num_train=num_train,
        num_test=num_test,
        image_size=image_size,
        channels=3,
        noise_std=noise_std,
        prototype_smoothness=16,
        max_shift=8,
        seed=seed,
    )


def make_spirals(num_samples: int = 600, num_classes: int = 3, noise: float = 0.2,
                 seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Interleaved 2-D spirals: a classic non-linearly-separable toy problem."""
    rng = np.random.default_rng(seed)
    per_class = num_samples // num_classes
    points = []
    labels = []
    for class_index in range(num_classes):
        radius = np.linspace(0.05, 1.0, per_class)
        theta = (
            np.linspace(class_index * 2 * np.pi / num_classes,
                        class_index * 2 * np.pi / num_classes + 4 * np.pi / num_classes * 2,
                        per_class)
            + rng.standard_normal(per_class) * noise
        )
        points.append(np.stack([radius * np.sin(theta), radius * np.cos(theta)], axis=1))
        labels.append(np.full(per_class, class_index, dtype=np.int64))
    return np.concatenate(points), np.concatenate(labels)


def make_blobs(num_samples: int = 600, num_classes: int = 4, num_features: int = 2,
               spread: float = 0.6, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Gaussian blobs around random class centers."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-3, 3, size=(num_classes, num_features))
    per_class = num_samples // num_classes
    points = []
    labels = []
    for class_index in range(num_classes):
        points.append(centers[class_index] + spread * rng.standard_normal((per_class, num_features)))
        labels.append(np.full(per_class, class_index, dtype=np.int64))
    return np.concatenate(points), np.concatenate(labels)
