"""Synthetic datasets and mini-batch loaders (offline stand-ins for Cifar-10/ImageNet)."""

from .loaders import ArrayDataLoader, normalize_images, test_loader, train_loader
from .synthetic import (
    SyntheticImageDataset,
    cifar_like,
    imagenet_like,
    make_blobs,
    make_spirals,
)

__all__ = [
    "SyntheticImageDataset",
    "cifar_like",
    "imagenet_like",
    "make_spirals",
    "make_blobs",
    "ArrayDataLoader",
    "train_loader",
    "test_loader",
    "normalize_images",
]
