"""Mini-batch iteration over in-memory datasets.

A small ``DataLoader`` replacement: shuffles indices each epoch with its own
random generator (so results are reproducible given a seed), yields
``(images, labels)`` NumPy batches, and optionally applies a normalization
transform.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

import numpy as np

from .synthetic import SyntheticImageDataset

__all__ = ["ArrayDataLoader", "train_loader", "test_loader", "normalize_images"]

BatchTransform = Callable[[np.ndarray], np.ndarray]


def normalize_images(images: np.ndarray) -> np.ndarray:
    """Standardize a batch of images to zero mean and unit variance per channel."""
    mean = images.mean(axis=(0, 2, 3), keepdims=True)
    std = images.std(axis=(0, 2, 3), keepdims=True)
    return (images - mean) / (std + 1e-8)


class ArrayDataLoader:
    """Iterate over ``(inputs, labels)`` arrays in shuffled mini-batches.

    Parameters
    ----------
    inputs, labels:
        Full dataset arrays; the first dimension is the sample dimension.
    batch_size:
        Mini-batch size.  The last batch may be smaller unless
        ``drop_last=True``.
    shuffle:
        Whether to reshuffle at the start of each epoch.
    seed:
        Seed for the loader's private generator.
    transform:
        Optional function applied to each input batch (e.g. normalization).
    drop_last:
        Whether to drop a trailing partial batch.
    """

    def __init__(self, inputs: np.ndarray, labels: np.ndarray, batch_size: int = 64,
                 shuffle: bool = True, seed: int = 0,
                 transform: Optional[BatchTransform] = None,
                 drop_last: bool = False):
        inputs = np.asarray(inputs)
        labels = np.asarray(labels)
        if len(inputs) != len(labels):
            raise ValueError(
                f"inputs and labels disagree on sample count: {len(inputs)} vs {len(labels)}"
            )
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.inputs = inputs
        self.labels = labels
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.transform = transform
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        full, remainder = divmod(len(self.inputs), self.batch_size)
        if remainder and not self.drop_last:
            return full + 1
        return full

    @property
    def num_samples(self) -> int:
        """Total number of samples in the underlying arrays."""
        return len(self.inputs)

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        order = np.arange(len(self.inputs))
        if self.shuffle:
            self._rng.shuffle(order)
        for start in range(0, len(order), self.batch_size):
            index = order[start:start + self.batch_size]
            if self.drop_last and len(index) < self.batch_size:
                break
            batch = self.inputs[index]
            if self.transform is not None:
                batch = self.transform(batch)
            yield batch, self.labels[index]


def train_loader(dataset: SyntheticImageDataset, batch_size: int = 64, seed: int = 0,
                 normalize: bool = True) -> ArrayDataLoader:
    """Build a shuffled loader over the training split of a synthetic dataset."""
    return ArrayDataLoader(
        dataset.train_images,
        dataset.train_labels,
        batch_size=batch_size,
        shuffle=True,
        seed=seed,
        transform=normalize_images if normalize else None,
    )


def test_loader(dataset: SyntheticImageDataset, batch_size: int = 128,
                normalize: bool = True) -> ArrayDataLoader:
    """Build a non-shuffled loader over the test split of a synthetic dataset."""
    return ArrayDataLoader(
        dataset.test_images,
        dataset.test_labels,
        batch_size=batch_size,
        shuffle=False,
        transform=normalize_images if normalize else None,
    )
