"""Convolution and pooling primitives (im2col-based) with autograd support.

These are the compute-heavy substrate operations that the paper's ResNet
models are built from.  The forward passes use the classic im2col lowering so
that the inner loop is a single large matrix multiplication, and the backward
passes reuse the same lowering (col2im) for the input gradient and a
transposed matmul for the weight gradient.

All functions take and return :class:`repro.tensor.Tensor` objects with
``NCHW`` layout.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = ["im2col", "col2im", "conv2d", "max_pool2d", "avg_pool2d", "global_avg_pool2d"]


def _pair(value) -> tuple[int, int]:
    if isinstance(value, (tuple, list)):
        if len(value) != 2:
            raise ValueError(f"expected a pair, got {value!r}")
        return int(value[0]), int(value[1])
    return int(value), int(value)


def _output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution output size would be non-positive "
            f"(input={size}, kernel={kernel}, stride={stride}, padding={padding})"
        )
    return out


def im2col(x: np.ndarray, kernel: tuple[int, int], stride: tuple[int, int],
           padding: tuple[int, int]) -> np.ndarray:
    """Lower image patches to columns.

    Parameters
    ----------
    x:
        Input array of shape ``(N, C, H, W)``.
    kernel, stride, padding:
        Kernel size, stride, and zero padding as ``(h, w)`` pairs.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(N, C * kh * kw, out_h * out_w)``.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = _output_size(h, kh, sh, ph)
    out_w = _output_size(w, kw, sw, pw)

    padded = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    # Strided view of all patches: (N, C, kh, kw, out_h, out_w)
    strides = padded.strides
    view = np.lib.stride_tricks.as_strided(
        padded,
        shape=(n, c, kh, kw, out_h, out_w),
        strides=(
            strides[0],
            strides[1],
            strides[2],
            strides[3],
            strides[2] * sh,
            strides[3] * sw,
        ),
        writeable=False,
    )
    return view.reshape(n, c * kh * kw, out_h * out_w)


def col2im(cols: np.ndarray, input_shape: tuple[int, int, int, int],
           kernel: tuple[int, int], stride: tuple[int, int],
           padding: tuple[int, int]) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add columns back into an image.

    Overlapping patch positions are accumulated, which makes this exactly the
    adjoint operation needed for the convolution input gradient.
    """
    n, c, h, w = input_shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = _output_size(h, kh, sh, ph)
    out_w = _output_size(w, kw, sw, pw)

    cols = cols.reshape(n, c, kh, kw, out_h, out_w)
    padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=cols.dtype)
    for i in range(kh):
        i_end = i + sh * out_h
        for j in range(kw):
            j_end = j + sw * out_w
            padded[:, :, i:i_end:sh, j:j_end:sw] += cols[:, :, i, j, :, :]
    if ph == 0 and pw == 0:
        return padded
    return padded[:, :, ph:ph + h, pw:pw + w]


def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None = None,
           stride=1, padding=0) -> Tensor:
    """2-D convolution (cross-correlation) over an NCHW input.

    Parameters
    ----------
    x:
        Input tensor of shape ``(N, C_in, H, W)``.
    weight:
        Filter tensor of shape ``(C_out, C_in, kh, kw)``.
    bias:
        Optional bias of shape ``(C_out,)``.
    stride, padding:
        Integers or ``(h, w)`` pairs.
    """
    stride = _pair(stride)
    padding = _pair(padding)
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"input channels {c_in} do not match weight channels {c_in_w}")

    out_h = _output_size(h, kh, stride[0], padding[0])
    out_w = _output_size(w, kw, stride[1], padding[1])

    cols = im2col(x.data, (kh, kw), stride, padding)  # (N, C*kh*kw, L)
    w_mat = weight.data.reshape(c_out, -1)  # (C_out, C*kh*kw)
    out = np.einsum("of,nfl->nol", w_mat, cols, optimize=True)
    out = out.reshape(n, c_out, out_h, out_w)
    if bias is not None:
        out = out + bias.data.reshape(1, c_out, 1, 1)

    parents = [x, weight] + ([bias] if bias is not None else [])

    def _backward(upstream: np.ndarray) -> None:
        grad_out = upstream.reshape(n, c_out, out_h * out_w)  # (N, C_out, L)
        results = []
        if x.requires_grad:
            # d/dx: scatter W^T @ grad_out back through col2im.
            grad_cols = np.einsum("of,nol->nfl", w_mat, grad_out, optimize=True)
            grad_x = col2im(grad_cols, x.shape, (kh, kw), stride, padding)
            results.append((x, grad_x))
        if weight.requires_grad:
            grad_w = np.einsum("nol,nfl->of", grad_out, cols, optimize=True)
            results.append((weight, grad_w.reshape(weight.shape)))
        if bias is not None and bias.requires_grad:
            results.append((bias, upstream.sum(axis=(0, 2, 3))))
        out_tensor._backward_results = results  # type: ignore[attr-defined]

    out_tensor = Tensor._make(out, parents, _backward, name="conv2d")
    return out_tensor


def max_pool2d(x: Tensor, kernel_size=2, stride=None, padding=0) -> Tensor:
    """Max pooling over spatial windows of an NCHW input."""
    kernel = _pair(kernel_size)
    stride = kernel if stride is None else _pair(stride)
    padding = _pair(padding)
    n, c, h, w = x.shape
    out_h = _output_size(h, kernel[0], stride[0], padding[0])
    out_w = _output_size(w, kernel[1], stride[1], padding[1])

    cols = im2col(x.data, kernel, stride, padding)  # (N, C*kh*kw, L)
    cols = cols.reshape(n, c, kernel[0] * kernel[1], out_h * out_w)
    argmax = cols.argmax(axis=2)
    out = np.take_along_axis(cols, argmax[:, :, None, :], axis=2).squeeze(2)
    out = out.reshape(n, c, out_h, out_w)

    def _backward(upstream: np.ndarray) -> None:
        if not x.requires_grad:
            out_tensor._backward_results = []  # type: ignore[attr-defined]
            return
        grad_cols = np.zeros((n, c, kernel[0] * kernel[1], out_h * out_w), dtype=np.float64)
        up = upstream.reshape(n, c, 1, out_h * out_w)
        np.put_along_axis(grad_cols, argmax[:, :, None, :], up, axis=2)
        grad_cols = grad_cols.reshape(n, c * kernel[0] * kernel[1], out_h * out_w)
        grad_x = col2im(grad_cols, x.shape, kernel, stride, padding)
        out_tensor._backward_results = [(x, grad_x)]  # type: ignore[attr-defined]

    out_tensor = Tensor._make(out, (x,), _backward, name="max_pool2d")
    return out_tensor


def avg_pool2d(x: Tensor, kernel_size=2, stride=None, padding=0) -> Tensor:
    """Average pooling over spatial windows of an NCHW input."""
    kernel = _pair(kernel_size)
    stride = kernel if stride is None else _pair(stride)
    padding = _pair(padding)
    n, c, h, w = x.shape
    out_h = _output_size(h, kernel[0], stride[0], padding[0])
    out_w = _output_size(w, kernel[1], stride[1], padding[1])
    window = kernel[0] * kernel[1]

    cols = im2col(x.data, kernel, stride, padding)
    cols = cols.reshape(n, c, window, out_h * out_w)
    out = cols.mean(axis=2).reshape(n, c, out_h, out_w)

    def _backward(upstream: np.ndarray) -> None:
        if not x.requires_grad:
            out_tensor._backward_results = []  # type: ignore[attr-defined]
            return
        up = upstream.reshape(n, c, 1, out_h * out_w) / window
        grad_cols = np.broadcast_to(up, (n, c, window, out_h * out_w)).copy()
        grad_cols = grad_cols.reshape(n, c * window, out_h * out_w)
        grad_x = col2im(grad_cols, x.shape, kernel, stride, padding)
        out_tensor._backward_results = [(x, grad_x)]  # type: ignore[attr-defined]

    out_tensor = Tensor._make(out, (x,), _backward, name="avg_pool2d")
    return out_tensor


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over the full spatial extent, returning shape ``(N, C, 1, 1)``."""
    return x.mean(axis=(2, 3), keepdims=True)
