"""Additional tensor operations that combine multiple tensors.

Contains graph-aware versions of ``concatenate`` and ``stack`` plus small
helpers used by the models and the data pipeline.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["concatenate", "stack", "zeros", "ones", "randn", "from_numpy"]


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis``, propagating gradients to each input."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def _backward(upstream: np.ndarray) -> None:
        results = []
        for t, start, end in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * upstream.ndim
                index[axis] = slice(int(start), int(end))
                results.append((t, upstream[tuple(index)]))
        out._backward_results = results  # type: ignore[attr-defined]

    out = Tensor._make(data, tensors, _backward, name="concatenate")
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis, propagating gradients to each input."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def _backward(upstream: np.ndarray) -> None:
        results = []
        for i, t in enumerate(tensors):
            if t.requires_grad:
                results.append((t, np.take(upstream, i, axis=axis)))
        out._backward_results = results  # type: ignore[attr-defined]

    out = Tensor._make(data, tensors, _backward, name="stack")
    return out


def zeros(*shape, requires_grad: bool = False) -> Tensor:
    """Tensor of zeros with the given shape."""
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(*shape, requires_grad: bool = False) -> Tensor:
    """Tensor of ones with the given shape."""
    return Tensor(np.ones(shape), requires_grad=requires_grad)


def randn(*shape, rng: np.random.Generator | None = None,
          requires_grad: bool = False) -> Tensor:
    """Tensor of standard-normal samples with the given shape."""
    rng = rng or np.random.default_rng()
    return Tensor(rng.standard_normal(shape), requires_grad=requires_grad)


def from_numpy(array: np.ndarray, requires_grad: bool = False) -> Tensor:
    """Wrap a NumPy array in a Tensor (copies to float64)."""
    return Tensor(array, requires_grad=requires_grad)
