"""Functional neural-network operations built on the autograd Tensor.

Provides numerically-stable softmax / log-softmax / cross-entropy, batch
normalization, dropout, and linear transforms — the remaining primitives the
layer classes in :mod:`repro.nn` are composed of.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tensor import Tensor

__all__ = [
    "linear",
    "relu",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "batch_norm",
    "dropout",
    "one_hot",
    "accuracy",
]


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine transform ``x @ weight.T + bias``.

    ``x`` has shape ``(N, in_features)``, ``weight`` has shape
    ``(out_features, in_features)``.
    """
    out = x.matmul(weight.transpose())
    if bias is not None:
        out = out + bias
    return out


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return x.relu()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable log-softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Return a one-hot ``float64`` encoding of integer class labels."""
    labels = np.asarray(labels, dtype=np.int64)
    out = np.zeros((labels.size, num_classes), dtype=np.float64)
    out[np.arange(labels.size), labels.ravel()] = 1.0
    return out.reshape(labels.shape + (num_classes,))


def nll_loss(log_probs: Tensor, labels: np.ndarray) -> Tensor:
    """Negative log-likelihood of integer ``labels`` under ``log_probs``."""
    labels = np.asarray(labels, dtype=np.int64)
    n, num_classes = log_probs.shape
    target = one_hot(labels, num_classes)
    picked = (log_probs * Tensor(target)).sum(axis=1)
    return -picked.mean()


def cross_entropy(logits: Tensor, labels: np.ndarray,
                  label_smoothing: float = 0.0) -> Tensor:
    """Cross-entropy between ``logits`` and integer class ``labels``.

    Parameters
    ----------
    logits:
        Tensor of shape ``(N, num_classes)``.
    labels:
        Integer array of shape ``(N,)``.
    label_smoothing:
        Optional label smoothing factor in ``[0, 1)``.
    """
    labels = np.asarray(labels, dtype=np.int64)
    n, num_classes = logits.shape
    log_probs = log_softmax(logits, axis=1)
    target = one_hot(labels, num_classes)
    if label_smoothing > 0.0:
        target = target * (1.0 - label_smoothing) + label_smoothing / num_classes
    loss = -(log_probs * Tensor(target)).sum(axis=1)
    return loss.mean()


def mse_loss(prediction: Tensor, target) -> Tensor:
    """Mean squared error between ``prediction`` and ``target``."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target
    return (diff * diff).mean()


def batch_norm(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalization over the channel dimension of NCHW or NC input.

    In training mode the batch statistics are used and the running statistics
    are updated in place; in evaluation mode the running statistics are used.
    ``gamma`` and ``beta`` are the learnable affine parameters of shape
    ``(C,)``.
    """
    if x.ndim == 4:
        axes = (0, 2, 3)
        shape = (1, -1, 1, 1)
    elif x.ndim == 2:
        axes = (0,)
        shape = (1, -1)
    else:
        raise ValueError(f"batch_norm expects 2-D or 4-D input, got shape {x.shape}")

    if training:
        mean = x.mean(axis=axes, keepdims=True)
        var = x.var(axis=axes, keepdims=True)
        # Update running statistics outside the autograd graph.
        batch_mean = mean.data.reshape(-1)
        batch_var = var.data.reshape(-1)
        running_mean *= 1.0 - momentum
        running_mean += momentum * batch_mean
        running_var *= 1.0 - momentum
        running_var += momentum * batch_var
    else:
        mean = Tensor(running_mean.reshape(shape))
        var = Tensor(running_var.reshape(shape))

    x_hat = (x - mean) / (var + eps).sqrt()
    return x_hat * gamma.reshape(*shape) + beta.reshape(*shape)


def dropout(x: Tensor, p: float, training: bool,
            rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout: zero each element with probability ``p`` during training."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if rng is None:
        rng = np.random.default_rng()
    mask = (rng.random(x.shape) >= p).astype(np.float64) / (1.0 - p)
    return x * Tensor(mask)


def accuracy(logits, labels: np.ndarray, topk: int = 1) -> float:
    """Top-k classification accuracy as a fraction in ``[0, 1]``.

    ``logits`` may be a Tensor or array of shape ``(N, num_classes)``.
    """
    data = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    labels = np.asarray(labels, dtype=np.int64)
    if topk == 1:
        pred = data.argmax(axis=1)
        return float((pred == labels).mean())
    top = np.argsort(-data, axis=1)[:, :topk]
    correct = (top == labels[:, None]).any(axis=1)
    return float(correct.mean())
