"""Autograd tensor substrate (NumPy-backed replacement for the paper's PyTorch)."""

from .conv import avg_pool2d, col2im, conv2d, global_avg_pool2d, im2col, max_pool2d
from .functional import (
    accuracy,
    batch_norm,
    cross_entropy,
    dropout,
    linear,
    log_softmax,
    mse_loss,
    nll_loss,
    one_hot,
    relu,
    softmax,
)
from .ops import concatenate, from_numpy, ones, randn, stack, zeros
from .tensor import Tensor, is_grad_enabled, no_grad, unbroadcast

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "unbroadcast",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "im2col",
    "col2im",
    "linear",
    "relu",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "batch_norm",
    "dropout",
    "one_hot",
    "accuracy",
    "concatenate",
    "stack",
    "zeros",
    "ones",
    "randn",
    "from_numpy",
]
