"""A small reverse-mode autograd engine over NumPy arrays.

The paper trains ResNets with PyTorch; this module is the substrate that
replaces PyTorch's autograd for the reproduction.  It implements a
:class:`Tensor` type that records a computation graph as operations are
applied and can backpropagate gradients through it.

Design notes
------------
* Data is always stored as ``float64`` NumPy arrays.  The quantized-training
  code simulates reduced precision by snapping values onto posit/float grids
  ("fake quantization"), so the carrier type stays float64 throughout.
* Each operation builds the output tensor eagerly and attaches a backward
  closure plus references to its parents.  ``Tensor.backward()`` runs a
  topological sort and accumulates gradients into ``Tensor.grad``.
* Broadcasting is supported for elementwise operations; gradients are
  reduced back to the original shapes with :func:`unbroadcast`.
* The engine intentionally exposes the same method names used by the rest of
  the library (``matmul``, ``relu``, ``sum``, ``reshape``...), which keeps the
  layer implementations readable for anyone familiar with PyTorch.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Optional, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "unbroadcast"]


class _GradMode(threading.local):
    """Per-thread switch for gradient recording (mirrors ``torch.no_grad``).

    Thread-local like PyTorch's grad mode: the serving engine
    (:mod:`repro.serve`) runs inference under ``no_grad`` on its batcher
    thread while other threads may be training or calling
    ``predict_batch`` — a process-global flag would let one thread's
    save/restore clobber another's mid-forward.
    """

    def __init__(self):
        self.enabled: bool = True


_GRAD_MODE = _GradMode()


class no_grad:
    """Context manager that disables graph construction (this thread only).

    Examples
    --------
    >>> import numpy as np
    >>> x = Tensor(np.ones(3), requires_grad=True)
    >>> with no_grad():
    ...     y = x * 2
    >>> y.requires_grad
    False
    """

    def __enter__(self):
        self._previous = _GRAD_MODE.enabled
        _GRAD_MODE.enabled = False
        return self

    def __exit__(self, exc_type, exc, tb):
        _GRAD_MODE.enabled = self._previous
        return False


def is_grad_enabled() -> bool:
    """Return whether operations on this thread record the autograd graph."""
    return _GRAD_MODE.enabled


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, inverting NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed tensor with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Array-like holding the tensor's values.  Copied to ``float64``.
    requires_grad:
        Whether gradients should be accumulated for this tensor.
    name:
        Optional label used in debugging and graph dumps.
    """

    __slots__ = (
        "data",
        "grad",
        "requires_grad",
        "name",
        "_backward",
        "_parents",
        "_backward_results",
    )

    def __init__(self, data, requires_grad: bool = False, name: str = ""):
        if isinstance(data, Tensor):
            data = data.data
        self.data: np.ndarray = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad) and is_grad_enabled()
        self.name: str = name
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: tuple["Tensor", ...] = ()

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.data.size

    @property
    def dtype(self):
        """NumPy dtype of the underlying array (always float64)."""
        return self.data.dtype

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.item())

    def numpy(self) -> np.ndarray:
        """Return the underlying NumPy array (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False, name=self.name)

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        grad_part = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_part}, name={self.name!r})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------ #
    # Graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
        name: str = "",
    ) -> "Tensor":
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, name=name)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate gradients from this tensor through the graph.

        Parameters
        ----------
        grad:
            Upstream gradient.  Defaults to 1.0 and requires the tensor to be
            a scalar in that case.
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).astype(np.float64)

        # Topological order of the graph reachable from self.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and node._backward is None:
                # Leaf tensor: accumulate.
                node._accumulate(node_grad)
            if node._backward is not None:
                node._backward(node_grad)
                # _backward stores partials into a temporary attribute on the
                # closure via grads dict mutation; see _make wrappers below.
                for parent, pgrad in node._backward_results:  # type: ignore[attr-defined]
                    if pgrad is None:
                        continue
                    key = id(parent)
                    if key in grads:
                        grads[key] = grads[key] + pgrad
                    else:
                        grads[key] = pgrad
                del node._backward_results  # type: ignore[attr-defined]

    # ------------------------------------------------------------------ #
    # Operation wrappers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _ensure(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def _binary(self, other, forward, backward, name) -> "Tensor":
        other = Tensor._ensure(other)
        out_data = forward(self.data, other.data)

        def _backward(upstream: np.ndarray) -> None:
            ga, gb = backward(upstream, self.data, other.data, out_data)
            results = []
            if self.requires_grad:
                results.append((self, unbroadcast(ga, self.data.shape)))
            if other.requires_grad:
                results.append((other, unbroadcast(gb, other.data.shape)))
            out._backward_results = results  # type: ignore[attr-defined]

        out = Tensor._make(out_data, (self, other), _backward, name=name)
        return out

    def _unary(self, forward, backward, name) -> "Tensor":
        out_data = forward(self.data)

        def _backward(upstream: np.ndarray) -> None:
            g = backward(upstream, self.data, out_data)
            out._backward_results = [(self, g)] if self.requires_grad else []  # type: ignore[attr-defined]

        out = Tensor._make(out_data, (self,), _backward, name=name)
        return out

    # --- arithmetic ---------------------------------------------------- #
    def __add__(self, other) -> "Tensor":
        return self._binary(
            other,
            lambda a, b: a + b,
            lambda g, a, b, o: (g, g),
            "add",
        )

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        return self._binary(
            other,
            lambda a, b: a - b,
            lambda g, a, b, o: (g, -g),
            "sub",
        )

    def __rsub__(self, other) -> "Tensor":
        return Tensor._ensure(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        return self._binary(
            other,
            lambda a, b: a * b,
            lambda g, a, b, o: (g * b, g * a),
            "mul",
        )

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        return self._binary(
            other,
            lambda a, b: a / b,
            lambda g, a, b, o: (g / b, -g * a / (b * b)),
            "div",
        )

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor._ensure(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        return self._unary(lambda a: -a, lambda g, a, o: -g, "neg")

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        return self._unary(
            lambda a: a**exponent,
            lambda g, a, o: g * exponent * a ** (exponent - 1),
            "pow",
        )

    def __matmul__(self, other) -> "Tensor":
        return self.matmul(other)

    def matmul(self, other) -> "Tensor":
        """Matrix product supporting 2-D and batched operands."""
        return self._binary(
            other,
            lambda a, b: a @ b,
            lambda g, a, b, o: (g @ np.swapaxes(b, -1, -2), np.swapaxes(a, -1, -2) @ g),
            "matmul",
        )

    # --- reductions ---------------------------------------------------- #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Sum of elements over the given axis."""
        def _forward(a):
            return a.sum(axis=axis, keepdims=keepdims)

        def _backward(g, a, o):
            if axis is None:
                return np.broadcast_to(g, a.shape).astype(np.float64)
            g_expanded = g
            if not keepdims:
                g_expanded = np.expand_dims(g, axis=axis)
            return np.broadcast_to(g_expanded, a.shape).astype(np.float64)

        return self._unary(_forward, _backward, "sum")

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Arithmetic mean over the given axis."""
        if axis is None:
            count = self.size
        elif isinstance(axis, int):
            count = self.shape[axis]
        else:
            count = int(np.prod([self.shape[a] for a in axis]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Biased variance over the given axis (matches BatchNorm statistics)."""
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        out = (centered * centered).mean(axis=axis, keepdims=keepdims)
        return out

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Maximum over the given axis (gradient flows to the arg-max elements)."""
        def _forward(a):
            return a.max(axis=axis, keepdims=keepdims)

        def _backward(g, a, o):
            if axis is None:
                mask = (a == a.max()).astype(np.float64)
                mask /= mask.sum()
                return mask * g
            o_full = o if keepdims else np.expand_dims(o, axis=axis)
            g_full = g if keepdims else np.expand_dims(g, axis=axis)
            mask = (a == o_full).astype(np.float64)
            mask /= mask.sum(axis=axis, keepdims=True)
            return mask * g_full

        return self._unary(_forward, _backward, "max")

    # --- shape manipulation -------------------------------------------- #
    def reshape(self, *shape) -> "Tensor":
        """Return a tensor with the same data and a new shape."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        return self._unary(
            lambda a: a.reshape(shape),
            lambda g, a, o: g.reshape(original),
            "reshape",
        )

    def flatten(self, start_dim: int = 1) -> "Tensor":
        """Flatten dimensions from ``start_dim`` onward into one."""
        new_shape = self.shape[:start_dim] + (-1,)
        return self.reshape(*new_shape)

    def transpose(self, *axes) -> "Tensor":
        """Permute dimensions; with no arguments, reverses them."""
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes)
        return self._unary(
            lambda a: a.transpose(axes),
            lambda g, a, o: g.transpose(inverse),
            "transpose",
        )

    def pad(self, pad_width: Iterable[tuple[int, int]]) -> "Tensor":
        """Zero-pad the tensor; ``pad_width`` follows ``numpy.pad`` semantics."""
        pad_width = tuple(tuple(p) for p in pad_width)
        slices = tuple(
            slice(before, before + dim) for (before, _), dim in zip(pad_width, self.shape)
        )
        return self._unary(
            lambda a: np.pad(a, pad_width),
            lambda g, a, o: g[slices],
            "pad",
        )

    def __getitem__(self, index) -> "Tensor":
        def _forward(a):
            return a[index]

        def _backward(g, a, o):
            grad = np.zeros_like(a)
            np.add.at(grad, index, g)
            return grad

        return self._unary(_forward, _backward, "getitem")

    # --- elementwise non-linearities ------------------------------------ #
    def relu(self) -> "Tensor":
        """Rectified linear unit."""
        return self._unary(
            lambda a: np.maximum(a, 0.0),
            lambda g, a, o: g * (a > 0),
            "relu",
        )

    def exp(self) -> "Tensor":
        """Elementwise exponential."""
        return self._unary(lambda a: np.exp(a), lambda g, a, o: g * o, "exp")

    def log(self) -> "Tensor":
        """Elementwise natural logarithm."""
        return self._unary(lambda a: np.log(a), lambda g, a, o: g / a, "log")

    def sqrt(self) -> "Tensor":
        """Elementwise square root."""
        return self._unary(lambda a: np.sqrt(a), lambda g, a, o: g * 0.5 / o, "sqrt")

    def tanh(self) -> "Tensor":
        """Elementwise hyperbolic tangent."""
        return self._unary(lambda a: np.tanh(a), lambda g, a, o: g * (1 - o * o), "tanh")

    def sigmoid(self) -> "Tensor":
        """Elementwise logistic sigmoid."""
        return self._unary(
            lambda a: 1.0 / (1.0 + np.exp(-a)),
            lambda g, a, o: g * o * (1 - o),
            "sigmoid",
        )

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values into ``[low, high]``; gradient is zero outside."""
        return self._unary(
            lambda a: np.clip(a, low, high),
            lambda g, a, o: g * ((a >= low) & (a <= high)),
            "clip",
        )

    def abs(self) -> "Tensor":
        """Elementwise absolute value."""
        return self._unary(lambda a: np.abs(a), lambda g, a, o: g * np.sign(a), "abs")

    # --- custom-function hook ------------------------------------------ #
    def apply(
        self,
        forward: Callable[[np.ndarray], np.ndarray],
        backward: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray],
        name: str = "apply",
    ) -> "Tensor":
        """Apply a custom elementwise-style function with an explicit backward.

        ``forward`` maps the input array to the output array.  ``backward``
        receives ``(upstream_grad, input_array, output_array)`` and must
        return the gradient with respect to the input.  This is the hook used
        by the quantization transforms in :mod:`repro.core.transform`.
        """
        return self._unary(forward, backward, name)
