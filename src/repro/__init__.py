"""repro — reproduction of "Training Deep Neural Networks Using Posit Number System".

Lu et al., SOCC 2019 (arXiv:1909.03831).

The package is organised as the paper's contribution (:mod:`repro.core`) on
top of self-contained substrates:

* :mod:`repro.posit` — the posit number system (bit-exact scalars, fast
  vectorized quantization, quire, value tables) plus low-bit float formats.
* :mod:`repro.tensor` / :mod:`repro.nn` / :mod:`repro.optim` — a NumPy
  autograd engine, layers, and optimizers replacing PyTorch.
* :mod:`repro.models` — ResNet-18 variants (Cifar and ImageNet stems).
* :mod:`repro.data` — synthetic Cifar-like / ImageNet-like datasets.
* :mod:`repro.core` — the posit training methodology: Fig. 3 quantization
  insertion, warm-up training, distribution-based shifting (Eq. 2/3),
  per-layer es policies (Table III), and the trainer.
* :mod:`repro.hardware` — functional + cost models of the posit MAC,
  decoder, and encoder architectures (Figs. 4-6, Tables IV-V).
* :mod:`repro.baselines` — fixed-point and low-bit float training baselines.
* :mod:`repro.analysis` — distribution and quantization-error analysis
  (Fig. 2 and the motivation studies).
"""

from .core import (
    PositTrainer,
    QuantizationPolicy,
    RoleFormats,
    ScaleEstimator,
    WarmupSchedule,
    compute_scale_factor,
)
from .posit import (
    PositConfig,
    PositQuantizer,
    PositScalar,
    quantize,
    quantize_to_bits,
)

__version__ = "0.1.0"

__all__ = [
    "__version__",
    "PositConfig",
    "PositScalar",
    "PositQuantizer",
    "quantize",
    "quantize_to_bits",
    "PositTrainer",
    "QuantizationPolicy",
    "RoleFormats",
    "WarmupSchedule",
    "ScaleEstimator",
    "compute_scale_factor",
]
