"""repro — reproduction of "Training Deep Neural Networks Using Posit Number System".

Lu et al., SOCC 2019 (arXiv:1909.03831).

Quickstart
----------
The high-level API wires a complete experiment from plain data::

    from repro.api import ExperimentConfig, build_experiment

    config = ExperimentConfig(dataset="cifar_like", model="cifar_resnet",
                              policy="cifar_paper", epochs=4, warmup_epochs=1)
    history = build_experiment(config).run()

Policies and number formats are declarative: any registry spec string —
``"posit(8,1)"``, ``"fp8_e4m3"``, ``"fixed(16,13)"``, ``"fp32"`` — or a
policy preset/dict resolves through :func:`repro.api.build_policy`, and
``ExperimentConfig`` round-trips through JSON-able dicts.

Architecture
------------
The package is organised as the paper's contribution (:mod:`repro.core`) on
top of self-contained substrates:

* :mod:`repro.formats` — the unified number-format type system: the
  :class:`~repro.formats.NumberFormat` protocol (implemented by posit,
  float, and fixed-point formats), the spec-string registry
  (:func:`~repro.formats.parse_format`), and the cached quantizer factory
  (:func:`~repro.formats.get_quantizer`).
* :mod:`repro.posit` — the posit number system (bit-exact scalars, fast
  vectorized quantization, quire, value tables) plus low-bit float formats.
* :mod:`repro.tensor` / :mod:`repro.nn` / :mod:`repro.optim` — a NumPy
  autograd engine, layers, and optimizers replacing PyTorch.
* :mod:`repro.models` — ResNet-18 variants (Cifar and ImageNet stems).
* :mod:`repro.data` — synthetic Cifar-like / ImageNet-like datasets.
* :mod:`repro.core` — the posit training methodology: Fig. 3 quantization
  insertion, warm-up training, distribution-based shifting (Eq. 2/3),
  per-layer es policies (Table III), and the trainer.
* :mod:`repro.hardware` — functional + cost models of the posit MAC,
  decoder, and encoder architectures (Figs. 4-6, Tables IV-V).
* :mod:`repro.baselines` — fixed-point and low-bit float training recipes.
* :mod:`repro.analysis` — distribution and quantization-error analysis
  (Fig. 2 and the motivation studies).
* :mod:`repro.api` — the high-level experiment API shown above.
* :mod:`repro.sweeps` — the declarative sweep engine: grid/zip axes over
  experiment configs, parallel sharded execution with resume, the
  append-only JSONL result store, and the aggregation/report layer
  (including energy/accuracy Pareto fronts).
* :mod:`repro.serve` — the deployment subsystem: packed n-bit model
  artifacts (``save_model``/``load_model``), the micro-batching
  :class:`~repro.serve.InferenceEngine`, the stdlib HTTP transport
  (``/predict``, ``/healthz``, ``/stats``), sweep-winner export
  (``serve_best``), and the closed-loop load generator.
* :mod:`repro.cli` — the ``repro`` command line (``python -m repro``):
  ``sweep run / status / report / pareto``, ``formats list``,
  ``export``, and ``serve``.

Migration note (union-based formats -> NumberFormat protocol)
-------------------------------------------------------------
Earlier versions modelled a tensor format as the ad-hoc union
``Format = Union[PositConfig, FloatFormat, None]``, with fixed point bolted
on through a duck-typed hook in ``repro.baselines``.  Formats are now
uniform :class:`~repro.formats.NumberFormat` values:

* ``FixedPointFormat`` moved to :mod:`repro.formats` (``repro.baselines``
  re-exports it, so old imports keep working);
* every format carries ``quantize`` / ``to_bits`` / ``from_bits`` /
  ``maxpos`` / ``minpos`` / ``bits`` / ``name`` / ``spec()``;
* policies accept spec strings anywhere they accepted format objects
  (``RoleFormats.from_specs``, ``QuantizationPolicy.from_dict`` /
  ``to_dict`` / ``uniform_format``), and ``PositTrainer`` accepts preset
  names and policy dicts directly;
* quantizers should come from the cached
  :func:`repro.formats.get_quantizer` instead of being instantiated per
  call site (the old constructors still work).

The legacy ``Format`` alias (and the ``repro.baselines.fixedpoint`` shim
module) completed their deprecation window and were removed; annotate with
:data:`repro.core.TensorFormat` (``Optional[NumberFormat]``) instead.  No
public constructor changed signature.
"""

from .api import ExperimentConfig, build_experiment, build_policy, run_experiment
from .core import (
    PositTrainer,
    QuantizationPolicy,
    RoleFormats,
    ScaleEstimator,
    WarmupSchedule,
    compute_scale_factor,
)
from .formats import (
    FixedPointFormat,
    NumberFormat,
    as_format,
    available_formats,
    get_quantizer,
    parse_format,
)
from .posit import (
    PositConfig,
    PositQuantizer,
    PositScalar,
    quantize,
    quantize_to_bits,
)
from .sweeps import ResultStore, SweepAxis, SweepConfig, run_sweep, sweep_report

__version__ = "0.3.0"

__all__ = [
    "__version__",
    # formats
    "NumberFormat",
    "FixedPointFormat",
    "parse_format",
    "as_format",
    "available_formats",
    "get_quantizer",
    # posit substrate
    "PositConfig",
    "PositScalar",
    "PositQuantizer",
    "quantize",
    "quantize_to_bits",
    # training methodology
    "PositTrainer",
    "QuantizationPolicy",
    "RoleFormats",
    "WarmupSchedule",
    "ScaleEstimator",
    "compute_scale_factor",
    # high-level API
    "ExperimentConfig",
    "build_experiment",
    "build_policy",
    "run_experiment",
    # sweep engine
    "SweepConfig",
    "SweepAxis",
    "ResultStore",
    "run_sweep",
    "sweep_report",
]
