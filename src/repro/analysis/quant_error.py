"""Quantization-error metrics and format comparisons.

Quantifies how much information each number format loses on a given tensor —
the evidence behind the paper's claim that posit's tapered precision fits DNN
tensor distributions better than fixed point or small floats, especially once
the distribution-based shifting of Eq. (2)/(3) recenters the data.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

import numpy as np

from ..core.scaling import compute_scale_factor
from ..formats import NumberFormat, get_quantizer
from ..posit import PositConfig, quantize

__all__ = [
    "sqnr_db",
    "max_relative_error",
    "mean_absolute_error",
    "quantization_report",
    "compare_formats",
    "shifting_benefit",
]


def sqnr_db(original: np.ndarray, quantized: np.ndarray) -> float:
    """Signal-to-quantization-noise ratio in decibels.

    Returns ``inf`` for an exact representation and ``-inf`` when the signal
    is zero but the error is not.
    """
    original = np.asarray(original, dtype=np.float64)
    quantized = np.asarray(quantized, dtype=np.float64)
    signal = float(np.sum(original**2))
    noise = float(np.sum((original - quantized) ** 2))
    if noise == 0.0:
        return float("inf")
    if signal == 0.0:
        return float("-inf")
    return 10.0 * np.log10(signal / noise)


def max_relative_error(original: np.ndarray, quantized: np.ndarray) -> float:
    """Largest element-wise relative error over the non-zero elements."""
    original = np.asarray(original, dtype=np.float64)
    quantized = np.asarray(quantized, dtype=np.float64)
    mask = original != 0
    if not np.any(mask):
        return 0.0
    rel = np.abs(original[mask] - quantized[mask]) / np.abs(original[mask])
    return float(rel.max())


def mean_absolute_error(original: np.ndarray, quantized: np.ndarray) -> float:
    """Mean element-wise absolute error."""
    original = np.asarray(original, dtype=np.float64)
    quantized = np.asarray(quantized, dtype=np.float64)
    return float(np.mean(np.abs(original - quantized)))


def quantization_report(values: np.ndarray, quantizer: Callable[[np.ndarray], np.ndarray],
                        label: str = "") -> dict:
    """Apply a quantizer to ``values`` and report the error metrics."""
    quantized = quantizer(values)
    underflow = float(np.mean((values != 0) & (quantized == 0)))
    return {
        "label": label or getattr(quantizer, "__name__", type(quantizer).__name__),
        "sqnr_db": sqnr_db(values, quantized),
        "max_relative_error": max_relative_error(values, quantized),
        "mean_absolute_error": mean_absolute_error(values, quantized),
        "underflow_fraction": underflow,
    }


def compare_formats(
    values: np.ndarray,
    quantizers: Union[dict[str, Callable[[np.ndarray], np.ndarray]],
                      Sequence[Union[str, NumberFormat]]],
    rounding: str = "nearest",
) -> list[dict]:
    """Run :func:`quantization_report` for several formats on the same tensor.

    ``quantizers`` is either the classic ``{label: quantizer}`` mapping, or a
    plain sequence of registry spec strings / :class:`~repro.formats.NumberFormat`
    objects (e.g. ``["posit(8,1)", "fp8_e4m3", "fixed(16,13)"]``) which are
    resolved through the cached quantizer factory and labelled by spec.
    """
    if not isinstance(quantizers, dict):
        resolved = {}
        for entry in quantizers:
            quantizer = get_quantizer(entry, rounding=rounding)
            resolved[quantizer.format.spec()] = quantizer
        quantizers = resolved
    return [quantization_report(values, quantizer, label=label)
            for label, quantizer in quantizers.items()]


def shifting_benefit(values: np.ndarray, config: PositConfig, sigma: int = 2,
                     rounding: str = "zero",
                     scales: Optional[Sequence[float]] = None) -> dict:
    """Quantify the SQNR gained by the distribution-based shifting of Eq. (2)/(3).

    Quantizes ``values`` directly and with the layer-wise scale factor, and
    reports both SQNRs plus the gain.  Optionally evaluates additional scale
    factors (for the σ-sweep ablation).
    """
    values = np.asarray(values, dtype=np.float64)
    direct = quantize(values, config, rounding=rounding)
    scale = compute_scale_factor(values, sigma=sigma)
    shifted = quantize(values / scale, config, rounding=rounding) * scale
    result = {
        "format": str(config),
        "scale_factor": scale,
        "sqnr_direct_db": sqnr_db(values, direct),
        "sqnr_shifted_db": sqnr_db(values, shifted),
    }
    result["sqnr_gain_db"] = result["sqnr_shifted_db"] - result["sqnr_direct_db"]
    if scales is not None:
        sweep = []
        for candidate in scales:
            candidate_q = quantize(values / candidate, config, rounding=rounding) * candidate
            sweep.append({"scale": candidate, "sqnr_db": sqnr_db(values, candidate_q)})
        result["scale_sweep"] = sweep
    return result
