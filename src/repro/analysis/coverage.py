"""Posit code-space coverage analysis.

The paper's motivation for distribution-based shifting is that "the precision
of [the] posit number system is basically symmetrical about 1, but the data
distributions in DNN models are concentrated on [a] limited range" — i.e.
without shifting most of the posit code space is never used.  This module
measures that directly: it maps a tensor onto posit codes and reports how
many distinct codes are exercised, the entropy of the code histogram, and how
both improve when the Eq. (2)/(3) scale factor is applied.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from ..core.scaling import compute_scale_factor
from ..formats import NumberFormat, as_format

__all__ = ["code_usage", "coverage_report", "shifting_coverage_gain"]

FormatLike = Union[NumberFormat, str]


def code_usage(values: np.ndarray, config: FormatLike, scale: float = 1.0,
               rounding: str = "zero") -> dict:
    """Histogram of storage codes used by ``values`` (optionally pre-scaled).

    Works for any :class:`~repro.formats.NumberFormat` (or registry spec
    string) via its ``to_bits`` codec.  Returns the number of distinct codes
    used, the fraction of the available code space that represents, and the
    normalized entropy of the code histogram (1.0 means the codes are used
    uniformly).
    """
    config = as_format(config)
    values = np.asarray(values, dtype=np.float64).ravel()
    scaled = values / scale if scale != 1.0 else values
    bits = np.asarray(config.to_bits(scaled, mode=rounding)).ravel()
    unique, counts = np.unique(bits, return_counts=True)
    probabilities = counts / counts.sum()
    entropy = float(-(probabilities * np.log2(probabilities)).sum())
    code_count = getattr(config, "code_count", 1 << config.bits)
    max_entropy = np.log2(code_count)
    return {
        "format": config.spec(),
        "scale": scale,
        "distinct_codes": int(unique.size),
        "code_space_fraction": unique.size / code_count,
        "entropy_bits": entropy,
        "normalized_entropy": entropy / max_entropy if max_entropy > 0 else 0.0,
    }


def coverage_report(values: np.ndarray, configs: Sequence[FormatLike],
                    rounding: str = "zero") -> list[dict]:
    """Code usage of the same tensor under several number formats."""
    return [code_usage(values, config, rounding=rounding) for config in configs]


def shifting_coverage_gain(values: np.ndarray, config: FormatLike, sigma: int = 2,
                           rounding: str = "zero") -> dict:
    """Compare code usage with and without the Eq. (2)/(3) scale factor."""
    config = as_format(config)
    direct = code_usage(values, config, scale=1.0, rounding=rounding)
    scale = compute_scale_factor(values, sigma=sigma)
    shifted = code_usage(values, config, scale=scale, rounding=rounding)
    return {
        "format": config.spec(),
        "scale_factor": scale,
        "direct": direct,
        "shifted": shifted,
        "distinct_code_gain": shifted["distinct_codes"] - direct["distinct_codes"],
        "entropy_gain_bits": shifted["entropy_bits"] - direct["entropy_bits"],
    }
