"""Analysis tooling: weight distributions (Fig. 2), quantization error, code coverage."""

from .coverage import code_usage, coverage_report, shifting_coverage_gain
from .distributions import (
    DistributionRecorder,
    ParameterSnapshot,
    bn_shift_magnitude,
    default_tracked_parameters,
    histogram_summary,
)
from .quant_error import (
    compare_formats,
    max_relative_error,
    mean_absolute_error,
    quantization_report,
    shifting_benefit,
    sqnr_db,
)

__all__ = [
    "DistributionRecorder",
    "ParameterSnapshot",
    "histogram_summary",
    "bn_shift_magnitude",
    "default_tracked_parameters",
    "sqnr_db",
    "max_relative_error",
    "mean_absolute_error",
    "quantization_report",
    "compare_formats",
    "shifting_benefit",
    "code_usage",
    "coverage_report",
    "shifting_coverage_gain",
]
