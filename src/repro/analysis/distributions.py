"""Weight-distribution tracking during training (reproduces Fig. 2).

Fig. 2 of the paper shows histograms and per-epoch distributions of a CONV
layer weight (stable across training) and a BN layer weight (shifting sharply
in the first epochs because of the all-ones initialization).  That
observation is what motivates the FP32 warm-up phase.

:class:`DistributionRecorder` is an epoch callback for
:class:`~repro.core.trainer.PositTrainer` that snapshots selected parameters
every epoch and summarizes them (histogram, mean/std, log2-domain center and
range).  :func:`bn_shift_magnitude` condenses the Fig. 2 observation into one
number per layer — how far the distribution moved between the initial epochs —
so the benchmark can assert the qualitative claim (BN layers shift much more
than conv layers early in training).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..nn import BatchNorm2d, Conv2d, Module

__all__ = [
    "ParameterSnapshot",
    "DistributionRecorder",
    "histogram_summary",
    "bn_shift_magnitude",
    "default_tracked_parameters",
]


def histogram_summary(values: np.ndarray, bins: int = 50) -> dict:
    """Histogram plus scalar summaries of a weight tensor.

    Returns the bin edges/counts together with mean, standard deviation, and
    the log2-domain center used by the scaling factor of Eq. (2).
    """
    flat = np.asarray(values, dtype=np.float64).ravel()
    finite = flat[np.isfinite(flat)]
    counts, edges = np.histogram(finite, bins=bins)
    nonzero = np.abs(finite[finite != 0])
    log_center = float(np.mean(np.log2(nonzero))) if nonzero.size else 0.0
    return {
        "counts": counts,
        "edges": edges,
        "mean": float(finite.mean()) if finite.size else 0.0,
        "std": float(finite.std()) if finite.size else 0.0,
        "min": float(finite.min()) if finite.size else 0.0,
        "max": float(finite.max()) if finite.size else 0.0,
        "log2_center": log_center,
    }


@dataclass
class ParameterSnapshot:
    """Per-epoch summaries of one tracked parameter."""

    name: str
    epochs: list[int] = field(default_factory=list)
    means: list[float] = field(default_factory=list)
    stds: list[float] = field(default_factory=list)
    log2_centers: list[float] = field(default_factory=list)
    histograms: list[dict] = field(default_factory=list)

    def record(self, epoch: int, values: np.ndarray, keep_histogram: bool = True,
               bins: int = 50) -> None:
        """Append one epoch's summary of ``values``."""
        summary = histogram_summary(values, bins=bins)
        self.epochs.append(epoch)
        self.means.append(summary["mean"])
        self.stds.append(summary["std"])
        self.log2_centers.append(summary["log2_center"])
        if keep_histogram:
            self.histograms.append(summary)

    @property
    def std_trajectory(self) -> np.ndarray:
        """Standard deviation per recorded epoch."""
        return np.array(self.stds)

    @property
    def mean_trajectory(self) -> np.ndarray:
        """Mean per recorded epoch."""
        return np.array(self.means)

    def total_shift(self) -> float:
        """How far the distribution moved over training.

        Measured as the change in (mean, std) between the first and last
        recorded epoch, normalized by the final std — the quantity that is
        visibly large for BN layers and small for CONV layers in Fig. 2.
        """
        if len(self.means) < 2:
            return 0.0
        scale = abs(self.stds[-1]) + 1e-12
        return (abs(self.means[-1] - self.means[0]) + abs(self.stds[-1] - self.stds[0])) / scale


def default_tracked_parameters(model: Module) -> list[str]:
    """Pick the Fig. 2 style parameters to track: first conv and first BN weight."""
    first_conv = None
    first_bn = None
    for name, module in model.named_modules():
        if first_conv is None and isinstance(module, Conv2d):
            first_conv = f"{name}.weight" if name else "weight"
        if first_bn is None and isinstance(module, BatchNorm2d):
            first_bn = f"{name}.weight" if name else "weight"
        if first_conv and first_bn:
            break
    return [p for p in (first_conv, first_bn) if p is not None]


class DistributionRecorder:
    """Epoch callback recording weight distributions of selected parameters.

    Parameters
    ----------
    parameter_names:
        Qualified parameter names to track (as produced by
        ``model.named_parameters()``).  Defaults to the first conv weight and
        the first BN weight, the two panels of Fig. 2.
    keep_histograms:
        Whether to keep full histograms (True) or only scalar summaries.
    bins:
        Histogram bin count.
    """

    def __init__(self, parameter_names: Optional[list[str]] = None,
                 keep_histograms: bool = True, bins: int = 50):
        self.parameter_names = parameter_names
        self.keep_histograms = keep_histograms
        self.bins = bins
        self.snapshots: dict[str, ParameterSnapshot] = {}

    def __call__(self, trainer, epoch: int, record) -> None:
        """Record the tracked parameters of ``trainer.model`` for this epoch."""
        self.record_model(trainer.model, epoch)

    def record_model(self, model: Module, epoch: int) -> None:
        """Snapshot the tracked parameters of ``model`` at ``epoch``."""
        names = self.parameter_names or default_tracked_parameters(model)
        params = dict(model.named_parameters())
        for name in names:
            if name not in params:
                raise KeyError(f"parameter {name!r} not found in model")
            snapshot = self.snapshots.setdefault(name, ParameterSnapshot(name))
            snapshot.record(epoch, params[name].data,
                            keep_histogram=self.keep_histograms, bins=self.bins)

    def report(self) -> list[dict]:
        """One row per tracked parameter with its shift magnitude."""
        return [
            {
                "parameter": name,
                "epochs_recorded": len(snapshot.epochs),
                "initial_std": snapshot.stds[0] if snapshot.stds else 0.0,
                "final_std": snapshot.stds[-1] if snapshot.stds else 0.0,
                "total_shift": snapshot.total_shift(),
                "final_log2_center": snapshot.log2_centers[-1] if snapshot.log2_centers else 0.0,
            }
            for name, snapshot in self.snapshots.items()
        ]


def bn_shift_magnitude(recorder: DistributionRecorder) -> dict[str, float]:
    """Shift magnitude per tracked parameter (the Fig. 2 qualitative claim)."""
    return {name: snap.total_shift() for name, snap in recorder.snapshots.items()}
