"""Posit encoder architectures (Fig. 6): original and optimized.

The encoder converts a float-like triple (sign, effective exponent, mantissa)
produced by the FP MAC back into a posit word.  Structure (Fig. 6a, from
Zhang et al. [6]):

1. take the absolute value of the effective exponent and split it into the
   regime value ``r`` and the ``es`` low-order exponent bits;
2. build a ``2n``-bit word REM from the regime sequence, the exponent bits,
   and the mantissa;
3. right-shift REM by the regime width (``r`` or ``r + 1``) — as in the
   decoder, the ``+ 1`` adder sits on the critical path before the shifter.

The optimization (Fig. 6b) mirrors the decoder's: the right shifter is
duplicated (one copy followed by a constant ``>> 1``), the adder disappears
from the critical path, and a mux selects the correct result.

Functional behaviour is identical between the variants and is validated
against the bit-exact reference encoder in :mod:`repro.posit.scalar`.
"""

from __future__ import annotations

from ..posit import PositConfig
from ..posit.scalar import encode as scalar_encode
from .components import (
    ComponentCost,
    absolute_value,
    barrel_shifter,
    incrementer,
    mux2,
    wire,
)
from .decoder import DecodedPosit

__all__ = ["PositEncoder"]


class PositEncoder:
    """Float-to-posit encoder with a structural cost model.

    Parameters
    ----------
    config:
        The posit format being produced.
    optimized:
        ``False`` models the original architecture of [6] (Fig. 6a);
        ``True`` models the paper's optimized architecture (Fig. 6b).
    """

    def __init__(self, config: PositConfig, optimized: bool = True):
        self.config = config
        self.optimized = optimized

    # ------------------------------------------------------------------ #
    # Functional model (identical for both variants)
    # ------------------------------------------------------------------ #
    def encode(self, decoded: DecodedPosit, rounding: str = "zero") -> int:
        """Encode a sign/exponent/mantissa triple into a posit bit pattern.

        The encoder hardware receives a value that is already representable
        in the internal float format; re-encoding truncates whatever does not
        fit the posit word (round-to-zero), matching Algorithm 1.
        """
        if decoded.is_zero:
            return 0
        if decoded.is_nar:
            return self.config.nar_pattern
        return scalar_encode(decoded.value, self.config, rounding=rounding)

    def encode_value(self, value: float, rounding: str = "zero") -> int:
        """Encode a real value directly (convenience wrapper)."""
        return scalar_encode(value, self.config, rounding=rounding)

    # ------------------------------------------------------------------ #
    # Structural cost model
    # ------------------------------------------------------------------ #
    def cost(self) -> ComponentCost:
        """Gate-level cost of this encoder variant."""
        n = self.config.n
        rem_width = 2 * n  # the 2n-bit REM variable of the paper

        exponent_width = self._exponent_width_bits()
        # Absolute value of the effective exponent plus regime/exponent split.
        exp_handling = absolute_value(exponent_width).serial(mux2(self.config.es or 1))

        # REM construction is wiring plus a small amount of select logic.
        rem_build = ComponentCost("rem-build", area_ge=2.0 * n, delay_levels=1.0)

        shifter = barrel_shifter(rem_width, max_shift=n)
        if self.optimized:
            # Fig. 6b: duplicated right shifter, constant >>1 on one copy,
            # mux afterwards; the +1 adder leaves the critical path.
            shift_path = shifter.parallel(shifter.serial(wire(">>1"))).serial(mux2(n - 1))
        else:
            # Fig. 6a: +1 adder feeds the single right shifter.
            shift_path = (
                incrementer(self._regime_width_bits()).serial(shifter).serial(mux2(n - 1))
            )

        # Final sign handling / two's complement of the output word.
        output_stage = ComponentCost("sign-out", area_ge=2.5 * n, delay_levels=1.5)

        total = exp_handling.serial(rem_build).serial(shift_path).serial(output_stage)
        variant = "opt" if self.optimized else "orig"
        return ComponentCost(f"posit-encoder-{variant}({self.config})", total.area_ge, total.delay_levels)

    def _regime_width_bits(self) -> int:
        import math

        return max(2, math.ceil(math.log2(self.config.n)) + 1)

    def _exponent_width_bits(self) -> int:
        import math

        return self.config.es + max(1, math.ceil(math.log2(self.config.n))) + 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        variant = "optimized" if self.optimized else "original"
        return f"PositEncoder({self.config}, {variant})"
