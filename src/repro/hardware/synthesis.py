"""Analytical "synthesis": converting structural costs into delay/power/area.

This module plays the role of Design Compiler in the reproduction.  A
:class:`SynthesisResult` is produced from a :class:`~repro.hardware.components.ComponentCost`
using the gate library constants, optionally rescaled by a
:class:`Calibration` derived from one published reference point.

Calibration strategy
--------------------
The paper reports absolute numbers from a TSMC 28 nm flow we cannot run.  To
put the model on the same scale we fit exactly **one** area factor and **one**
power factor so that the modelled FP32 MAC matches the paper's FP32 MAC row
of Table V (4322 µm², 2.52 mW at 750 MHz), and one delay factor so that the
modelled original posit(16,1) decoder matches the 0.28 ns reported for [6] in
Table IV.  Every other entry of Tables IV and V is then a *prediction* of the
structural model — the reproduced claims are the relative ones (posit MAC vs
FP32 MAC, optimized codec vs original codec), not the absolute values.

The report helpers at the bottom regenerate the rows of Table IV and Table V.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..posit import PositConfig
from .components import ComponentCost
from .decoder import PositDecoder
from .encoder import PositEncoder
from .gates import GENERIC_28NM, GateLibrary
from .mac import FP32MAC, PositMAC

__all__ = [
    "Calibration",
    "SynthesisResult",
    "synthesize",
    "calibrate_to_reference",
    "PAPER_FP32_MAC_AREA_UM2",
    "PAPER_FP32_MAC_POWER_MW",
    "PAPER_REFERENCE_DECODER_DELAY_NS",
    "table4_report",
    "table5_report",
    "codec_optimization_report",
]

#: Published reference points used for calibration (Table V FP32 row and the
#: Table IV [6] posit(16,1) decoder delay).
PAPER_FP32_MAC_AREA_UM2 = 4322.0
PAPER_FP32_MAC_POWER_MW = 2.52
PAPER_REFERENCE_DECODER_DELAY_NS = 0.28
PAPER_REFERENCE_DECODER_FORMAT = PositConfig(16, 1)

#: Clock frequency used for all Table V power numbers.
TABLE5_CLOCK_MHZ = 750.0


@dataclass(frozen=True)
class Calibration:
    """Global scale factors aligning the model with the paper's technology."""

    area_scale: float = 1.0
    power_scale: float = 1.0
    delay_scale: float = 1.0

    @staticmethod
    def identity() -> "Calibration":
        """No rescaling (raw library numbers)."""
        return Calibration()


@dataclass(frozen=True)
class SynthesisResult:
    """Delay/area/power report for one design."""

    design: str
    gate_equivalents: float
    logic_levels: float
    delay_ns: float
    area_um2: float
    power_mw: float
    clock_mhz: float

    def as_dict(self) -> dict:
        """Return the result as a plain dictionary (benchmark table row)."""
        return {
            "design": self.design,
            "gate_equivalents": round(self.gate_equivalents, 1),
            "logic_levels": round(self.logic_levels, 1),
            "delay_ns": round(self.delay_ns, 4),
            "area_um2": round(self.area_um2, 1),
            "power_mw": round(self.power_mw, 4),
            "clock_mhz": self.clock_mhz,
        }


def synthesize(cost: ComponentCost, library: GateLibrary = GENERIC_28NM,
               clock_mhz: float = TABLE5_CLOCK_MHZ,
               calibration: Calibration | None = None) -> SynthesisResult:
    """Convert a structural cost into physical delay/area/power numbers."""
    calibration = calibration or Calibration.identity()
    delay_ns = library.delay_ns(cost.delay_levels) * calibration.delay_scale
    area_um2 = library.area_um2(cost.area_ge) * calibration.area_scale
    power_mw = library.power_mw(cost.area_ge, clock_mhz) * calibration.power_scale
    return SynthesisResult(
        design=cost.name,
        gate_equivalents=cost.area_ge,
        logic_levels=cost.delay_levels,
        delay_ns=delay_ns,
        area_um2=area_um2,
        power_mw=power_mw,
        clock_mhz=clock_mhz,
    )


def calibrate_to_reference(library: GateLibrary = GENERIC_28NM) -> Calibration:
    """Fit the three global scale factors to the published reference points.

    * area and power: the FP32 MAC must match the Table V FP32 row;
    * delay: the *original* posit(16,1) decoder must match the 0.28 ns that
      Table IV attributes to [6].
    """
    fp32_raw = synthesize(FP32MAC().cost(), library, TABLE5_CLOCK_MHZ, Calibration.identity())
    decoder_raw = synthesize(
        PositDecoder(PAPER_REFERENCE_DECODER_FORMAT, optimized=False).cost(),
        library,
        TABLE5_CLOCK_MHZ,
        Calibration.identity(),
    )
    return Calibration(
        area_scale=PAPER_FP32_MAC_AREA_UM2 / fp32_raw.area_um2,
        power_scale=PAPER_FP32_MAC_POWER_MW / fp32_raw.power_mw,
        delay_scale=PAPER_REFERENCE_DECODER_DELAY_NS / decoder_raw.delay_ns,
    )


# --------------------------------------------------------------------------- #
# Table / figure report helpers
# --------------------------------------------------------------------------- #

#: The formats Table IV evaluates the encoder/decoder on.
TABLE4_FORMATS = (PositConfig(8, 0), PositConfig(16, 1), PositConfig(32, 3))

#: The formats Table V evaluates the posit MAC on.
TABLE5_FORMATS = (PositConfig(8, 1), PositConfig(8, 2), PositConfig(16, 1), PositConfig(16, 2))


def table4_report(library: GateLibrary = GENERIC_28NM,
                  calibration: Calibration | None = None) -> list[dict]:
    """Regenerate Table IV: encoder/decoder delay for original vs optimized designs.

    One row per (format, unit) with the original ([6]) and optimized (ours)
    delays plus the speed-up, and the optimized design's power and area (the
    extra rows the paper reports for its own design).
    """
    calibration = calibration or calibrate_to_reference(library)
    rows = []
    for config in TABLE4_FORMATS:
        for unit_name, unit_cls in (("encoder", PositEncoder), ("decoder", PositDecoder)):
            original = synthesize(unit_cls(config, optimized=False).cost(), library,
                                  TABLE5_CLOCK_MHZ, calibration)
            optimized = synthesize(unit_cls(config, optimized=True).cost(), library,
                                   TABLE5_CLOCK_MHZ, calibration)
            rows.append(
                {
                    "format": str(config),
                    "unit": unit_name,
                    "original_delay_ns": round(original.delay_ns, 3),
                    "optimized_delay_ns": round(optimized.delay_ns, 3),
                    "speedup_percent": round(
                        100.0 * (original.delay_ns - optimized.delay_ns) / original.delay_ns, 1
                    ),
                    "optimized_power_mw": round(optimized.power_mw, 3),
                    "optimized_area_um2": round(optimized.area_um2, 1),
                }
            )
    return rows


def table5_report(library: GateLibrary = GENERIC_28NM,
                  calibration: Calibration | None = None) -> list[dict]:
    """Regenerate Table V: posit MAC vs FP32 MAC power and area at 750 MHz."""
    calibration = calibration or calibrate_to_reference(library)
    fp32 = synthesize(FP32MAC().cost(), library, TABLE5_CLOCK_MHZ, calibration)
    rows = [
        {
            "design": "FP32",
            "power_mw": round(fp32.power_mw, 3),
            "area_um2": round(fp32.area_um2, 1),
            "power_reduction_percent": 0.0,
            "area_reduction_percent": 0.0,
        }
    ]
    for config in TABLE5_FORMATS:
        result = synthesize(PositMAC(config).cost(), library, TABLE5_CLOCK_MHZ, calibration)
        rows.append(
            {
                "design": str(config),
                "power_mw": round(result.power_mw, 3),
                "area_um2": round(result.area_um2, 1),
                "power_reduction_percent": round(
                    100.0 * (fp32.power_mw - result.power_mw) / fp32.power_mw, 1
                ),
                "area_reduction_percent": round(
                    100.0 * (fp32.area_um2 - result.area_um2) / fp32.area_um2, 1
                ),
            }
        )
    return rows


def codec_optimization_report(library: GateLibrary = GENERIC_28NM,
                              calibration: Calibration | None = None) -> list[dict]:
    """Regenerate the Fig. 5/6 comparison: codec share of the MAC delay.

    Reports, for each Table V format, the fraction of the posit MAC delay
    spent in the encoder + decoder for the original and the optimized codec
    (the paper quotes ~40 % for the original design of [6]).
    """
    calibration = calibration or calibrate_to_reference(library)
    rows = []
    for config in TABLE5_FORMATS:
        original = PositMAC(config, optimized_codec=False)
        optimized = PositMAC(config, optimized_codec=True)
        original_synth = synthesize(original.cost(), library, TABLE5_CLOCK_MHZ, calibration)
        optimized_synth = synthesize(optimized.cost(), library, TABLE5_CLOCK_MHZ, calibration)
        rows.append(
            {
                "format": str(config),
                "original_mac_delay_ns": round(original_synth.delay_ns, 3),
                "optimized_mac_delay_ns": round(optimized_synth.delay_ns, 3),
                "original_codec_fraction": round(original.codec_delay_fraction(), 3),
                "optimized_codec_fraction": round(optimized.codec_delay_fraction(), 3),
                "mac_speedup_percent": round(
                    100.0
                    * (original_synth.delay_ns - optimized_synth.delay_ns)
                    / original_synth.delay_ns,
                    1,
                ),
            }
        )
    return rows
