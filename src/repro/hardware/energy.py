"""System-level memory and energy accounting (§IV introduction and §V claim).

The paper argues that using 8- or 16-bit posits instead of FP32 shrinks the
model by 4x or 2x, and that the "overhead caused by data communications can
be saved by 2-4x".  This module makes that accounting explicit for any model
built from :mod:`repro.nn` layers:

* parameter, activation, and gradient storage footprints under a
  :class:`~repro.core.policy.QuantizationPolicy`;
* per-training-step data movement (weights + activations forward, errors +
  weight gradients backward, weight update traffic);
* an energy estimate using standard per-byte DRAM/SRAM access energies and
  the per-MAC energies produced by the synthesis model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.policy import QuantizationPolicy
from ..formats import NumberFormat
from ..nn import BatchNorm2d, Conv2d, Linear, Module

__all__ = [
    "MemoryCosts",
    "TrafficReport",
    "format_bits",
    "model_size_bytes",
    "training_step_traffic",
    "communication_saving",
]

#: Representative access energies (picojoules per byte) for a 28 nm-class
#: system; absolute values only matter for the energy column, the savings
#: ratios depend on the byte counts alone.
DRAM_PJ_PER_BYTE = 160.0
SRAM_PJ_PER_BYTE = 6.0


@dataclass(frozen=True)
class MemoryCosts:
    """Byte footprints of one model under a given number-format assignment."""

    parameter_bytes: float
    activation_bytes_per_sample: float
    gradient_bytes: float

    @property
    def total_training_state_bytes(self) -> float:
        """Parameters + gradients (the persistent training state)."""
        return self.parameter_bytes + self.gradient_bytes


@dataclass(frozen=True)
class TrafficReport:
    """Per-training-step data movement and energy for one configuration."""

    label: str
    bytes_per_step: float
    dram_energy_uj: float
    model_bytes: float

    def as_dict(self) -> dict:
        """Row form used by the benchmark tables."""
        return {
            "label": self.label,
            "bytes_per_step": round(self.bytes_per_step, 1),
            "dram_energy_uj": round(self.dram_energy_uj, 3),
            "model_bytes": round(self.model_bytes, 1),
        }


def format_bits(fmt) -> int:
    """Storage width in bits of a format descriptor (None means FP32).

    Any :class:`~repro.formats.NumberFormat` — posit, float, or fixed point
    — is priced at its declared :attr:`~repro.formats.NumberFormat.bits`
    width, so memory/traffic accounting covers every format family.
    """
    if fmt is None:
        return 32
    if isinstance(fmt, NumberFormat):
        return int(fmt.bits)
    raise TypeError(f"unsupported format descriptor: {fmt!r}")


def _layer_formats(policy: Optional[QuantizationPolicy], module: Module):
    if policy is None:
        return None
    return policy.formats_for(module)


def model_size_bytes(model: Module, policy: Optional[QuantizationPolicy] = None) -> MemoryCosts:
    """Compute parameter/gradient byte footprints of ``model`` under ``policy``.

    Activation bytes are estimated per sample from the layer output channel
    counts assuming the activations are stored at the policy's activation
    format; layers the policy does not cover count at 32 bits.
    """
    parameter_bits = 0.0
    gradient_bits = 0.0
    activation_bits = 0.0
    for _, module in model.named_modules():
        params = [p for p in module._parameters.values() if p is not None]
        if not params and not isinstance(module, (Conv2d, Linear, BatchNorm2d)):
            continue
        formats = _layer_formats(policy, module)
        weight_bits = format_bits(formats.weight) if formats is not None else 32
        grad_bits = format_bits(formats.weight_grad) if formats is not None else 32
        act_bits = format_bits(formats.activation) if formats is not None else 32
        for param in params:
            parameter_bits += param.size * weight_bits
            gradient_bits += param.size * grad_bits
        if isinstance(module, Conv2d):
            activation_bits += module.out_channels * act_bits
        elif isinstance(module, Linear):
            activation_bits += module.out_features * act_bits
        elif isinstance(module, BatchNorm2d):
            activation_bits += module.num_features * act_bits
    return MemoryCosts(
        parameter_bytes=parameter_bits / 8.0,
        activation_bytes_per_sample=activation_bits / 8.0,
        gradient_bytes=gradient_bits / 8.0,
    )


def training_step_traffic(model: Module, policy: Optional[QuantizationPolicy],
                          batch_size: int, activation_multiplier: float = 256.0,
                          label: str = "") -> TrafficReport:
    """Estimate bytes moved to/from main memory for one training step.

    One step reads the weights once (forward), writes and re-reads the
    activations (forward + backward), reads the weights again and writes the
    errors (backward), and reads + writes the weights and gradients (update).
    ``activation_multiplier`` scales the per-layer channel counts to spatial
    feature-map sizes (it cancels in the savings ratios).
    """
    costs = model_size_bytes(model, policy)
    weights = costs.parameter_bytes
    grads = costs.gradient_bytes
    activations = costs.activation_bytes_per_sample * activation_multiplier * batch_size
    bytes_per_step = (
        2 * weights          # forward read + backward read
        + 2 * activations    # forward write + backward read
        + activations        # error write
        + 2 * grads          # gradient write + update read
        + 2 * weights        # update read + write
    )
    energy_uj = bytes_per_step * DRAM_PJ_PER_BYTE * 1e-6
    return TrafficReport(
        label=label or ("fp32" if policy is None else "quantized"),
        bytes_per_step=bytes_per_step,
        dram_energy_uj=energy_uj,
        model_bytes=costs.parameter_bytes,
    )


def communication_saving(model: Module, policy: QuantizationPolicy,
                         batch_size: int = 32) -> dict:
    """Quantify the §V claim: communication overhead saved by 2-4x.

    Returns the FP32 and quantized traffic reports plus the savings ratios
    for model size and per-step traffic.
    """
    fp32 = training_step_traffic(model, None, batch_size, label="fp32")
    quantized = training_step_traffic(model, policy, batch_size, label="posit")
    return {
        "fp32": fp32.as_dict(),
        "quantized": quantized.as_dict(),
        "model_size_ratio": fp32.model_bytes / quantized.model_bytes,
        "traffic_ratio": fp32.bytes_per_step / quantized.bytes_per_step,
        "energy_ratio": fp32.dram_energy_uj / quantized.dram_energy_uj,
    }
