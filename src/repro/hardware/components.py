"""Structural hardware primitives and their gate-level cost estimates.

Each function returns a :class:`ComponentCost` describing one primitive in
technology-independent units (gate equivalents for area, logic levels for
delay).  Costs compose with :meth:`ComponentCost.serial` (delays add, areas
add) and :meth:`ComponentCost.parallel` (delays max, areas add), which is how
the decoder/encoder/MAC models in the sibling modules describe their
datapaths.

The estimates follow standard textbook structures:

* a leading-zero/one detector over ``w`` bits is a binary reduction tree —
  area linear in ``w``, delay logarithmic;
* a barrel shifter is ``log2(w)`` mux stages over the full width;
* adders are modelled as fast (Kogge-Stone-like) structures with
  logarithmic depth;
* multipliers are partial-product arrays with a Wallace-style reduction
  (area quadratic in operand width, delay logarithmic).

Absolute numbers are approximations; the comparisons the paper makes
(original vs optimized codec, posit MAC vs FP32 MAC) depend on the relative
structure, which these estimates capture.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "ComponentCost",
    "wire",
    "inverter_row",
    "mux2",
    "lzd",
    "lod",
    "barrel_shifter",
    "adder",
    "incrementer",
    "subtractor",
    "absolute_value",
    "comparator",
    "multiplier",
    "register",
    "xor_row",
]


@dataclass(frozen=True)
class ComponentCost:
    """Cost of one hardware component.

    Attributes
    ----------
    name:
        Label used in synthesis reports.
    area_ge:
        Area in NAND2 gate equivalents.
    delay_levels:
        Critical-path depth in NAND2-equivalent logic levels.
    """

    name: str
    area_ge: float
    delay_levels: float

    def serial(self, other: "ComponentCost", name: str | None = None) -> "ComponentCost":
        """Compose two components in series: areas add, delays add."""
        return ComponentCost(
            name=name or f"{self.name}+{other.name}",
            area_ge=self.area_ge + other.area_ge,
            delay_levels=self.delay_levels + other.delay_levels,
        )

    def parallel(self, other: "ComponentCost", name: str | None = None) -> "ComponentCost":
        """Compose two components in parallel: areas add, delay is the maximum."""
        return ComponentCost(
            name=name or f"{self.name}|{other.name}",
            area_ge=self.area_ge + other.area_ge,
            delay_levels=max(self.delay_levels, other.delay_levels),
        )

    def scaled(self, area_factor: float = 1.0, delay_factor: float = 1.0,
               name: str | None = None) -> "ComponentCost":
        """Return a copy with area and/or delay scaled."""
        return ComponentCost(
            name=name or self.name,
            area_ge=self.area_ge * area_factor,
            delay_levels=self.delay_levels * delay_factor,
        )

    @staticmethod
    def zero(name: str = "zero") -> "ComponentCost":
        """A free component (used as the identity for folds)."""
        return ComponentCost(name=name, area_ge=0.0, delay_levels=0.0)


def _log2ceil(value: int) -> int:
    return max(1, math.ceil(math.log2(max(value, 2))))


def wire(name: str = "wire") -> ComponentCost:
    """Pure wiring / constant shift: no gates, no delay."""
    return ComponentCost(name, 0.0, 0.0)


def inverter_row(width: int) -> ComponentCost:
    """A row of inverters over ``width`` bits."""
    return ComponentCost(f"inv[{width}]", 0.6 * width, 0.5)


def xor_row(width: int) -> ComponentCost:
    """A row of 2-input XOR gates over ``width`` bits."""
    return ComponentCost(f"xor[{width}]", 2.0 * width, 1.5)


def mux2(width: int) -> ComponentCost:
    """A 2:1 multiplexer over ``width`` bits."""
    return ComponentCost(f"mux2[{width}]", 1.8 * width, 1.4)


def lzd(width: int) -> ComponentCost:
    """Leading-zero detector over ``width`` bits (binary reduction tree)."""
    levels = _log2ceil(width)
    return ComponentCost(f"lzd[{width}]", 1.6 * width, 1.6 * levels)


def lod(width: int) -> ComponentCost:
    """Leading-one detector over ``width`` bits (same structure as the LZD)."""
    cost = lzd(width)
    return ComponentCost(f"lod[{width}]", cost.area_ge, cost.delay_levels)


def barrel_shifter(width: int, max_shift: int | None = None) -> ComponentCost:
    """Logarithmic barrel shifter over ``width`` bits.

    ``max_shift`` bounds the number of mux stages (defaults to a full shift
    by up to ``width - 1``).
    """
    if max_shift is None:
        max_shift = width - 1
    stages = _log2ceil(max_shift + 1)
    return ComponentCost(f"shift[{width}x{stages}]", 1.8 * width * stages, 1.4 * stages)


def adder(width: int) -> ComponentCost:
    """Fast (parallel-prefix) adder over ``width`` bits."""
    levels = _log2ceil(width)
    return ComponentCost(f"add[{width}]", 7.0 * width, 2.0 * levels + 2.0)


def incrementer(width: int) -> ComponentCost:
    """Add-one circuit over ``width`` bits (half-adder chain with fast carry)."""
    levels = _log2ceil(width)
    return ComponentCost(f"inc[{width}]", 2.5 * width, 1.5 * levels + 1.0)


def subtractor(width: int) -> ComponentCost:
    """Subtractor (adder plus an inverter row)."""
    return adder(width).serial(inverter_row(width), name=f"sub[{width}]")


def absolute_value(width: int) -> ComponentCost:
    """Two's-complement absolute value: conditional invert + increment + mux."""
    return (
        inverter_row(width)
        .serial(incrementer(width))
        .serial(mux2(width))
        .scaled(name=f"abs[{width}]")
    )


def comparator(width: int) -> ComponentCost:
    """Magnitude comparator over ``width`` bits."""
    levels = _log2ceil(width)
    return ComponentCost(f"cmp[{width}]", 3.0 * width, 1.5 * levels + 1.0)


def multiplier(width_a: int, width_b: int) -> ComponentCost:
    """Array multiplier with Wallace-style reduction (``width_a`` x ``width_b``)."""
    partial_products = width_a * width_b
    reduction_levels = 1.5 * _log2ceil(min(width_a, width_b)) * 2.0
    final_add = adder(width_a + width_b)
    return ComponentCost(
        f"mul[{width_a}x{width_b}]",
        5.5 * partial_products + final_add.area_ge,
        reduction_levels + final_add.delay_levels,
    )


def register(width: int) -> ComponentCost:
    """Edge-triggered register over ``width`` bits (adds area, no combinational delay)."""
    return ComponentCost(f"reg[{width}]", 4.5 * width, 0.0)
