"""Posit and FP32 multiply-accumulate units (Fig. 4, Table V).

The posit MAC is the three-stage structure of Fig. 4: three posit decoders
(multiplicands ``a``, ``b`` and the addend ``c``), an internal floating-point
MAC, and a posit encoder for the result ``z``.  The FP32 MAC baseline is the
bare FP MAC datapath with IEEE single-precision widths (no posit codecs).

Both expose

* a functional model (``mac(a_bits, b_bits, c_bits) -> z_bits`` for the posit
  unit, ``mac(a, b, c) -> float`` for the FP32 unit), validated against the
  bit-exact posit reference, and
* a structural cost (:meth:`cost`) that the synthesis model converts into the
  delay/power/area numbers of Tables IV and V.
"""

from __future__ import annotations

from ..posit import PositConfig
from ..posit.scalar import decode as posit_decode
from .components import ComponentCost
from .decoder import PositDecoder
from .encoder import PositEncoder
from .fpmac import FP32_SPEC, FPMac, internal_format_for_posit

__all__ = ["PositMAC", "FP32MAC"]


class PositMAC:
    """Posit multiply-and-accumulate unit: decoders -> FP MAC -> encoder.

    Parameters
    ----------
    config:
        The posit format of the operands and the result.
    optimized_codec:
        Whether to use the paper's optimized decoder/encoder (Fig. 5b/6b) or
        the original architecture of [6] (Fig. 5a/6a).
    rounding:
        Rounding used when re-encoding the result to posit; the paper uses
        round-to-zero.
    """

    def __init__(self, config: PositConfig, optimized_codec: bool = True,
                 rounding: str = "zero"):
        self.config = config
        self.rounding = rounding
        self.decoder = PositDecoder(config, optimized=optimized_codec)
        self.encoder = PositEncoder(config, optimized=optimized_codec)
        self.fp_mac = FPMac(internal_format_for_posit(config))
        self.optimized_codec = optimized_codec

    # ------------------------------------------------------------------ #
    # Functional model
    # ------------------------------------------------------------------ #
    def mac(self, a_bits: int, b_bits: int, c_bits: int) -> int:
        """Compute ``z = a * b + c`` on posit bit patterns.

        NaR operands propagate to a NaR result, matching Eq. (1)'s +-inf
        pattern.
        """
        nar = self.config.nar_pattern
        if nar in (a_bits, b_bits, c_bits):
            return nar
        a = self.decoder.decode(a_bits)
        b = self.decoder.decode(b_bits)
        c = self.decoder.decode(c_bits)
        result = self.fp_mac.mac(a.value, b.value, c.value)
        return self.encoder.encode_value(result, rounding=self.rounding)

    def mac_value(self, a: float, b: float, c: float) -> float:
        """Convenience wrapper operating on real values (posit-rounded first)."""
        from ..posit.scalar import encode as posit_encode

        a_bits = posit_encode(a, self.config, rounding=self.rounding)
        b_bits = posit_encode(b, self.config, rounding=self.rounding)
        c_bits = posit_encode(c, self.config, rounding=self.rounding)
        return posit_decode(self.mac(a_bits, b_bits, c_bits), self.config)

    # ------------------------------------------------------------------ #
    # Structural cost model
    # ------------------------------------------------------------------ #
    def cost(self) -> ComponentCost:
        """Total gate-level cost: three decoders + FP MAC + encoder.

        The three decoders operate in parallel (delay is one decoder), then
        the FP MAC and the encoder follow in series — exactly the datapath of
        Fig. 4.
        """
        decoder_cost = self.decoder.cost()
        decoders = decoder_cost.parallel(decoder_cost).parallel(decoder_cost)
        total = decoders.serial(self.fp_mac.cost()).serial(self.encoder.cost())
        variant = "opt" if self.optimized_codec else "orig"
        return ComponentCost(f"posit-mac-{variant}({self.config})", total.area_ge, total.delay_levels)

    def codec_delay_fraction(self) -> float:
        """Fraction of the total combinational delay spent in decoder + encoder.

        The paper motivates its codec optimization with the observation that
        the encoder plus decoder of [6] account for about 40 % of the posit
        MAC delay; this method lets the benchmarks verify that the model
        reproduces that proportion for the original architecture.
        """
        decoder_delay = self.decoder.cost().delay_levels
        encoder_delay = self.encoder.cost().delay_levels
        total = self.cost().delay_levels
        return (decoder_delay + encoder_delay) / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        variant = "optimized" if self.optimized_codec else "original"
        return f"PositMAC({self.config}, codec={variant})"


class FP32MAC:
    """IEEE single-precision MAC baseline (the FP32 row of Table V)."""

    def __init__(self):
        self.fp_mac = FPMac(FP32_SPEC)

    def mac(self, a: float, b: float, c: float) -> float:
        """Compute ``a * b + c`` with single-precision mantissa rounding."""
        return self.fp_mac.mac(a, b, c)

    def cost(self) -> ComponentCost:
        """Gate-level cost of the FP32 MAC datapath."""
        cost = self.fp_mac.cost()
        return ComponentCost("fp32-mac", cost.area_ge, cost.delay_levels)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "FP32MAC()"
