"""Posit and FP32 multiply-accumulate units (Fig. 4, Table V).

The posit MAC is the three-stage structure of Fig. 4: three posit decoders
(multiplicands ``a``, ``b`` and the addend ``c``), an internal floating-point
MAC, and a posit encoder for the result ``z``.  The FP32 MAC baseline is the
bare FP MAC datapath with IEEE single-precision widths (no posit codecs).

Both expose

* a functional model (``mac(a_bits, b_bits, c_bits) -> z_bits`` for the posit
  unit, ``mac(a, b, c) -> float`` for the FP32 unit), validated against the
  bit-exact posit reference, and
* a structural cost (:meth:`cost`) that the synthesis model converts into the
  delay/power/area numbers of Tables IV and V.
"""

from __future__ import annotations

from typing import Optional, Union

from ..formats import NumberFormat
from ..formats.fixedpoint import FixedPointFormat
from ..posit import FloatFormat, PositConfig
from ..posit.scalar import decode as posit_decode
from .components import ComponentCost, adder, multiplier
from .decoder import PositDecoder
from .encoder import PositEncoder
from .fpmac import FP32_SPEC, FPFormatSpec, FPMac, internal_format_for_posit

__all__ = ["PositMAC", "FP32MAC", "FloatMAC", "FixedPointMAC", "mac_unit_for_format"]


class PositMAC:
    """Posit multiply-and-accumulate unit: decoders -> FP MAC -> encoder.

    Parameters
    ----------
    config:
        The posit format of the operands and the result.
    optimized_codec:
        Whether to use the paper's optimized decoder/encoder (Fig. 5b/6b) or
        the original architecture of [6] (Fig. 5a/6a).
    rounding:
        Rounding used when re-encoding the result to posit; the paper uses
        round-to-zero.
    """

    def __init__(self, config: PositConfig, optimized_codec: bool = True,
                 rounding: str = "zero"):
        self.config = config
        self.rounding = rounding
        self.decoder = PositDecoder(config, optimized=optimized_codec)
        self.encoder = PositEncoder(config, optimized=optimized_codec)
        self.fp_mac = FPMac(internal_format_for_posit(config))
        self.optimized_codec = optimized_codec

    # ------------------------------------------------------------------ #
    # Functional model
    # ------------------------------------------------------------------ #
    def mac(self, a_bits: int, b_bits: int, c_bits: int) -> int:
        """Compute ``z = a * b + c`` on posit bit patterns.

        NaR operands propagate to a NaR result, matching Eq. (1)'s +-inf
        pattern.
        """
        nar = self.config.nar_pattern
        if nar in (a_bits, b_bits, c_bits):
            return nar
        a = self.decoder.decode(a_bits)
        b = self.decoder.decode(b_bits)
        c = self.decoder.decode(c_bits)
        result = self.fp_mac.mac(a.value, b.value, c.value)
        return self.encoder.encode_value(result, rounding=self.rounding)

    def mac_value(self, a: float, b: float, c: float) -> float:
        """Convenience wrapper operating on real values (posit-rounded first)."""
        from ..posit.scalar import encode as posit_encode

        a_bits = posit_encode(a, self.config, rounding=self.rounding)
        b_bits = posit_encode(b, self.config, rounding=self.rounding)
        c_bits = posit_encode(c, self.config, rounding=self.rounding)
        return posit_decode(self.mac(a_bits, b_bits, c_bits), self.config)

    # ------------------------------------------------------------------ #
    # Structural cost model
    # ------------------------------------------------------------------ #
    def cost(self) -> ComponentCost:
        """Total gate-level cost: three decoders + FP MAC + encoder.

        The three decoders operate in parallel (delay is one decoder), then
        the FP MAC and the encoder follow in series — exactly the datapath of
        Fig. 4.
        """
        decoder_cost = self.decoder.cost()
        decoders = decoder_cost.parallel(decoder_cost).parallel(decoder_cost)
        total = decoders.serial(self.fp_mac.cost()).serial(self.encoder.cost())
        variant = "opt" if self.optimized_codec else "orig"
        return ComponentCost(f"posit-mac-{variant}({self.config})", total.area_ge, total.delay_levels)

    def codec_delay_fraction(self) -> float:
        """Fraction of the total combinational delay spent in decoder + encoder.

        The paper motivates its codec optimization with the observation that
        the encoder plus decoder of [6] account for about 40 % of the posit
        MAC delay; this method lets the benchmarks verify that the model
        reproduces that proportion for the original architecture.
        """
        decoder_delay = self.decoder.cost().delay_levels
        encoder_delay = self.encoder.cost().delay_levels
        total = self.cost().delay_levels
        return (decoder_delay + encoder_delay) / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        variant = "optimized" if self.optimized_codec else "original"
        return f"PositMAC({self.config}, codec={variant})"


class FP32MAC:
    """IEEE single-precision MAC baseline (the FP32 row of Table V)."""

    def __init__(self):
        self.fp_mac = FPMac(FP32_SPEC)

    def mac(self, a: float, b: float, c: float) -> float:
        """Compute ``a * b + c`` with single-precision mantissa rounding."""
        return self.fp_mac.mac(a, b, c)

    def cost(self) -> ComponentCost:
        """Gate-level cost of the FP32 MAC datapath."""
        cost = self.fp_mac.cost()
        return ComponentCost("fp32-mac", cost.area_ge, cost.delay_levels)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "FP32MAC()"


class FloatMAC:
    """MAC unit for an arbitrary reduced-precision float format.

    The datapath is the same FMA structure the FP32 baseline uses, sized to
    the format's exponent/mantissa widths — the FP16/FP8 rows that sit next
    to posit in an energy comparison.
    """

    def __init__(self, fmt: FloatFormat):
        self.format = fmt
        self.fp_mac = FPMac(FPFormatSpec(exponent_bits=fmt.exponent_bits,
                                         mantissa_bits=fmt.mantissa_bits,
                                         name=fmt.name or fmt.spec()))

    def mac(self, a: float, b: float, c: float) -> float:
        """Compute ``a * b + c`` with the format's mantissa rounding."""
        return self.fp_mac.mac(a, b, c)

    def cost(self) -> ComponentCost:
        """Gate-level cost of the sized FMA datapath."""
        cost = self.fp_mac.cost()
        return ComponentCost(f"float-mac({self.format.spec()})",
                             cost.area_ge, cost.delay_levels)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FloatMAC({self.format.spec()})"


class FixedPointMAC:
    """MAC unit for a signed fixed-point format (Gupta et al. [7] style).

    The datapath is an integer array multiplier over the full word producing
    an exact double-width product, a double-width accumulate adder, and a
    truncating realignment back to the word (free — wiring).  This is the
    structure whose small area/energy makes fixed point attractive despite
    its narrow dynamic range.
    """

    def __init__(self, fmt: FixedPointFormat):
        self.format = fmt

    def mac(self, a: float, b: float, c: float) -> float:
        """Compute ``a * b + c`` on the format's grid (exact internal product)."""
        quantize = self.format.quantize
        product = float(quantize(a)) * float(quantize(b))
        return float(quantize(product + float(quantize(c))))

    def cost(self) -> ComponentCost:
        """Gate-level cost: word multiplier + double-width accumulator."""
        bits = self.format.bits
        total = multiplier(bits, bits).serial(adder(2 * bits))
        return ComponentCost(f"fixed-mac({self.format.spec()})",
                             total.area_ge, total.delay_levels)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FixedPointMAC({self.format.spec()})"


def mac_unit_for_format(fmt: Optional[NumberFormat]
                        ) -> Union[PositMAC, FP32MAC, FloatMAC, FixedPointMAC]:
    """MAC unit modelling ``fmt`` (``None`` means the FP32 baseline).

    This is the dispatch point that lets the accelerator energy model price
    *any* :class:`~repro.formats.NumberFormat` — posit through the Fig. 4
    codec datapath, floats through a width-sized FMA, fixed point through an
    integer MAC — instead of silently treating non-posit formats as FP32.
    """
    if fmt is None:
        return FP32MAC()
    if isinstance(fmt, PositConfig):
        return PositMAC(fmt)
    if isinstance(fmt, FloatFormat):
        if fmt.exponent_bits == FP32_SPEC.exponent_bits and \
                fmt.mantissa_bits == FP32_SPEC.mantissa_bits:
            return FP32MAC()
        return FloatMAC(fmt)
    if isinstance(fmt, FixedPointFormat):
        return FixedPointMAC(fmt)
    raise TypeError(
        f"no MAC cost model for format {fmt!r} "
        f"({type(fmt).__name__}); known families: posit, float, fixed point"
    )
