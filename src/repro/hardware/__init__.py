"""Hardware architecture models: posit codecs, MAC units, synthesis, energy.

Functional + gate-level cost models of the designs in §IV of the paper
(Figs. 4-6), the analytical synthesis used to regenerate Tables IV and V, and
the system-level memory/energy accounting behind the §V communication-saving
claim.
"""

from .accelerator import (
    AcceleratorConfig,
    LayerWorkload,
    accelerator_comparison,
    count_training_macs,
    inference_step_report,
    training_step_report,
)
from .components import (
    ComponentCost,
    absolute_value,
    adder,
    barrel_shifter,
    comparator,
    incrementer,
    inverter_row,
    lod,
    lzd,
    multiplier,
    mux2,
    register,
    subtractor,
    wire,
    xor_row,
)
from .decoder import DecodedPosit, PositDecoder
from .encoder import PositEncoder
from .energy import (
    MemoryCosts,
    TrafficReport,
    communication_saving,
    format_bits,
    model_size_bytes,
    training_step_traffic,
)
from .fpmac import FP32_SPEC, FPFormatSpec, FPMac, internal_format_for_posit
from .gates import GENERIC_28NM, GateLibrary
from .mac import FP32MAC, FixedPointMAC, FloatMAC, PositMAC, mac_unit_for_format
from .synthesis import (
    Calibration,
    SynthesisResult,
    calibrate_to_reference,
    codec_optimization_report,
    synthesize,
    table4_report,
    table5_report,
)

__all__ = [
    "AcceleratorConfig",
    "LayerWorkload",
    "count_training_macs",
    "training_step_report",
    "inference_step_report",
    "accelerator_comparison",
    "GateLibrary",
    "GENERIC_28NM",
    "ComponentCost",
    "lzd",
    "lod",
    "barrel_shifter",
    "adder",
    "incrementer",
    "subtractor",
    "absolute_value",
    "comparator",
    "multiplier",
    "mux2",
    "register",
    "wire",
    "xor_row",
    "inverter_row",
    "PositDecoder",
    "DecodedPosit",
    "PositEncoder",
    "FPMac",
    "FPFormatSpec",
    "FP32_SPEC",
    "internal_format_for_posit",
    "PositMAC",
    "FP32MAC",
    "FloatMAC",
    "FixedPointMAC",
    "mac_unit_for_format",
    "Calibration",
    "SynthesisResult",
    "synthesize",
    "calibrate_to_reference",
    "table4_report",
    "table5_report",
    "codec_optimization_report",
    "MemoryCosts",
    "TrafficReport",
    "model_size_bytes",
    "training_step_traffic",
    "communication_saving",
    "format_bits",
]
