"""Posit decoder architectures (Fig. 5): original and optimized.

The decoder extracts the sign, the *effective exponent* (regime value
combined with the exponent field), and the mantissa from a posit word so
that the downstream FP MAC can operate on a float-like representation.

Structure (Fig. 5a, the original design from Zhang et al. [6]):

1. an LOD (negative regime) and an LZD (positive regime) run in parallel on
   the word body to find the regime run length;
2. the word is left-shifted by the regime width, which is ``r`` or ``r + 1``
   depending on the regime sign — the ``+ 1`` *adder* sits before the left
   shifter and is on the critical path;
3. the regime value and the exponent field are packed into the effective
   exponent.

The optimization (Fig. 5b) removes the adder from the critical path by
duplicating the left shifter: one copy shifts by ``r``, the other by ``r``
followed by a constant ``<< 1``, and a mux selects between them.  The
functional behaviour is identical; only the structural cost changes (a little
more area, meaningfully less delay).

Both variants share the same functional model (:meth:`PositDecoder.decode`),
which is validated against the bit-exact reference in
:mod:`repro.posit.scalar`; the difference is captured by :meth:`cost`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..posit import PositConfig
from ..posit.scalar import decode_fields
from .components import (
    ComponentCost,
    barrel_shifter,
    incrementer,
    lod,
    lzd,
    mux2,
    wire,
    xor_row,
)

__all__ = ["DecodedPosit", "PositDecoder"]


@dataclass(frozen=True)
class DecodedPosit:
    """Output of the posit decoder: a sign/exponent/mantissa triple.

    ``effective_exponent`` is ``k * 2**es + e`` (the paper's
    ``effective_exp``); ``mantissa`` is the fraction in ``[0, 1)`` and
    ``mantissa_bits`` the number of physical fraction bits it was read from.
    ``is_zero`` / ``is_nar`` flag the two special patterns.
    """

    sign: int
    effective_exponent: int
    mantissa: float
    mantissa_bits: int
    is_zero: bool = False
    is_nar: bool = False

    @property
    def value(self) -> float:
        """Real value represented by the decoded fields."""
        if self.is_zero:
            return 0.0
        if self.is_nar:
            return float("nan")
        magnitude = (2.0**self.effective_exponent) * (1.0 + self.mantissa)
        return -magnitude if self.sign else magnitude


class PositDecoder:
    """Posit-to-float decoder with a structural cost model.

    Parameters
    ----------
    config:
        The posit format being decoded.
    optimized:
        ``False`` models the original architecture of [6] (Fig. 5a);
        ``True`` models the paper's optimized architecture (Fig. 5b).
    """

    def __init__(self, config: PositConfig, optimized: bool = True):
        self.config = config
        self.optimized = optimized

    # ------------------------------------------------------------------ #
    # Functional model (identical for both variants)
    # ------------------------------------------------------------------ #
    def decode(self, bits: int) -> DecodedPosit:
        """Decode a posit bit pattern into sign / effective exponent / mantissa."""
        fields = decode_fields(bits, self.config)
        if fields.is_zero:
            return DecodedPosit(0, 0, 0.0, 0, is_zero=True)
        if fields.is_nar:
            return DecodedPosit(1, 0, 0.0, 0, is_nar=True)
        effective = fields.regime * (1 << self.config.es) + fields.exponent
        return DecodedPosit(
            sign=fields.sign,
            effective_exponent=effective,
            mantissa=fields.fraction,
            mantissa_bits=fields.fraction_width,
        )

    # ------------------------------------------------------------------ #
    # Structural cost model
    # ------------------------------------------------------------------ #
    def cost(self) -> ComponentCost:
        """Gate-level cost of this decoder variant."""
        n = self.config.n
        body = n - 1

        # Two's-complement of negative inputs before field extraction.
        sign_handling = xor_row(body).serial(incrementer(body), name="2s-complement")

        # Regime detection: LOD and LZD run in parallel, a mux picks one.
        regime_detect = lod(body).parallel(lzd(body)).serial(mux2(self._regime_width_bits()))

        shifter = barrel_shifter(body, max_shift=body)
        if self.optimized:
            # Fig. 5b: two shifters in parallel (shift by r and by r with a
            # constant <<1 appended), mux afterwards.  The +1 incrementer is
            # gone from the critical path.
            shift_path = shifter.parallel(shifter.serial(wire("<<1"))).serial(mux2(body))
        else:
            # Fig. 5a: +1 adder feeds the single shifter.
            shift_path = incrementer(self._regime_width_bits()).serial(shifter).serial(mux2(body))

        # Packing regime and exponent field into the effective exponent.
        packing = ComponentCost("exp-pack", area_ge=4.0 * self._exponent_width_bits(), delay_levels=2.0)

        total = sign_handling.serial(regime_detect).serial(shift_path).serial(packing)
        variant = "opt" if self.optimized else "orig"
        return ComponentCost(f"posit-decoder-{variant}({self.config})", total.area_ge, total.delay_levels)

    def _regime_width_bits(self) -> int:
        """Bits needed to represent the regime run length."""
        import math

        return max(2, math.ceil(math.log2(self.config.n)) + 1)

    def _exponent_width_bits(self) -> int:
        """Bits of the effective exponent (regime scale + exponent field + sign)."""
        import math

        return self.config.es + max(1, math.ceil(math.log2(self.config.n))) + 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        variant = "optimized" if self.optimized else "original"
        return f"PositDecoder({self.config}, {variant})"
