"""First-order model of a posit DNN-training accelerator (§V outlook).

The paper concludes that the posit MAC "will benefit future low-power DNN
training accelerators" and lists building such an accelerator as future work.
This module provides the first-order analysis that statement rests on: it
counts the multiply-accumulate operations and data movement of a training
step for any model built from :mod:`repro.nn` layers, and combines those
counts with the per-MAC synthesis results (Table V) and the memory-energy
constants to estimate the energy per training step of a PE-array accelerator
built from FP32 MACs versus posit MACs.

The model is deliberately simple — a weight-stationary PE array with perfect
utilization and a single DRAM level — because the quantity of interest is the
*ratio* between the FP32 and posit configurations, which is dominated by the
per-MAC energy and the word width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.policy import QuantizationPolicy
from ..formats import NumberFormat
from ..nn import BatchNorm2d, Conv2d, Linear, Module
from .energy import DRAM_PJ_PER_BYTE, format_bits, model_size_bytes
from .gates import GENERIC_28NM, GateLibrary
from .mac import mac_unit_for_format
from .synthesis import TABLE5_CLOCK_MHZ, Calibration, calibrate_to_reference, synthesize

__all__ = ["LayerWorkload", "AcceleratorConfig", "count_training_macs",
           "training_step_report", "inference_step_report",
           "accelerator_comparison"]


@dataclass(frozen=True)
class LayerWorkload:
    """MAC and parameter counts of one layer for one training sample."""

    name: str
    kind: str
    forward_macs: float
    backward_macs: float
    parameters: int

    @property
    def total_macs(self) -> float:
        """Forward plus backward (input-gradient and weight-gradient) MACs."""
        return self.forward_macs + self.backward_macs


@dataclass(frozen=True)
class AcceleratorConfig:
    """A PE-array training accelerator configuration."""

    num_pes: int = 256
    clock_mhz: float = TABLE5_CLOCK_MHZ
    utilization: float = 0.75
    library: GateLibrary = GENERIC_28NM

    @property
    def macs_per_second(self) -> float:
        """Peak sustained MAC throughput."""
        return self.num_pes * self.clock_mhz * 1e6 * self.utilization


def count_training_macs(model: Module, input_hw: tuple[int, int] = (32, 32)) -> list[LayerWorkload]:
    """Count per-layer MACs of one training sample (forward + backward).

    Convolutions dominate; the backward pass costs roughly twice the forward
    pass (one convolution for the input gradient, one for the weight
    gradient).  Spatial sizes are propagated from ``input_hw`` through the
    strides of the conv/pool layers in declaration order, which is exact for
    the sequential ResNet/LeNet topologies in :mod:`repro.models`.
    """
    height, width = input_hw
    workloads: list[LayerWorkload] = []
    for name, module in model.named_modules():
        if isinstance(module, Conv2d):
            stride = module.stride if isinstance(module.stride, tuple) else (module.stride, module.stride)
            padding = module.padding if isinstance(module.padding, tuple) else (module.padding, module.padding)
            kh, kw = module.kernel_size
            out_h = (height + 2 * padding[0] - kh) // stride[0] + 1
            out_w = (width + 2 * padding[1] - kw) // stride[1] + 1
            forward = out_h * out_w * module.out_channels * module.in_channels * kh * kw
            params = module.out_channels * module.in_channels * kh * kw
            workloads.append(LayerWorkload(name, "conv", forward, 2.0 * forward, params))
            # Only the main stem path advances the spatial size; downsample
            # projections see the same input and produce the same output size.
            if "downsample" not in name:
                height, width = out_h, out_w
        elif isinstance(module, Linear):
            forward = module.in_features * module.out_features
            params = module.in_features * module.out_features
            workloads.append(LayerWorkload(name, "linear", forward, 2.0 * forward, params))
        elif isinstance(module, BatchNorm2d):
            # BN is element-wise: a handful of ops per activation, negligible
            # next to the convolutions but included for completeness.
            elements = module.num_features * height * width
            workloads.append(LayerWorkload(name, "batchnorm", 2.0 * elements,
                                           4.0 * elements, 2 * module.num_features))
    return workloads


def _per_mac_energy_pj(fmt: Optional[NumberFormat], calibration: Calibration,
                       library: GateLibrary, clock_mhz: float) -> float:
    """Energy per MAC operation in picojoules, from the synthesis model.

    Accepts any :class:`~repro.formats.NumberFormat` (or ``None`` for the
    FP32 baseline) via :func:`~repro.hardware.mac.mac_unit_for_format` —
    posit, reduced float, and fixed point each get their own datapath cost
    instead of being silently priced as FP32.
    """
    unit = mac_unit_for_format(fmt)
    result = synthesize(unit.cost(), library, clock_mhz, calibration)
    # power (mW) / frequency (MHz) = nJ per cycle; one MAC per cycle.
    return result.power_mw / clock_mhz * 1e3


def training_step_report(model: Module, policy: Optional[QuantizationPolicy],
                         batch_size: int = 32, input_hw: tuple[int, int] = (32, 32),
                         accelerator: Optional[AcceleratorConfig] = None,
                         calibration: Optional[Calibration] = None,
                         label: str = "") -> dict:
    """Estimate time and energy of one training step on the accelerator.

    ``policy=None`` models an FP32 accelerator (FP32 MACs, 32-bit storage);
    a posit policy selects the per-layer MAC format from its forward formats.
    """
    accelerator = accelerator or AcceleratorConfig()
    calibration = calibration or calibrate_to_reference(accelerator.library)
    workloads = count_training_macs(model, input_hw)
    total_macs = sum(w.total_macs for w in workloads) * batch_size

    # Compute energy: weight each layer's MACs by its MAC format's energy.
    compute_energy_pj = 0.0
    for workload in workloads:
        module = dict(model.named_modules())[workload.name]
        formats = policy.formats_for(module) if policy is not None else None
        fmt = formats.weight if formats is not None else None
        energy = _per_mac_energy_pj(fmt, calibration, accelerator.library,
                                    accelerator.clock_mhz)
        compute_energy_pj += workload.total_macs * batch_size * energy

    # Memory energy: weights + gradients moved once per step at their storage width.
    memory = model_size_bytes(model, policy)
    memory_bytes = (2 * memory.parameter_bytes + 2 * memory.gradient_bytes)
    memory_energy_pj = memory_bytes * DRAM_PJ_PER_BYTE

    return {
        "label": label or ("fp32" if policy is None else "posit"),
        "total_macs": total_macs,
        "step_seconds": total_macs / accelerator.macs_per_second,
        "compute_energy_uj": compute_energy_pj * 1e-6,
        "memory_energy_uj": memory_energy_pj * 1e-6,
        "total_energy_uj": (compute_energy_pj + memory_energy_pj) * 1e-6,
    }


def inference_step_report(model: Module, fmt: Optional[NumberFormat] = None,
                          batch_size: int = 1, input_hw: tuple[int, int] = (32, 32),
                          accelerator: Optional[AcceleratorConfig] = None,
                          calibration: Optional[Calibration] = None) -> dict:
    """Estimate time and energy of one *inference* batch on the accelerator.

    The forward-only counterpart of :func:`training_step_report`, used by the
    serving engine (:mod:`repro.serve`) to price each coalesced batch: only
    the forward MACs run, priced at ``fmt``'s MAC datapath
    (:func:`~repro.hardware.mac.mac_unit_for_format`; ``None`` means FP32),
    and the memory term reads the packed weights once per batch at ``fmt``'s
    storage width — the §V deployment claim that an 8-bit posit model moves
    4x fewer weight bytes than FP32.
    """
    accelerator = accelerator or AcceleratorConfig()
    calibration = calibration or calibrate_to_reference(accelerator.library)
    workloads = count_training_macs(model, input_hw)
    forward_macs = sum(w.forward_macs for w in workloads) * batch_size
    energy_per_mac = _per_mac_energy_pj(fmt, calibration, accelerator.library,
                                        accelerator.clock_mhz)
    compute_energy_pj = forward_macs * energy_per_mac

    parameter_scalars = sum(p.size for p in model.parameters())
    weight_bytes = parameter_scalars * format_bits(fmt) / 8.0
    memory_energy_pj = weight_bytes * DRAM_PJ_PER_BYTE

    return {
        "label": "fp32" if fmt is None else fmt.spec(),
        "batch_size": batch_size,
        "forward_macs": forward_macs,
        "step_seconds": forward_macs / accelerator.macs_per_second,
        "weight_bytes": weight_bytes,
        "compute_energy_uj": compute_energy_pj * 1e-6,
        "memory_energy_uj": memory_energy_pj * 1e-6,
        "total_energy_uj": (compute_energy_pj + memory_energy_pj) * 1e-6,
    }


def accelerator_comparison(model: Module, policy: QuantizationPolicy,
                           batch_size: int = 32, input_hw: tuple[int, int] = (32, 32),
                           accelerator: Optional[AcceleratorConfig] = None) -> dict:
    """FP32 accelerator vs posit accelerator for one training step of ``model``."""
    accelerator = accelerator or AcceleratorConfig()
    calibration = calibrate_to_reference(accelerator.library)
    fp32 = training_step_report(model, None, batch_size, input_hw, accelerator,
                                calibration, label="fp32")
    posit = training_step_report(model, policy, batch_size, input_hw, accelerator,
                                 calibration, label="posit")
    return {
        "fp32": fp32,
        "posit": posit,
        "compute_energy_ratio": fp32["compute_energy_uj"] / posit["compute_energy_uj"],
        "memory_energy_ratio": fp32["memory_energy_uj"] / posit["memory_energy_uj"],
        "total_energy_ratio": fp32["total_energy_uj"] / posit["total_energy_uj"],
    }
