"""Gate-level cost constants for the analytical 28 nm synthesis model.

The paper synthesizes its designs with Design Compiler under TSMC 28 nm and
reports delay/power/area (Tables IV and V).  An ASIC flow is not available in
this reproduction, so :mod:`repro.hardware` instead *models* each design as a
tree of structural primitives (leading-zero detectors, barrel shifters,
adders, multipliers, multiplexers) whose costs are expressed in
technology-independent units:

* area in **gate equivalents** (GE, NAND2-equivalent gates),
* delay in **logic levels** (NAND2-equivalent delays),
* dynamic power proportional to switched area and clock frequency.

:class:`GateLibrary` maps those units to physical numbers for a generic 28 nm
library.  The absolute constants are deliberately round figures; the
benchmark harness additionally *calibrates* a global area/power scale against
the paper's published FP32 MAC row (Table V) so that the remaining rows are
structural predictions on the same scale — see
:func:`repro.hardware.synthesis.calibrate_to_reference`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GateLibrary", "GENERIC_28NM"]


@dataclass(frozen=True)
class GateLibrary:
    """Physical constants of the modelled standard-cell library.

    Attributes
    ----------
    name:
        Human-readable library name.
    gate_area_um2:
        Area of one NAND2-equivalent gate in square micrometres.
    gate_delay_ns:
        Propagation delay of one NAND2-equivalent logic level in nanoseconds
        (includes average local wire delay).
    dynamic_power_mw_per_kge_ghz:
        Dynamic power in milliwatts per 1000 gate equivalents switching at
        1 GHz with the library's nominal activity factor.
    leakage_mw_per_kge:
        Static leakage power per 1000 gate equivalents.
    """

    name: str = "generic-28nm"
    gate_area_um2: float = 0.49
    gate_delay_ns: float = 0.018
    dynamic_power_mw_per_kge_ghz: float = 0.30
    leakage_mw_per_kge: float = 0.010

    def area_um2(self, gate_equivalents: float) -> float:
        """Convert a gate-equivalent count to area in µm²."""
        return gate_equivalents * self.gate_area_um2

    def delay_ns(self, logic_levels: float) -> float:
        """Convert a logic-level count to delay in nanoseconds."""
        return logic_levels * self.gate_delay_ns

    def power_mw(self, gate_equivalents: float, clock_mhz: float,
                 activity: float = 1.0) -> float:
        """Total (dynamic + leakage) power in mW at the given clock.

        ``activity`` scales the dynamic component relative to the library's
        nominal switching activity.
        """
        kge = gate_equivalents / 1000.0
        dynamic = self.dynamic_power_mw_per_kge_ghz * kge * (clock_mhz / 1000.0) * activity
        leakage = self.leakage_mw_per_kge * kge
        return dynamic + leakage


#: Default library used throughout the hardware model.
GENERIC_28NM = GateLibrary()
