"""Internal floating-point MAC unit model (the core of Fig. 4).

The posit MAC of the paper (following Zhang et al. [6]) converts its posit
operands to an internal float representation, performs a conventional
floating-point multiply-accumulate, and converts the result back to posit.
This module models that internal FP MAC — both functionally and structurally
— for an arbitrary (exponent bits, mantissa bits) internal format, and
provides the format sizing rule for a given posit configuration.

The FP32 MAC baseline of Table V is the same structure instantiated with the
IEEE single-precision field widths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..posit import PositConfig
from .components import (
    ComponentCost,
    adder,
    barrel_shifter,
    lzd,
    multiplier,
    mux2,
    xor_row,
)

__all__ = ["FPFormatSpec", "internal_format_for_posit", "FP32_SPEC", "FPMac"]


@dataclass(frozen=True)
class FPFormatSpec:
    """Field widths of a floating-point datapath.

    Attributes
    ----------
    exponent_bits:
        Width of the exponent datapath.
    mantissa_bits:
        Width of the stored mantissa (excluding the hidden bit).
    name:
        Label used in reports.
    """

    exponent_bits: int
    mantissa_bits: int
    name: str = ""

    @property
    def significand_bits(self) -> int:
        """Mantissa width including the hidden bit."""
        return self.mantissa_bits + 1

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name or f"fp(e{self.exponent_bits}, m{self.mantissa_bits})"


#: IEEE single precision, the baseline of Table V.
FP32_SPEC = FPFormatSpec(exponent_bits=8, mantissa_bits=23, name="FP32")


def internal_format_for_posit(config: PositConfig) -> FPFormatSpec:
    """Size the internal float datapath needed to hold any decoded posit.

    A decoded ``(n, es)`` posit has an effective exponent in
    ``[-(n-2)*2**es, (n-2)*2**es]`` — requiring
    ``ceil(log2((n-2)*2**es)) + 2`` exponent bits including sign and guard —
    and at most ``n - es - 3`` fraction bits.
    """
    max_exp = config.max_exponent
    exponent_bits = max(2, math.ceil(math.log2(max(max_exp, 1))) + 2)
    mantissa_bits = max(1, config.n - config.es - 3)
    return FPFormatSpec(exponent_bits=exponent_bits, mantissa_bits=mantissa_bits,
                        name=f"internal({config})")


class FPMac:
    """Floating-point multiply-accumulate unit (functional + structural model).

    The functional model computes ``a * b + c`` in double precision and then
    truncates the result's mantissa to the datapath width, which captures the
    only rounding the real unit would introduce.  The structural model
    composes the standard FMA datapath: mantissa multiplier, exponent adder,
    alignment shifter for the addend, wide significand adder, normalization
    (LZD + shifter), and rounding increment.
    """

    def __init__(self, spec: FPFormatSpec):
        self.spec = spec

    # ------------------------------------------------------------------ #
    # Functional model
    # ------------------------------------------------------------------ #
    def mac(self, a: float, b: float, c: float) -> float:
        """Compute ``a * b + c`` with the datapath's mantissa precision."""
        exact = a * b + c
        return self._round_to_mantissa(exact)

    def _round_to_mantissa(self, value: float) -> float:
        if value == 0.0 or not math.isfinite(value):
            return value
        mantissa, exponent = math.frexp(value)  # |mantissa| in [0.5, 1)
        scale = 2.0 ** (self.spec.mantissa_bits + 1)
        mantissa = math.trunc(mantissa * scale) / scale  # truncate toward zero
        return math.ldexp(mantissa, exponent)

    # ------------------------------------------------------------------ #
    # Structural cost model
    # ------------------------------------------------------------------ #
    def cost(self) -> ComponentCost:
        """Gate-level cost of the FMA datapath."""
        significand = self.spec.significand_bits
        exponent = self.spec.exponent_bits
        product_width = 2 * significand
        accumulate_width = product_width + 2  # guard bits

        mantissa_mult = multiplier(significand, significand)
        exponent_add = adder(exponent)
        sign_logic = xor_row(1)
        # Multiplier, exponent adder and sign logic operate in parallel.
        multiply_stage = mantissa_mult.parallel(exponent_add).parallel(sign_logic)

        align_shifter = barrel_shifter(accumulate_width, max_shift=accumulate_width - 1)
        significand_add = adder(accumulate_width)
        normalize = lzd(accumulate_width).serial(
            barrel_shifter(accumulate_width, max_shift=accumulate_width - 1)
        )
        rounding = adder(significand).serial(mux2(significand))
        exponent_adjust = adder(exponent)

        total = (
            multiply_stage
            .serial(align_shifter)
            .serial(significand_add)
            .serial(normalize)
            .serial(rounding.parallel(exponent_adjust))
        )
        return ComponentCost(f"fp-mac({self.spec})", total.area_ge, total.delay_levels)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FPMac({self.spec})"
