"""Fixed-point quantization baseline (Gupta et al. [7]).

The earliest limited-precision training work used fixed-point formats with
stochastic rounding.  The paper cites it as the class of "aggressive
approximation" methods that lose too much information on complex tasks, and
the ablation benchmarks use it as the weakest baseline.

A fixed-point format ``Q(integer_bits, fraction_bits)`` represents values in
``[-2**integer_bits, 2**integer_bits - 2**-fraction_bits]`` with a uniform
step of ``2**-fraction_bits``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["FixedPointFormat", "FixedPointQuantizer", "fixed_point_quantize"]


@dataclass(frozen=True)
class FixedPointFormat:
    """Signed fixed-point format with ``integer_bits``.``fraction_bits`` split.

    The sign bit is implicit (two's complement), so the total storage width
    is ``1 + integer_bits + fraction_bits``.
    """

    integer_bits: int
    fraction_bits: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.integer_bits < 0 or self.fraction_bits < 0:
            raise ValueError("field widths must be non-negative")
        if self.integer_bits + self.fraction_bits == 0:
            raise ValueError("format must have at least one magnitude bit")

    @property
    def bits(self) -> int:
        """Total storage width including the sign bit."""
        return 1 + self.integer_bits + self.fraction_bits

    @property
    def step(self) -> float:
        """Quantization step (value of one LSB)."""
        return 2.0 ** (-self.fraction_bits)

    @property
    def max_value(self) -> float:
        """Largest representable value."""
        return 2.0**self.integer_bits - self.step

    @property
    def min_value(self) -> float:
        """Smallest (most negative) representable value."""
        return -(2.0**self.integer_bits)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name or f"Q{self.integer_bits}.{self.fraction_bits}"

    def make_quantizer(self, rounding: str = "nearest",
                       rng: Optional[np.random.Generator] = None) -> "FixedPointQuantizer":
        """Build a quantizer for this format (hook used by QuantizationPolicy)."""
        mode = "stochastic" if rounding == "stochastic" else "nearest"
        return FixedPointQuantizer(self, rounding=mode, rng=rng)


def fixed_point_quantize(x, fmt: FixedPointFormat, rounding: str = "nearest",
                         rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Snap ``x`` onto the fixed-point grid of ``fmt`` with saturation.

    ``rounding`` is ``"nearest"`` (round half away from zero, the common
    hardware choice) or ``"stochastic"`` (Gupta et al.'s method).
    """
    arr = np.asarray(x, dtype=np.float64)
    scaled = arr / fmt.step
    if rounding == "nearest":
        quantized = np.round(scaled)
    elif rounding == "stochastic":
        if rng is None:
            rng = np.random.default_rng()
        lower = np.floor(scaled)
        quantized = lower + (rng.random(arr.shape) < (scaled - lower))
    else:
        raise ValueError(f"unknown rounding mode {rounding!r}")
    values = quantized * fmt.step
    return np.clip(values, fmt.min_value, fmt.max_value)


class FixedPointQuantizer:
    """Callable wrapper around :func:`fixed_point_quantize`."""

    def __init__(self, fmt: FixedPointFormat, rounding: str = "nearest",
                 rng: Optional[np.random.Generator] = None):
        self.fmt = fmt
        self.rounding = rounding
        self.rng = rng

    def __call__(self, x) -> np.ndarray:
        """Quantize ``x`` to the bound fixed-point format."""
        return fixed_point_quantize(x, self.fmt, rounding=self.rounding, rng=self.rng)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FixedPointQuantizer({self.fmt}, rounding={self.rounding!r})"
