"""Deprecated compatibility shim: fixed point lives in :mod:`repro.formats`.

:class:`FixedPointFormat` is a first-class
:class:`~repro.formats.NumberFormat` living in
:mod:`repro.formats.fixedpoint`, so it participates in quantization
policies, the format registry (``"fixed(16,13)"``), and the cached
quantizer factory exactly like posit and float formats.  Importing this
module emits a :class:`DeprecationWarning`; use
``from repro.formats import FixedPointFormat`` instead.  The shim will be
removed after the deprecation window promised in ROADMAP.md.
"""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.baselines.fixedpoint is deprecated; import FixedPointFormat and "
    "friends from repro.formats instead",
    DeprecationWarning,
    stacklevel=2,
)

from ..formats.fixedpoint import (  # noqa: E402 - the warning must fire first
    FixedPointFormat,
    FixedPointQuantizer,
    fixed_point_from_bits,
    fixed_point_quantize,
    fixed_point_to_bits,
)

__all__ = [
    "FixedPointFormat",
    "FixedPointQuantizer",
    "fixed_point_quantize",
    "fixed_point_to_bits",
    "fixed_point_from_bits",
]
