"""Compatibility shim: fixed point moved into the core format type system.

:class:`FixedPointFormat` is now a first-class
:class:`~repro.formats.NumberFormat` living in
:mod:`repro.formats.fixedpoint`, so it participates in quantization
policies, the format registry (``"fixed(16,13)"``), and the cached
quantizer factory exactly like posit and float formats.  This module
re-exports the public names for existing imports; prefer
``from repro.formats import FixedPointFormat`` in new code.
"""

from __future__ import annotations

from ..formats.fixedpoint import (
    FixedPointFormat,
    FixedPointQuantizer,
    fixed_point_from_bits,
    fixed_point_quantize,
    fixed_point_to_bits,
)

__all__ = [
    "FixedPointFormat",
    "FixedPointQuantizer",
    "fixed_point_quantize",
    "fixed_point_to_bits",
    "fixed_point_from_bits",
]
