"""Baseline quantized-training schemes the paper positions posit against."""

from .fixedpoint import FixedPointFormat, FixedPointQuantizer, fixed_point_quantize
from .lowbit_float import fixed_point_policy, fp8_policy, fp16_policy, make_loss_scaler

__all__ = [
    "FixedPointFormat",
    "FixedPointQuantizer",
    "fixed_point_quantize",
    "fp16_policy",
    "fp8_policy",
    "fixed_point_policy",
    "make_loss_scaler",
]
