"""Baseline quantized-training schemes the paper positions posit against.

The fixed-point *format* itself now lives in :mod:`repro.formats` (it is a
first-class :class:`~repro.formats.NumberFormat`); this package keeps the
baseline *recipes* — the policy builders that express each prior-work
training scheme — plus compatibility re-exports of the fixed-point names.
"""

from ..formats.fixedpoint import FixedPointFormat, FixedPointQuantizer, fixed_point_quantize
from .lowbit_float import fixed_point_policy, fp8_policy, fp16_policy, make_loss_scaler

__all__ = [
    "FixedPointFormat",
    "FixedPointQuantizer",
    "fixed_point_quantize",
    "fp16_policy",
    "fp8_policy",
    "fixed_point_policy",
    "make_loss_scaler",
]
