"""Reduced-precision floating-point training baselines ([9], [10]).

Builds the quantization policies corresponding to the mixed-precision float
recipes the paper compares against conceptually:

* **FP16 mixed precision** (Micikevicius et al. [9]): FP16 for forward and
  backward tensors, FP32 master weights/updates, optional loss scaling.
* **FP8 training** (Wang et al. [10]): FP8 for the computation tensors and
  FP16 for the backward/update path.

These are expressed as :class:`~repro.core.policy.QuantizationPolicy`
instances so that the exact same trainer runs them, and a convenience
builder pairs them with a :class:`~repro.nn.loss.LossScaler`.
"""

from __future__ import annotations

from ..core.policy import QuantizationPolicy, RoleFormats
from ..formats import FixedPointFormat
from ..nn import LossScaler
from ..posit import FP8_E4M3, FP8_E5M2, FP16, FloatFormat

__all__ = [
    "fp16_policy",
    "fp8_policy",
    "fixed_point_policy",
    "make_loss_scaler",
]


def fp16_policy(keep_master_weights: bool = True, **overrides) -> QuantizationPolicy:
    """FP16 mixed-precision policy in the style of [9].

    With ``keep_master_weights=True`` the stored weights and the weight
    gradients stay in FP32 (quantization only applies to the forward
    activations and the backward errors), which is the master-copy scheme of
    the original mixed-precision recipe.
    """
    if keep_master_weights:
        formats = RoleFormats(weight=FP16, activation=FP16, error=FP16, weight_grad=None)
    else:
        formats = RoleFormats(weight=FP16, activation=FP16, error=FP16, weight_grad=FP16)
    overrides.setdefault("use_scaling", False)
    return QuantizationPolicy(conv_formats=formats, bn_formats=formats,
                              linear_formats=formats, **overrides)


def fp8_policy(forward_format: FloatFormat = FP8_E4M3,
               backward_format: FloatFormat = FP8_E5M2, **overrides) -> QuantizationPolicy:
    """FP8 training policy in the style of [10]: FP8 compute, FP16 update path."""
    formats = RoleFormats(
        weight=forward_format,
        activation=forward_format,
        error=backward_format,
        weight_grad=FP16,
    )
    overrides.setdefault("use_scaling", False)
    return QuantizationPolicy(conv_formats=formats, bn_formats=formats,
                              linear_formats=formats, **overrides)


def fixed_point_policy(integer_bits: int = 2, fraction_bits: int = 13,
                       **overrides) -> QuantizationPolicy:
    """Fixed-point policy in the style of [7] (default Q2.13, a 16-bit word)."""
    fmt = FixedPointFormat(integer_bits, fraction_bits)
    formats = RoleFormats(weight=fmt, activation=fmt, error=fmt, weight_grad=fmt)
    overrides.setdefault("use_scaling", False)
    overrides.setdefault("rounding", "stochastic")
    return QuantizationPolicy(conv_formats=formats, bn_formats=formats,
                              linear_formats=formats, **overrides)


def make_loss_scaler(policy: QuantizationPolicy, scale: float = 1024.0,
                     dynamic: bool = True) -> LossScaler:
    """Build the loss scaler that the float baselines train with.

    Posit policies do not need one (the tapered-precision format covers the
    gradient range), so callers typically pass the result only to baseline
    trainer constructions.
    """
    del policy  # the scaler is format-independent; parameter kept for symmetry
    return LossScaler(scale=scale, dynamic=dynamic)
