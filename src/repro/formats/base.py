"""The :class:`NumberFormat` abstract interface.

Every number format in the library — :class:`~repro.posit.PositConfig`,
:class:`~repro.posit.FloatFormat`, and
:class:`~repro.formats.fixedpoint.FixedPointFormat` — presents the same
surface, so the quantization policies, the trainer, the analysis tooling,
and the hardware accounting can treat "a format" as one opaque value:

``quantize(x, mode=..., rng=...)``
    Snap an array onto the format's value grid (fake quantization).
``to_bits(x)`` / ``from_bits(bits)``
    The actual storage bit patterns (``int64`` codes), used by the hardware
    model and memory-traffic accounting.
``maxpos`` / ``minpos``
    Largest / smallest representable positive magnitude.
``bits``
    Total storage width in bits (including the sign bit).
``name``
    Human-readable label (may be empty for anonymous parametric formats).
``spec()``
    Canonical spec string that round-trips through
    :func:`~repro.formats.parse_format` (``parse_format(fmt.spec()) == fmt``).
``make_quantizer(rounding=..., rng=...)``
    Build a reusable callable quantizer bound to this format; prefer the
    cached :func:`~repro.formats.get_quantizer` in hot paths.

``PositConfig`` and ``FloatFormat`` predate this interface and are attached
as *virtual* subclasses (``NumberFormat.register``) to keep the dependency
direction ``repro.formats -> repro.posit``; ``FixedPointFormat`` inherits
directly.  Either way, ``isinstance(fmt, NumberFormat)`` identifies a format.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

__all__ = ["NumberFormat"]


class NumberFormat(ABC):
    """Abstract interface implemented by every number format family."""

    @abstractmethod
    def spec(self) -> str:
        """Canonical, registry-parseable spec string for this format."""

    @abstractmethod
    def quantize(self, x, mode: str = "nearest",
                 rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Snap ``x`` element-wise onto this format's value grid.

        Implementations MUST accept the ``mode`` and ``rng`` keywords (the
        analysis and policy layers pass them); they MAY choose a different
        default ``mode`` — posit defaults to ``"zero"`` (Algorithm 1) while
        float and fixed point default to ``"nearest"`` — and map unsupported
        modes onto the closest supported one.
        """

    @abstractmethod
    def to_bits(self, x, mode: str = "nearest",
                rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Quantize ``x`` and return the storage bit patterns (``int64``).

        Must accept ``mode``/``rng`` like :meth:`quantize` —
        :func:`repro.analysis.code_usage` calls ``to_bits(x, mode=...)``.
        """

    @abstractmethod
    def from_bits(self, bits) -> np.ndarray:
        """Decode storage bit patterns back to real values."""

    @abstractmethod
    def make_quantizer(self, rounding: str = "nearest",
                       rng: Optional[np.random.Generator] = None):
        """Build a callable quantizer bound to this format and rounding mode."""

    @property
    @abstractmethod
    def bits(self) -> int:
        """Total storage width in bits, including the sign bit."""

    @property
    @abstractmethod
    def maxpos(self) -> float:
        """Largest representable positive magnitude."""

    @property
    @abstractmethod
    def minpos(self) -> float:
        """Smallest representable positive magnitude."""
