"""Format registry: spec-string parsing, round-tripping, and lookup.

The registry maps canonical spec strings to :class:`~repro.formats.base.NumberFormat`
instances so policies, experiment configs, CLIs, and benchmark harnesses can
name formats declaratively:

* parametric families — ``"posit(n,es)"``, ``"float(e,m)"`` (exponent /
  mantissa bits), and ``"fixed(bits,frac)"`` (total word size / fraction
  bits) — are parsed structurally;
* named formats — ``"fp32"``, ``"fp16"``, ``"bfloat16"``, ``"fp8_e4m3"``,
  ``"fp8_e5m2"``, and every posit constant defined in
  :mod:`repro.posit.config` (including ``"posit(32,2)"``, which the paper's
  ``PAPER_FORMATS`` table deliberately omits) — are registered eagerly.

Specs are case-insensitive and whitespace-tolerant; ``-`` is treated as
``_`` so ``"FP8-E4M3"`` parses.  For every registered format,
``parse_format(fmt.spec()) == fmt`` holds.
"""

from __future__ import annotations

import re
from typing import Iterable, Optional, Union

from ..posit import config as _posit_config
from ..posit import floatformats as _floatformats
from ..posit.config import PositConfig, get_config
from ..posit.floatformats import FloatFormat
from .base import NumberFormat
from .fixedpoint import FixedPointFormat

__all__ = [
    "FormatSpecError",
    "register_format",
    "parse_format",
    "as_format",
    "available_formats",
]


class FormatSpecError(ValueError):
    """Raised for malformed or unknown number-format spec strings."""


#: Canonical spec -> format instance.  Populated below and via register_format.
_REGISTRY: dict[str, NumberFormat] = {}

_SPEC_PATTERN = re.compile(r"^([a-z_][a-z0-9_]*)\((.*)\)$")


def _normalize(spec: str) -> str:
    # Dashes become underscores so named aliases like "FP8-E4M3" resolve;
    # the parametric parser below works on the dash-preserving form so a
    # (invalid but diagnosable) negative argument stays readable.
    return spec.strip().lower().replace(" ", "").replace("-", "_")


def register_format(fmt: NumberFormat, aliases: Iterable[str] = ()) -> NumberFormat:
    """Register ``fmt`` under its canonical spec (plus optional aliases).

    Returns ``fmt`` so the call can be used inline.  Re-registering the same
    format under the same key is a no-op; registering a *different* format
    under an existing key raises ``ValueError`` to keep specs unambiguous.
    """
    keys = [_normalize(fmt.spec())] + [_normalize(alias) for alias in aliases]
    for key in keys:
        existing = _REGISTRY.get(key)
        if existing is not None and existing != fmt:
            raise ValueError(
                f"spec {key!r} is already registered to {existing!r}; "
                f"refusing to rebind it to {fmt!r}"
            )
        _REGISTRY[key] = fmt
    return fmt


def _parse_int_args(family: str, argstr: str, spec: str, count: int) -> list[int]:
    # No filtering of empty parts: "posit(8,,1)" must fail the arity check,
    # not silently collapse to posit(8,1).
    parts = argstr.split(",") if argstr else []
    if len(parts) != count:
        raise FormatSpecError(
            f"{family} spec takes {count} integer arguments, "
            f"'{family}({','.join(['<int>'] * count)})'; got {spec!r}"
        )
    values = []
    for part in parts:
        try:
            values.append(int(part))
        except ValueError as exc:
            raise FormatSpecError(
                f"non-integer argument {part!r} in format spec {spec!r}"
            ) from exc
    return values


def parse_format(spec: str) -> NumberFormat:
    """Parse a spec string into a :class:`NumberFormat`.

    Named formats resolve through the registry; parametric families are
    constructed structurally (and cached where the family supports it).
    Raises :class:`FormatSpecError` with an actionable message on malformed
    input — e.g. ``"posit(8)"`` (missing ``es``) or ``"fixed(4,8)"``
    (fraction field wider than the word).
    """
    if not isinstance(spec, str):
        raise TypeError(f"format spec must be a string, got {type(spec).__name__}")
    key = _normalize(spec)
    registered = _REGISTRY.get(key)
    if registered is not None:
        return registered

    match = _SPEC_PATTERN.match(spec.strip().lower().replace(" ", ""))
    if match is None:
        known = ", ".join(sorted(k for k in _REGISTRY if "(" not in k))
        raise FormatSpecError(
            f"unknown format spec {spec!r}; expected a named format ({known}) or "
            f"a parametric spec posit(n,es), float(e,m), fixed(bits,frac)"
        )
    family, argstr = match.groups()

    if family == "posit":
        n, es = _parse_int_args("posit", argstr, spec, 2)
        try:
            return get_config(n, es)
        except (TypeError, ValueError) as exc:
            raise FormatSpecError(f"invalid posit spec {spec!r}: {exc}") from exc

    if family == "float":
        exponent_bits, mantissa_bits = _parse_int_args("float", argstr, spec, 2)
        try:
            return FloatFormat(exponent_bits, mantissa_bits)
        except ValueError as exc:
            raise FormatSpecError(f"invalid float spec {spec!r}: {exc}") from exc

    if family == "fixed":
        bits, fraction_bits = _parse_int_args("fixed", argstr, spec, 2)
        integer_bits = bits - 1 - fraction_bits
        if integer_bits < 0:
            raise FormatSpecError(
                f"invalid fixed spec {spec!r}: fixed(bits,frac) needs "
                f"frac <= bits - 1 (one bit is the sign); a {bits}-bit word "
                f"cannot hold {fraction_bits} fraction bits"
            )
        try:
            return FixedPointFormat(integer_bits, fraction_bits)
        except ValueError as exc:
            raise FormatSpecError(f"invalid fixed spec {spec!r}: {exc}") from exc

    raise FormatSpecError(
        f"unknown format family {family!r} in spec {spec!r}; "
        f"supported families: posit, float, fixed"
    )


def as_format(value: Union[NumberFormat, str, None],
              allow_none: bool = False) -> Optional[NumberFormat]:
    """Coerce ``value`` to a :class:`NumberFormat`.

    Accepts an existing format instance (returned unchanged) or a spec
    string.  ``None`` is passed through only with ``allow_none=True`` (the
    policy layer uses ``None`` to mean "stay in FP32").
    """
    if value is None:
        if allow_none:
            return None
        raise TypeError("format must not be None here (did you mean allow_none=True?)")
    if isinstance(value, str):
        return parse_format(value)
    if isinstance(value, NumberFormat):
        return value
    raise TypeError(
        f"expected a NumberFormat or spec string, got {type(value).__name__}: {value!r}"
    )


def available_formats() -> dict[str, NumberFormat]:
    """Snapshot of the registry: canonical spec (and aliases) -> format."""
    return dict(_REGISTRY)


# --------------------------------------------------------------------- #
# Eager registration of every module-level constant, so the registry is
# consistent with what the substrate modules export (no hand-curated
# subset that can drift, which is how POSIT_32_2 went missing from
# PAPER_FORMATS).
# --------------------------------------------------------------------- #
for _value in vars(_posit_config).values():
    if isinstance(_value, PositConfig):
        register_format(_value)

_FLOAT_ALIASES = {
    "fp32": ("float32",),
    "fp16": ("float16",),
    "bfloat16": ("bf16",),
    "fp8_e4m3": ("e4m3",),
    "fp8_e5m2": ("e5m2",),
}
for _value in vars(_floatformats).values():
    if isinstance(_value, FloatFormat):
        register_format(_value, aliases=_FLOAT_ALIASES.get(_normalize(_value.spec()), ()))

#: The fixed-point words the paper's baselines exercise: Gupta et al.'s
#: 16-bit Q2.13 and the 8-bit Q2.5 used in the error benchmarks.
register_format(FixedPointFormat(2, 13))
register_format(FixedPointFormat(2, 5))
