"""Unified number-format type system: one protocol, one registry, one factory.

The paper's methodology is precisely about *swapping number formats* per
layer and per tensor role.  This package gives every format family used by
the reproduction — posit, reduced-precision float, and fixed point — one
uniform surface:

* :class:`NumberFormat` — the abstract interface every format implements:
  ``quantize(x, mode=...)``, ``to_bits``/``from_bits``, ``maxpos``/
  ``minpos``/``bits``, ``name``, ``spec()``, and ``make_quantizer(...)``.
  :class:`~repro.posit.PositConfig` and :class:`~repro.posit.FloatFormat`
  are registered as virtual subclasses; :class:`FixedPointFormat` (promoted
  here from ``repro.baselines``) inherits directly.
* the **format registry** — spec-string parsing and round-tripping
  (:func:`parse_format`, :func:`as_format`, :func:`register_format`,
  :func:`available_formats`), so policies and experiment configs can be
  built from plain strings like ``"posit(8,1)"``, ``"fp8_e4m3"``,
  ``"fixed(16,13)"``, or ``"fp32"``.
* the **cached quantizer factory** — :func:`get_quantizer` memoizes
  quantizer instances per ``(format, rounding)`` key so the training hot
  path stops re-instantiating them for every layer.
* the **codec kernels** — :mod:`repro.formats.kernels` precomputes decode
  LUTs and grid-snap encode tables for every registry format with
  ``bits <= 16`` and serves ``quantize``/``to_bits``/``from_bits`` as
  whole-array numpy gathers, bit-identical to the scalar oracle.  On by
  default; disable with ``REPRO_CODEC_KERNELS=0`` or
  :func:`set_kernels_enabled`.
"""

from .base import NumberFormat
from .factory import clear_quantizer_cache, get_quantizer, quantizer_cache_info
from .kernels import (
    KERNEL_MAX_BITS,
    KernelQuantizer,
    active_kernel,
    clear_kernel_cache,
    get_kernel,
    kernel_info,
    kernels_enabled,
    reference_ops,
    set_kernels_enabled,
)
from .fixedpoint import (
    FixedPointFormat,
    FixedPointQuantizer,
    fixed_point_from_bits,
    fixed_point_quantize,
    fixed_point_to_bits,
)
from .registry import (
    FormatSpecError,
    as_format,
    available_formats,
    parse_format,
    register_format,
)

# PositConfig and FloatFormat predate this package and cannot import from it
# (repro.formats imports repro.posit); they join the protocol as virtual
# subclasses so `isinstance(fmt, NumberFormat)` holds for every family.
from ..posit.config import PositConfig as _PositConfig
from ..posit.floatformats import FloatFormat as _FloatFormat

NumberFormat.register(_PositConfig)
NumberFormat.register(_FloatFormat)

__all__ = [
    "NumberFormat",
    "FixedPointFormat",
    "FixedPointQuantizer",
    "fixed_point_quantize",
    "fixed_point_to_bits",
    "fixed_point_from_bits",
    "FormatSpecError",
    "parse_format",
    "as_format",
    "register_format",
    "available_formats",
    "get_quantizer",
    "clear_quantizer_cache",
    "quantizer_cache_info",
    "KERNEL_MAX_BITS",
    "KernelQuantizer",
    "active_kernel",
    "clear_kernel_cache",
    "get_kernel",
    "kernel_info",
    "kernels_enabled",
    "reference_ops",
    "set_kernels_enabled",
]
