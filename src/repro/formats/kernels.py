"""Vectorized LUT codec kernels for every registry format with ``bits <= 16``.

The PR-7 profiler baseline (``benchmarks/results/codec_profile_baseline.json``)
measured posit ``to_bits`` at ~150-400 ns/element — roughly 50x off the
~5-16 ns/element numpy floor the fixed-point family hits — and the ROADMAP
names the codec the hot loop under every workload: training steps, artifact
save/load, and every serving request.  This module closes that gap with
precomputed tables:

* **decode LUT** — all ``2**bits`` codes decoded once (posit formats use the
  scalar reference :func:`repro.posit.scalar.decode`, the ground truth the
  vectorized path is validated against), so ``from_bits`` becomes a single
  masked gather.
* **encode tables** — the strictly positive representable values form one
  monotone "code line" shared by posit and float formats (line index 0 is
  zero).  Encoding is arithmetic, not a binary search: ``np.frexp`` picks a
  per-binade row, and each row stores ``1/step`` (a power of two, so the
  multiply is exact) and an index offset such that
  ``floor(mag / step) + offset`` *is* the round-toward-zero line index.
  ``np.searchsorted`` is used only at build time — at ~55-136 ns/element in
  this container it would alone blow the per-element budget.
* **rounding tables** — round-to-nearest folds the tie-to-even rule into a
  per-interval threshold (probed from the scalar oracle, so ties behave
  bit-for-bit identically), and stochastic rounding reuses the oracle's own
  ``(mag - lo) / (hi - lo)`` probability expression via a gap table.
* **sign/storage LUTs** — the final code/value is one gather from a
  ``2 * L``-entry table indexed by ``line_index + L * signbit``, built by
  running the *oracle* ``to_bits`` over ``±line_vals`` — two's-complement
  posit negatives, IEEE sign bits, and canonical-zero encoding all come out
  of the probe rather than being re-implemented (and re-diverged) here.

Special values (NaN, ±inf, exact ±0) are likewise probed from the oracle per
family and patched via masks; the all-finite fast path pays one
``isfinite().all()`` check.

The kernels are wired in two places: the format classes' protocol methods
(``quantize`` / ``to_bits`` / ``from_bits`` dispatch here when enabled, which
covers the artifact weight codec and the serving decoded-weight cache without
touching that code) and the quantizer factory (:func:`repro.formats.
get_quantizer` hands out :class:`KernelQuantizer` instances).  The
``REPRO_CODEC_KERNELS`` environment variable (on by default; ``0``/``false``/
``off``/``no`` disable) selects the path, and the scalar/vectorized module
functions remain untouched as the conformance oracle —
``tests/formats/test_kernel_differential.py`` proves bit-identity against
them for every supported format and rounding mode.
"""

from __future__ import annotations

import math
import os
import threading
from typing import Callable, Optional

import numpy as np

from ..posit.config import PositConfig
from ..posit.floatformats import FloatFormat
from .fixedpoint import FixedPointFormat

__all__ = [
    "KERNEL_MAX_BITS",
    "KernelQuantizer",
    "active_kernel",
    "clear_kernel_cache",
    "get_kernel",
    "kernel_info",
    "kernels_enabled",
    "reference_ops",
    "set_kernels_enabled",
]

#: Kernels are built for formats up to this storage width: a full decode LUT
#: is at most 2**16 float64 entries (512 KiB) and the encode-side tables are
#: of the same order, so the whole registry costs a few MiB.
KERNEL_MAX_BITS = 16

#: Environment switch; anything except these (case-insensitive) enables.
_FALSY = frozenset({"0", "false", "off", "no"})

#: Runtime override for tests/benchmarks: None defers to the environment.
_ENABLED_OVERRIDE: Optional[bool] = None

#: format -> kernel instance (or None for unsupported formats).
_KERNEL_CACHE: dict = {}
_CACHE_LOCK = threading.Lock()

#: The per-binade row tables span every exponent ``np.frexp`` can produce
#: for a finite float64 (denormals bottom out at -1073, the top binade is
#: 1024), so row selection needs no clip on the hot path.
_E_MIN = -1100
_E_MAX = 1100


class _KernelUnsupported(Exception):
    """Raised at build time when a format violates the table assumptions."""


def kernels_enabled() -> bool:
    """Whether codec kernels are active (override, else ``REPRO_CODEC_KERNELS``)."""
    if _ENABLED_OVERRIDE is not None:
        return _ENABLED_OVERRIDE
    return os.environ.get("REPRO_CODEC_KERNELS", "1").strip().lower() not in _FALSY


def set_kernels_enabled(value: Optional[bool]) -> Optional[bool]:
    """Override the environment switch (``None`` restores it); returns the old override."""
    global _ENABLED_OVERRIDE
    previous = _ENABLED_OVERRIDE
    _ENABLED_OVERRIDE = value
    return previous


def clear_kernel_cache() -> None:
    """Drop all built kernels (mainly for tests measuring build cost)."""
    with _CACHE_LOCK:
        _KERNEL_CACHE.clear()


class _ReferenceOps:
    """The scalar-path oracle for one format: module-level functions only.

    These callables never go through the format methods (which may dispatch
    back into the kernels), so they are safe to use from kernel builds and
    from the differential conformance harness as the ground truth.
    """

    __slots__ = ("fmt", "quantize", "to_bits", "from_bits", "map_mode")

    def __init__(self, fmt, quantize: Callable, to_bits: Callable,
                 from_bits: Callable, map_mode: Callable[[str], Optional[str]]):
        self.fmt = fmt
        self.quantize = quantize
        self.to_bits = to_bits
        self.from_bits = from_bits
        self.map_mode = map_mode


def reference_ops(fmt) -> Optional[_ReferenceOps]:
    """Oracle ``quantize``/``to_bits``/``from_bits`` for ``fmt`` (or ``None``).

    ``map_mode`` mirrors each family's historical mode handling: posit
    supports ``zero``/``nearest``/``stochastic`` natively (anything else
    returns ``None`` — the caller falls back to the scalar path, which
    raises the canonical error); float and fixed point map every
    non-stochastic mode to ``nearest``, exactly as their format methods
    always did.
    """
    if isinstance(fmt, PositConfig):
        # The package re-exports the quantize *function*, so import the
        # module explicitly to reach its siblings.
        from ..posit.quantize import (
            ROUNDING_MODES, bits_to_float, quantize, quantize_to_bits)

        def _map(mode: str) -> Optional[str]:
            return mode if mode in ROUNDING_MODES else None

        return _ReferenceOps(
            fmt,
            lambda x, mode="zero", rng=None: quantize(x, fmt, rounding=mode, rng=rng),
            lambda x, mode="zero", rng=None: quantize_to_bits(x, fmt, rounding=mode, rng=rng),
            lambda bits: bits_to_float(bits, fmt),
            _map,
        )
    if isinstance(fmt, FloatFormat):
        from ..posit import floatformats as _ff

        def _map(mode: str) -> Optional[str]:
            return "stochastic" if mode == "stochastic" else "nearest"

        return _ReferenceOps(
            fmt,
            lambda x, mode="nearest", rng=None: _ff.float_quantize(
                x, fmt, rng=rng, rounding=_map(mode)),
            lambda x, mode="nearest", rng=None: _ff.float_to_bits(
                x, fmt, rounding=_map(mode), rng=rng),
            lambda bits: _ff.float_from_bits(bits, fmt),
            _map,
        )
    if isinstance(fmt, FixedPointFormat):
        from . import fixedpoint as _fx

        def _map(mode: str) -> Optional[str]:
            return "stochastic" if mode == "stochastic" else "nearest"

        return _ReferenceOps(
            fmt,
            lambda x, mode="nearest", rng=None: _fx.fixed_point_quantize(
                x, fmt, rounding=_map(mode), rng=rng),
            lambda x, mode="nearest", rng=None: _fx.fixed_point_to_bits(
                x, fmt, rounding=_map(mode), rng=rng),
            lambda bits: _fx.fixed_point_from_bits(bits, fmt),
            _map,
        )
    return None


def _posit_decode_lut(fmt: PositConfig) -> np.ndarray:
    """All ``2**n`` codes decoded via the scalar reference implementation.

    Only the positive bodies are walked scalar-by-scalar; negative patterns
    are their exact two's-complement mirrors (``decode((-c) & mask) ==
    -decode(c)``), which halves the one-time build cost for 16-bit formats.
    """
    from ..posit import scalar as _scalar

    half = 1 << (fmt.n - 1)
    lut = np.zeros(1 << fmt.n, dtype=np.float64)
    positive = np.array([_scalar.decode(code, fmt) for code in range(1, half)],
                        dtype=np.float64)
    lut[1:half] = positive
    lut[half] = np.nan  # NaR
    lut[half + 1:] = -positive[::-1]
    return lut


def _build_decode_lut(fmt, ref: _ReferenceOps) -> np.ndarray:
    if isinstance(fmt, PositConfig):
        return _posit_decode_lut(fmt)
    codes = np.arange(1 << fmt.bits, dtype=np.int64)
    return np.asarray(ref.from_bits(codes), dtype=np.float64)


class _LineKernel:
    """LUT codec for sign-magnitude code lines (posit and float families).

    The strictly positive representable values, sorted ascending with a
    leading zero, form the "line" ``line_vals[0..L-1]``.  Every operation is
    line-index arithmetic followed by gathers; see the module docstring for
    the table layout.
    """

    def __init__(self, fmt, ref: _ReferenceOps):
        self.fmt = fmt
        self._ref = ref
        self._mask = (np.int64(1) << fmt.bits) - 1
        self._decode_lut = _build_decode_lut(fmt, ref)

        finite = np.isfinite(self._decode_lut)
        positive = np.sort(self._decode_lut[finite & (self._decode_lut > 0)])
        if positive.size == 0 or np.any(np.diff(positive) <= 0):
            raise _KernelUnsupported("positive values are not strictly increasing")
        line_vals = np.concatenate(([0.0], positive))
        self._line_vals = line_vals
        self._L = line_vals.size

        self._build_rows(line_vals)
        self._build_rounding_tables(line_vals, ref)
        self._build_output_luts(line_vals, ref)
        self._self_check(line_vals)

    # -- build ------------------------------------------------------------

    def _build_rows(self, line_vals: np.ndarray) -> None:
        m0, e0 = math.frexp(line_vals[1])
        if m0 != 0.5:
            raise _KernelUnsupported("smallest positive value must be a power of two")
        s_min = e0 - 1
        s_max = math.frexp(line_vals[-1])[1] - 1

        n_rows = _E_MAX - _E_MIN + 1
        step_inv = np.zeros(n_rows, dtype=np.float64)
        offset = np.zeros(n_rows, dtype=np.int64)
        # Binades above the top saturate to the last line index; binades
        # below the bottom fall to index 0 (zero).  Both via step_inv == 0.
        offset[(s_max + 1) - _E_MIN + 1:] = self._L - 1

        for s in range(s_min, s_max + 1):
            row = (s + 1) - _E_MIN  # frexp exponent of binade s is s + 1
            lo_i = int(np.searchsorted(line_vals, 2.0 ** s, side="left"))
            hi_i = int(np.searchsorted(line_vals, 2.0 ** (s + 1), side="left"))
            if hi_i == lo_i:
                # Empty binade: everything in it truncates to the largest
                # value below.  (Never hit by the registry families — every
                # posit/float binade in range is populated — kept so an
                # exotic registered format degrades correctly, not wrongly.)
                offset[row] = lo_i - 1
                continue
            members = line_vals[lo_i:hi_i]
            if members[0] != 2.0 ** s:
                raise _KernelUnsupported(f"binade 2^{s} does not start on its boundary")
            if members.size > 1:
                step = float(members[1] - members[0])
                if (math.frexp(step)[0] != 0.5
                        or np.any(np.diff(members) != step)
                        or members[-1] + step != 2.0 ** (s + 1)):
                    raise _KernelUnsupported(f"binade 2^{s} is not a uniform grid")
            else:
                step = 2.0 ** s
            inv = 1.0 / step
            if not math.isfinite(inv):
                raise _KernelUnsupported(f"step 2^{s} too small for an exact inverse")
            step_inv[row] = inv
            offset[row] = lo_i - int(round(2.0 ** s * inv))

        self._row_step_inv = step_inv
        self._row_offset = offset

    def _build_rounding_tables(self, line_vals: np.ndarray, ref: _ReferenceOps) -> None:
        # Nearest: one threshold per interval [v_l, v_{l+1}).  The midpoint
        # uses the same float64 expression as the oracle, and the tie
        # direction (to the even code) is probed rather than re-derived:
        # quantizing the midpoint itself tells us which side wins.
        mids = 0.5 * (line_vals[:-1] + line_vals[1:])
        tie_hi = np.asarray(ref.quantize(mids, "nearest")) == line_vals[1:]
        thr = np.where(tie_hi, np.nextafter(mids, -np.inf), mids)
        self._thr = np.append(thr, np.inf)
        # Stochastic: P(hi) = (mag - lo) / gap, the oracle's own expression.
        self._gap = np.append(np.diff(line_vals), np.inf)

    def _build_output_luts(self, line_vals: np.ndarray, ref: _ReferenceOps) -> None:
        pos_codes = np.asarray(ref.to_bits(line_vals, "nearest"), dtype=np.int64)
        neg_codes = np.asarray(ref.to_bits(-line_vals, "nearest"), dtype=np.int64)
        if pos_codes[0] != neg_codes[0]:
            raise _KernelUnsupported("zero is not canonically encoded")
        self._code_out = np.concatenate((pos_codes, neg_codes))

        val_out = np.concatenate((line_vals, -line_vals))
        # The two zero slots hold what the oracle returns for magnitudes that
        # round to zero (posit: +0.0 for both signs; float: the sign is kept,
        # so a negative underflow yields -0.0).  Probed with a magnitude
        # deterministically below every mode's round-up region.
        tiny = 0.25 * line_vals[1]
        probe = np.asarray(ref.quantize(np.array([tiny, -tiny]), "nearest"))
        val_out[0], val_out[self._L] = probe[0], probe[1]
        self._val_out = val_out

        specials = np.array([np.nan, np.inf, -np.inf])
        codes = np.asarray(ref.to_bits(specials, "nearest"), dtype=np.int64)
        self._code_nan, self._code_pinf, self._code_ninf = (
            codes[0], codes[1], codes[2])
        vals = np.asarray(ref.quantize(specials, "nearest"))
        self._val_nan, self._val_pinf, self._val_ninf = vals[0], vals[1], vals[2]
        zeros = np.asarray(ref.quantize(np.array([0.0, -0.0]), "nearest"))
        self._val_pzero, self._val_nzero = zeros[0], zeros[1]

    def _self_check(self, line_vals: np.ndarray) -> None:
        # Round-toward-zero is exact on the tables iff every grid value maps
        # to itself and every value one ulp below maps to its lower
        # neighbour.  Checking both exhaustively at build time turns any
        # broken assumption into a clean fallback instead of silent drift.
        idx = self._line_index(line_vals, True)
        below = self._line_index(np.nextafter(line_vals[1:], 0.0), True)
        if (not np.array_equal(idx, np.arange(self._L))
                or not np.array_equal(below, np.arange(self._L - 1))):
            raise _KernelUnsupported("encode tables fail the grid self-map check")

    # -- hot path ---------------------------------------------------------

    def _line_index(self, mag: np.ndarray, clean: bool) -> np.ndarray:
        """Round-toward-zero line index of non-negative magnitudes.

        NaN/inf lanes (``clean`` is False) cast to garbage indices; every
        downstream gather clamps via ``take(mode="clip")`` and the caller
        patches those lanes from the probed specials, so no separate bounds
        pass is spent on the all-finite fast path.
        """
        _, e = np.frexp(mag)
        row = e - _E_MIN
        t = mag * self._row_step_inv.take(row)
        if clean:
            lo = t.astype(np.int64) + self._row_offset.take(row)
        else:
            with np.errstate(invalid="ignore"):
                lo = t.astype(np.int64) + self._row_offset.take(row)
        zero = mag == 0.0
        if zero.any():
            lo[zero] = 0
        return lo

    def _pick(self, mag: np.ndarray, mode: str, clean: bool,
              rng: Optional[np.random.Generator]) -> np.ndarray:
        eff = self._ref.map_mode(mode)
        lo = self._line_index(mag, clean)
        if eff == "zero":
            return lo
        if eff == "nearest":
            return lo + (mag > self._thr.take(lo, mode="clip"))
        if eff == "stochastic":
            if rng is None:
                rng = np.random.default_rng()
            prob = ((mag - self._line_vals.take(lo, mode="clip"))
                    / self._gap.take(lo, mode="clip"))
            return lo + (rng.random(mag.shape) < prob)
        raise ValueError(f"unknown rounding mode {mode!r}")

    def supports(self, mode: str) -> bool:
        return self._ref.map_mode(mode) is not None

    def quantize(self, x, mode: str, rng: Optional[np.random.Generator] = None):
        arr = np.asarray(x, dtype=np.float64)
        flat = arr.ravel()
        mag = np.abs(flat)
        neg = np.signbit(flat)
        clean = bool(np.isfinite(flat).all())
        pick = self._pick(mag, mode, clean, rng)
        out = self._val_out.take(pick + neg * self._L, mode="clip")
        zero = mag == 0.0
        if zero.any():
            # Exact ±0 inputs bypass the underflow slots: the oracle returns
            # its canonical zero for them (e.g. float_quantize(-0.0) is +0.0
            # even though float_quantize(-tiny) is -0.0).
            out[zero] = np.where(neg[zero], self._val_nzero, self._val_pzero)
        if not clean:
            out[np.isnan(flat)] = self._val_nan
            out[flat == np.inf] = self._val_pinf
            out[flat == -np.inf] = self._val_ninf
        return out[0] if arr.ndim == 0 else out.reshape(arr.shape)

    def to_bits(self, x, mode: str, rng: Optional[np.random.Generator] = None):
        arr = np.asarray(x, dtype=np.float64)
        flat = arr.ravel()
        mag = np.abs(flat)
        neg = np.signbit(flat)
        clean = bool(np.isfinite(flat).all())
        pick = self._pick(mag, mode, clean, rng)
        out = self._code_out.take(pick + neg * self._L, mode="clip")
        if not clean:
            out[np.isnan(flat)] = self._code_nan
            out[flat == np.inf] = self._code_pinf
            out[flat == -np.inf] = self._code_ninf
        return out[0] if arr.ndim == 0 else out.reshape(arr.shape)

    def from_bits(self, bits):
        arr = np.asarray(bits, dtype=np.int64)
        out = self._decode_lut[(arr.ravel() & self._mask)]
        return out[0] if arr.ndim == 0 else out.reshape(arr.shape)

    # -- reporting --------------------------------------------------------

    @property
    def table_nbytes(self) -> int:
        return sum(a.nbytes for a in (
            self._decode_lut, self._line_vals, self._thr, self._gap,
            self._code_out, self._val_out, self._row_step_inv, self._row_offset))

    def info(self) -> dict:
        return {
            "spec": self.fmt.spec(),
            "bits": self.fmt.bits,
            "kind": "line",
            "decode_entries": int(self._decode_lut.size),
            "line_entries": int(self._L),
            "table_bytes": int(self.table_nbytes),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"_LineKernel({self.fmt.spec()}, L={self._L})"


class _FixedKernel:
    """Decode-LUT kernel for fixed point.

    The fixed-point encode side is already pure numpy arithmetic at the
    floor the benchmark gate measures against, and its two's-complement code
    space is asymmetric (``-2**I`` has no positive twin), so only
    ``from_bits`` gains a table; ``quantize``/``to_bits`` delegate to the
    module oracle unchanged.
    """

    def __init__(self, fmt: FixedPointFormat, ref: _ReferenceOps):
        self.fmt = fmt
        self._ref = ref
        self._mask = (np.int64(1) << fmt.bits) - 1
        self._decode_lut = _build_decode_lut(fmt, ref)

    def supports(self, mode: str) -> bool:
        return self._ref.map_mode(mode) is not None

    def quantize(self, x, mode: str, rng: Optional[np.random.Generator] = None):
        return self._ref.quantize(x, mode, rng)

    def to_bits(self, x, mode: str, rng: Optional[np.random.Generator] = None):
        return self._ref.to_bits(x, mode, rng)

    def from_bits(self, bits):
        arr = np.asarray(bits, dtype=np.int64)
        out = self._decode_lut[(arr.ravel() & self._mask)]
        return out[0] if arr.ndim == 0 else out.reshape(arr.shape)

    @property
    def table_nbytes(self) -> int:
        return int(self._decode_lut.nbytes)

    def info(self) -> dict:
        return {
            "spec": self.fmt.spec(),
            "bits": self.fmt.bits,
            "kind": "fixed",
            "decode_entries": int(self._decode_lut.size),
            "line_entries": 0,
            "table_bytes": int(self.table_nbytes),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"_FixedKernel({self.fmt.spec()})"


def _build_kernel(fmt):
    ref = reference_ops(fmt)
    if ref is None or fmt.bits > KERNEL_MAX_BITS:
        return None
    try:
        if isinstance(fmt, FixedPointFormat):
            return _FixedKernel(fmt, ref)
        return _LineKernel(fmt, ref)
    except _KernelUnsupported:
        return None


def get_kernel(fmt):
    """The (cached, lazily built) kernel for ``fmt``, or ``None``.

    Unsupported formats — ``bits > 16``, unknown families, or formats whose
    value grid violates the table assumptions — cache ``None`` and keep the
    scalar path.  This does *not* consult :func:`kernels_enabled`: the
    differential harness compares kernels against the oracle regardless of
    how dispatch is switched.
    """
    kernel = _KERNEL_CACHE.get(fmt, False)
    if kernel is not False:
        return kernel
    with _CACHE_LOCK:
        kernel = _KERNEL_CACHE.get(fmt, False)
        if kernel is False:
            kernel = _build_kernel(fmt)
            _KERNEL_CACHE[fmt] = kernel
    return kernel


def active_kernel(fmt, mode: Optional[str] = None):
    """Kernel to dispatch to right now, or ``None`` for the scalar path."""
    if not kernels_enabled():
        return None
    kernel = get_kernel(fmt)
    if kernel is None or (mode is not None and not kernel.supports(mode)):
        return None
    return kernel


def kernel_info(formats=None) -> list:
    """Build (if needed) and describe kernels — the README memory-cost table.

    ``formats`` defaults to every distinct registry format; unsupported
    formats report ``kind="none"`` with zero table bytes.
    """
    if formats is None:
        from .registry import available_formats

        seen, formats = set(), []
        for fmt in available_formats().values():
            if fmt not in seen:
                seen.add(fmt)
                formats.append(fmt)
    rows = []
    for fmt in sorted(formats, key=lambda f: f.spec()):
        kernel = get_kernel(fmt)
        if kernel is None:
            rows.append({"spec": fmt.spec(), "bits": fmt.bits, "kind": "none",
                         "decode_entries": 0, "line_entries": 0, "table_bytes": 0})
        else:
            rows.append(kernel.info())
    return rows


class KernelQuantizer:
    """Factory-facing callable bound to a kernel and rounding mode.

    Mirrors the attribute surface of the per-family quantizers
    (``format``/``rounding``/``rng``/``to_bits``/``from_bits``) so the
    policy layer, the analysis tooling, and the profiler proxy treat it
    interchangeably.  ``rounding`` keeps the *requested* mode verbatim; the
    kernel applies the family's historical mapping at call time.
    """

    __slots__ = ("kernel", "rounding", "rng")

    def __init__(self, kernel, rounding: str,
                 rng: Optional[np.random.Generator] = None):
        self.kernel = kernel
        self.rounding = rounding
        self.rng = rng

    @property
    def format(self):
        """The bound format (uniform accessor across quantizer families)."""
        return self.kernel.fmt

    @property
    def config(self):
        """Alias kept for parity with ``PositQuantizer.config`` consumers."""
        return self.kernel.fmt

    def __call__(self, x) -> np.ndarray:
        return self.kernel.quantize(x, self.rounding, self.rng)

    def to_bits(self, x) -> np.ndarray:
        return self.kernel.to_bits(x, self.rounding, self.rng)

    def from_bits(self, bits) -> np.ndarray:
        return self.kernel.from_bits(bits)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"KernelQuantizer({self.kernel.fmt.spec()}, rounding={self.rounding!r})"
