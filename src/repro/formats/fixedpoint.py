"""First-class fixed-point number format (Gupta et al. [7]).

The earliest limited-precision training work used fixed-point formats with
stochastic rounding.  The paper cites it as the class of "aggressive
approximation" methods that lose too much information on complex tasks, and
the ablation benchmarks use it as the weakest baseline.  Historically this
module lived in ``repro.baselines``; it is now part of the core format type
system so fixed point participates in policies, sweeps, and hardware
accounting exactly like posit and float formats (the
``repro.baselines.fixedpoint`` compatibility shim has been removed after
its deprecation window; ``repro.baselines`` still re-exports the names).

A fixed-point format ``Q(integer_bits, fraction_bits)`` represents values in
``[-2**integer_bits, 2**integer_bits - 2**-fraction_bits]`` with a uniform
step of ``2**-fraction_bits``.  Its canonical spec string is
``"fixed(bits,fraction_bits)"`` where ``bits`` is the total word size —
e.g. ``FixedPointFormat(2, 13)`` (Q2.13, a 16-bit word) is ``"fixed(16,13)"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .base import NumberFormat

__all__ = [
    "FixedPointFormat",
    "FixedPointQuantizer",
    "fixed_point_quantize",
    "fixed_point_to_bits",
    "fixed_point_from_bits",
]


@dataclass(frozen=True)
class FixedPointFormat(NumberFormat):
    """Signed fixed-point format with ``integer_bits``.``fraction_bits`` split.

    The sign bit is implicit (two's complement), so the total storage width
    is ``1 + integer_bits + fraction_bits``.
    """

    integer_bits: int
    fraction_bits: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.integer_bits < 0 or self.fraction_bits < 0:
            raise ValueError("field widths must be non-negative")
        if self.integer_bits + self.fraction_bits == 0:
            raise ValueError("format must have at least one magnitude bit")

    @property
    def bits(self) -> int:
        """Total storage width including the sign bit."""
        return 1 + self.integer_bits + self.fraction_bits

    @property
    def step(self) -> float:
        """Quantization step (value of one LSB)."""
        return 2.0 ** (-self.fraction_bits)

    @property
    def max_value(self) -> float:
        """Largest representable value."""
        return 2.0**self.integer_bits - self.step

    @property
    def min_value(self) -> float:
        """Smallest (most negative) representable value."""
        return -(2.0**self.integer_bits)

    @property
    def maxpos(self) -> float:
        """Largest representable positive magnitude (protocol surface)."""
        return self.max_value

    @property
    def minpos(self) -> float:
        """Smallest representable positive magnitude: one LSB."""
        return self.step

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name or f"Q{self.integer_bits}.{self.fraction_bits}"

    def spec(self) -> str:
        """Canonical spec string, ``fixed(<word bits>,<fraction bits>)``."""
        return f"fixed({self.bits},{self.fraction_bits})"

    def quantize(self, x, mode: str = "nearest",
                 rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Snap ``x`` onto the fixed-point grid.

        ``mode`` is ``"nearest"`` or ``"stochastic"``; ``"zero"`` (posit's
        Algorithm 1 truncation) is accepted and mapped to ``"nearest"``, the
        common hardware choice for fixed point.
        """
        rounding = "stochastic" if mode == "stochastic" else "nearest"
        return fixed_point_quantize(x, self, rounding=rounding, rng=rng)

    def to_bits(self, x, mode: str = "nearest",
                rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Quantize ``x`` and return two's-complement codes (``int64``)."""
        rounding = "stochastic" if mode == "stochastic" else "nearest"
        return fixed_point_to_bits(x, self, rounding=rounding, rng=rng)

    def from_bits(self, bits) -> np.ndarray:
        """Decode two's-complement codes back to real values.

        Dispatches to the decode LUT (:mod:`repro.formats.kernels`) when
        enabled; the encode side is already pure numpy arithmetic at the
        floor the kernels are measured against, so it stays as-is.
        """
        from .kernels import active_kernel

        kernel = active_kernel(self)
        if kernel is not None:
            return kernel.from_bits(bits)
        return fixed_point_from_bits(bits, self)

    def make_quantizer(self, rounding: str = "nearest",
                       rng: Optional[np.random.Generator] = None) -> "FixedPointQuantizer":
        """Build a quantizer for this format (hook used by QuantizationPolicy)."""
        mode = "stochastic" if rounding == "stochastic" else "nearest"
        return FixedPointQuantizer(self, rounding=mode, rng=rng)


def fixed_point_quantize(x, fmt: FixedPointFormat, rounding: str = "nearest",
                         rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Snap ``x`` onto the fixed-point grid of ``fmt`` with saturation.

    ``rounding`` is ``"nearest"`` (round half away from zero, the common
    hardware choice) or ``"stochastic"`` (Gupta et al.'s method).
    """
    arr = np.asarray(x, dtype=np.float64)
    scaled = arr / fmt.step
    if rounding == "nearest":
        quantized = np.round(scaled)
    elif rounding == "stochastic":
        if rng is None:
            rng = np.random.default_rng()
        lower = np.floor(scaled)
        quantized = lower + (rng.random(arr.shape) < (scaled - lower))
    else:
        raise ValueError(f"unknown rounding mode {rounding!r}")
    values = quantized * fmt.step
    return np.clip(values, fmt.min_value, fmt.max_value)


def fixed_point_to_bits(x, fmt: FixedPointFormat, rounding: str = "nearest",
                        rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Quantize ``x`` and return ``fmt.bits``-wide two's-complement codes.

    The returned array has dtype ``int64``; each element lies in
    ``[0, 2**bits)``.  ``fmt.max_value`` maps to ``2**(bits-1) - 1`` and
    ``fmt.min_value`` to ``2**(bits-1)`` (the most negative code).
    """
    values = fixed_point_quantize(x, fmt, rounding=rounding, rng=rng)
    arr = np.atleast_1d(np.asarray(values, dtype=np.float64))
    codes = np.rint(arr / fmt.step).astype(np.int64)
    mask = (np.int64(1) << fmt.bits) - 1
    bits = codes & mask
    return bits[0] if np.asarray(x).ndim == 0 else bits


def fixed_point_from_bits(bits, fmt: FixedPointFormat) -> np.ndarray:
    """Decode ``fmt.bits``-wide two's-complement codes to real values."""
    arr = np.atleast_1d(np.asarray(bits, dtype=np.int64))
    mask = (np.int64(1) << fmt.bits) - 1
    arr = arr & mask
    sign_bit = np.int64(1) << (fmt.bits - 1)
    signed = np.where(arr >= sign_bit, arr - (np.int64(1) << fmt.bits), arr)
    values = signed.astype(np.float64) * fmt.step
    return values[0] if np.asarray(bits).ndim == 0 else values


class FixedPointQuantizer:
    """Callable wrapper around :func:`fixed_point_quantize`."""

    def __init__(self, fmt: FixedPointFormat, rounding: str = "nearest",
                 rng: Optional[np.random.Generator] = None):
        self.fmt = fmt
        self.rounding = rounding
        self.rng = rng

    @property
    def format(self) -> FixedPointFormat:
        """The bound format (uniform accessor across quantizer families)."""
        return self.fmt

    def __call__(self, x) -> np.ndarray:
        """Quantize ``x`` to the bound fixed-point format."""
        return fixed_point_quantize(x, self.fmt, rounding=self.rounding, rng=self.rng)

    def to_bits(self, x) -> np.ndarray:
        """Quantize ``x`` and return bit patterns instead of values."""
        return fixed_point_to_bits(x, self.fmt, rounding=self.rounding, rng=self.rng)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FixedPointQuantizer({self.fmt}, rounding={self.rounding!r})"
