"""Cached quantizer factory keyed by ``(format, rounding_mode)``.

A quantizer is a small stateless callable, but the policy layer used to
build four of them per layer on every ``attach`` — dozens of redundant
instances for a ResNet, re-created again for every sweep point.  This
factory memoizes one instance per ``(format, rounding)`` pair; formats are
frozen (hashable) dataclasses, so they key the cache directly.

Calls that carry an explicit random generator (seeded stochastic rounding)
bypass the cache: a shared generator across layers would entangle their
random streams, which is exactly what a caller passing ``rng`` is trying to
control.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

import numpy as np

from .base import NumberFormat
from .registry import parse_format

__all__ = ["get_quantizer", "clear_quantizer_cache", "quantizer_cache_info"]

#: (format, rounding, kernels_enabled) -> quantizer instance.  The kernel
#: flag participates in the key so toggling ``REPRO_CODEC_KERNELS`` (or
#: :func:`repro.formats.kernels.set_kernels_enabled`) never serves a stale
#: quantizer built for the other path.
_QUANTIZER_CACHE: dict[tuple, Callable] = {}


def _build(fmt: NumberFormat, rounding: str,
           rng: Optional[np.random.Generator]) -> Callable:
    maker = getattr(fmt, "make_quantizer", None)
    if maker is None:
        raise TypeError(
            f"unsupported format descriptor: {fmt!r} (no make_quantizer hook)"
        )
    # Every quantizer leaves the factory wrapped for the codec profiler
    # (repro.obs.profiler).  The proxy is cached like the bare quantizer
    # would be — identity and attribute semantics are unchanged — and
    # while profiling is off it costs one flag check per call.
    from repro.obs.profiler import wrap_quantizer

    from .kernels import KernelQuantizer, active_kernel

    # LUT-kernel fast path for narrow formats.  A mode the kernel cannot
    # serve (e.g. an invalid posit rounding string) falls through to the
    # family's own maker, which keeps its exact error behaviour.
    kernel = active_kernel(fmt, rounding)
    if kernel is not None:
        return wrap_quantizer(KernelQuantizer(kernel, rounding, rng), fmt)
    return wrap_quantizer(maker(rounding=rounding, rng=rng), fmt)


def get_quantizer(fmt: Union[NumberFormat, str, None], rounding: str = "zero",
                  rng: Optional[np.random.Generator] = None) -> Optional[Callable]:
    """Return a quantizer for ``fmt``, memoized per ``(format, rounding)``.

    ``fmt`` may be a :class:`NumberFormat`, a spec string (resolved through
    the registry), or ``None`` (meaning "no quantization" — returns ``None``,
    mirroring the policy layer's FP32 convention).  Each format family maps
    the requested rounding mode onto what it supports (e.g. floats treat
    ``"zero"`` as round-to-nearest), exactly as the policy layer always did.
    """
    if fmt is None:
        return None
    if isinstance(fmt, str):
        fmt = parse_format(fmt)
    if rng is not None:
        return _build(fmt, rounding, rng)
    from .kernels import kernels_enabled

    key = (fmt, rounding, kernels_enabled())
    quantizer = _QUANTIZER_CACHE.get(key)
    if quantizer is None:
        quantizer = _build(fmt, rounding, None)
        _QUANTIZER_CACHE[key] = quantizer
    return quantizer


def clear_quantizer_cache() -> None:
    """Drop all memoized quantizers (mainly for tests and benchmarks)."""
    _QUANTIZER_CACHE.clear()


def quantizer_cache_info() -> dict:
    """Introspection: cache size and the currently cached keys."""
    return {
        "size": len(_QUANTIZER_CACHE),
        "keys": [(fmt.spec(), rounding) for fmt, rounding, _ in _QUANTIZER_CACHE],
    }
