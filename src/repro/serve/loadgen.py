"""Closed-loop load generator for serving benchmarks and smoke tests.

Models the paper's target deployment — many independent clients each waiting
for their own answer — as ``concurrency`` closed-loop workers: every worker
repeatedly sends one single-sample request and blocks for the reply, so at
steady state exactly ``concurrency`` requests are in flight and the
micro-batcher (:mod:`repro.serve.engine`) sees the coalescing opportunity a
real request mix would offer.

Works against any client with the transport ``predict`` contract
(:class:`~repro.serve.transport.LocalClient` in process,
:class:`~repro.serve.transport.HTTPClient` over sockets), and reports
throughput plus client-observed p50/p99 latency — the numbers
``benchmarks/test_bench_serve_throughput.py`` records.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional, Sequence

import numpy as np

from .engine import AdmissionError
from .transport import ServeClientError

__all__ = ["run_load", "LoadReport"]


def _rejection_hint(exc: BaseException) -> Optional[float]:
    """The server's Retry-After hint in seconds if ``exc`` is backpressure.

    Admission rejections are load shedding, not failures — they arrive as
    raw :class:`AdmissionError` when the backend is driven in process, or
    as a 429 :class:`ServeClientError` through either transport client.
    Returns ``None`` for every other (genuine) failure.
    """
    if isinstance(exc, AdmissionError):
        return float(exc.retry_after_s)
    if isinstance(exc, ServeClientError) and exc.status == 429:
        return float(exc.retry_after) if exc.retry_after else 1.0
    return None


class LoadReport(dict):
    """Plain-dict load report (attribute access for the common fields)."""

    @property
    def throughput_rps(self) -> float:
        return self["throughput_rps"]

    @property
    def p50_ms(self) -> float:
        return self["latency_p50_ms"]

    @property
    def p99_ms(self) -> float:
        return self["latency_p99_ms"]


#: Cap on trace ids retained for slow requests — enough to paste into a
#: trace viewer, bounded so an all-slow run cannot balloon the report.
_SLOW_TRACE_IDS_KEPT = 32


def run_load(client, samples: Sequence, concurrency: int = 64,
             requests_per_client: int = 8,
             client_factory: Optional[Callable[[], object]] = None,
             retry_after_cap_s: float = 1.0,
             slow_ms: Optional[float] = None) -> LoadReport:
    """Drive ``client`` with closed-loop single-sample requests.

    Parameters
    ----------
    client:
        Any object with ``predict(samples) -> {"predictions": ...}``; used
        by every worker unless ``client_factory`` supplies per-worker
        clients (e.g. separate HTTP connections).
    samples:
        Pool of input samples; workers round-robin over it.
    concurrency:
        Number of closed-loop workers (in-flight requests at steady state).
    requests_per_client:
        Requests each worker issues before exiting.
    retry_after_cap_s:
        Ceiling on how long a worker honours the server's ``Retry-After``
        hint after an admission rejection (keeps overload tests bounded
        while still modelling well-behaved clients).
    slow_ms:
        When set, tally requests whose client-observed latency exceeds
        this threshold under ``slow`` and collect their echoed trace ids
        (the ``trace_id`` the traced serving path stamps into responses)
        under ``slow_trace_ids`` — the report then links straight into an
        exported trace (``repro trace summary``/Perfetto).

    Returns a :class:`LoadReport` with totals, throughput, latency
    percentiles, and failure counts.  Admission rejections (429 /
    :class:`AdmissionError`) are tallied under ``rejected`` — separate from
    ``failed`` — and the worker sleeps the (capped) ``Retry-After`` before
    its next request.  Other failed requests raise inside workers and are
    counted, not propagated.
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    samples = [np.asarray(sample, dtype=np.float64) for sample in samples]
    if not samples:
        raise ValueError("need at least one sample to send")

    latencies: list[float] = []
    errors: list[str] = []
    lock = threading.Lock()
    start_barrier = threading.Barrier(concurrency + 1)
    predictions = 0
    rejected = 0
    retry_wait_s = 0.0
    served_by: dict[int, int] = {}
    slow = 0
    slow_trace_ids: list[str] = []

    def _worker(worker_index: int) -> None:
        nonlocal predictions, rejected, retry_wait_s, slow
        worker_client = client_factory() if client_factory is not None else client
        start_barrier.wait()
        for request_index in range(requests_per_client):
            sample = samples[(worker_index + request_index) % len(samples)]
            begin = time.perf_counter()
            try:
                response = worker_client.predict([sample])
            except Exception as exc:  # noqa: BLE001 - count, don't kill the run
                hint = _rejection_hint(exc)
                if hint is not None:
                    wait = min(max(hint, 0.0), retry_after_cap_s)
                    with lock:
                        rejected += 1
                        retry_wait_s += wait
                    time.sleep(wait)
                    continue
                with lock:
                    errors.append(f"{type(exc).__name__}: {exc}")
                continue
            elapsed = time.perf_counter() - begin
            with lock:
                latencies.append(elapsed)
                predictions += len(response.get("predictions", ()))
                # Multi-worker backends stamp each response with the engine
                # worker that served it; tally the spread so load tests can
                # assert every worker actually took traffic.
                if "worker" in response:
                    served_by[response["worker"]] = (
                        served_by.get(response["worker"], 0) + 1)
                if slow_ms is not None and elapsed * 1000.0 > slow_ms:
                    slow += 1
                    trace_id = response.get("trace_id")
                    if trace_id and len(slow_trace_ids) < _SLOW_TRACE_IDS_KEPT:
                        slow_trace_ids.append(trace_id)

    threads = [threading.Thread(target=_worker, args=(index,), daemon=True)
               for index in range(concurrency)]
    for thread in threads:
        thread.start()
    start_barrier.wait()
    wall_start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start

    observed = np.asarray(latencies, dtype=np.float64)
    completed = int(observed.size)
    slow_fields = ({"slow_ms": float(slow_ms), "slow": slow,
                    "slow_trace_ids": slow_trace_ids}
                   if slow_ms is not None else {})
    return LoadReport(
        **slow_fields,
        concurrency=concurrency,
        requests_per_client=requests_per_client,
        requests_total=concurrency * requests_per_client,
        completed=completed,
        failed=len(errors),
        rejected=rejected,
        retry_wait_seconds=retry_wait_s,
        errors=errors[:10],
        predictions=predictions,
        served_by=dict(sorted(served_by.items())),
        wall_seconds=wall,
        throughput_rps=(completed / wall) if wall > 0 else 0.0,
        latency_p50_ms=(float(np.percentile(observed, 50)) * 1000.0
                        if completed else 0.0),
        latency_p99_ms=(float(np.percentile(observed, 99)) * 1000.0
                        if completed else 0.0),
        latency_mean_ms=(float(observed.mean()) * 1000.0 if completed else 0.0),
    )
