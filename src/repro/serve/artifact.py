"""Packed posit model artifacts: a versioned, self-describing checkpoint format.

The paper's deployment story (inherited from Deep Positron, its ref. [12]) is
that a model trained in posit is *served* in posit: parameters live in memory
as n-bit posit words, decoded by the hardware codec on the way into the MAC
array.  This module is the software realization of that storage format:

* :func:`save_model` packs every parameter through its format's ``to_bits``
  into a dense n-bit buffer (:mod:`repro.serve.packing`) with the layer-wise
  Eq. (2)/(3) scale factor recorded per tensor, so decoding is exactly
  ``from_bits(codes) * scale``;
* since **v2.0** the format is **per tensor**: the manifest's ``tensors[]``
  entries each carry their own registry spec, so a mixed-precision model —
  posit(8,1) conv weights next to posit(16,1) BatchNorm parameters, the
  paper's Table III footnote shape — packs each tensor at its own bit width
  with its own Eq. (2) scale (``format_map`` / ``resolve_format_map``);
* non-trainable buffers (BatchNorm running statistics) are stored as raw
  little-endian ``float32`` — they are not part of the paper's quantized
  state and are negligibly small;
* a JSON manifest carries the format specs, shapes, scales, byte offsets,
  model-architecture description, and — v2.0 — a SHA-256 **per segment**,
  so the reader can stream one tensor at a time (:func:`iter_tensors`) with
  peak extra memory bounded by the largest single segment instead of the
  whole blob, while still rejecting any single-byte corruption and naming
  the offending segment;
* the manifest may carry a **guardrail block** (since v1.1): a small
  held-out calibration batch (inputs, labels, the exact serving-path
  logits, and the reference accuracy) that every serving process replays at
  startup, refusing to serve when the replay is not bit-identical or the
  accuracy drifts beyond the recorded tolerance (:mod:`repro.serve.engine`);
* :func:`load_model` rebuilds the architecture from the manifest (via
  :mod:`repro.api`'s model zoo) and restores the decoded weights —
  bit-identical across save/load/save round trips for every registry format,
  including sub-byte widths like posit(6,1).

File layout (single file, magic ``RPAK`` + one version byte)::

    b"RPAK" | version:u8 | manifest_len:u32-LE | manifest JSON | packed blob

Version compatibility: this reader loads **v1** artifacts (monolithic
``blob_sha256``, one uniform format) bit-identically to the v1 reader — a
uniform format is just the degenerate per-tensor map — which the golden
fixtures under ``tests/serve/fixtures/`` pin byte for byte.  The v1 writer
is kept (``save_model(..., version=1)``) so those fixtures can be
regenerated and the matrix extended when a v3 ships.
"""

from __future__ import annotations

import fnmatch
import hashlib
import json
import os
import struct
from typing import Iterator, Mapping, Optional, Union

import numpy as np

from ..core.scaling import compute_scale_factor
from ..formats import NumberFormat, parse_format
from ..nn import Module
from .packing import pack_codes, packed_nbytes, unpack_codes

__all__ = [
    "ArtifactError",
    "save_model",
    "load_model",
    "load_state",
    "iter_tensors",
    "artifact_info",
    "read_manifest",
    "segment_table",
    "format_breakdown",
    "resolve_format_map",
    "fp32_state_nbytes",
    "ARTIFACT_VERSION",
    "ARTIFACT_MINOR_VERSION",
    "SUPPORTED_VERSIONS",
]

MAGIC = b"RPAK"
#: Current artifact major version: per-tensor formats + checksummed segments.
ARTIFACT_VERSION = 2
#: Manifest minor version.  Minor bumps are additive (new optional manifest
#: blocks like v1.1's ``guardrail``); readers accept any minor under a
#: supported major.
ARTIFACT_MINOR_VERSION = 0
#: Major versions this reader loads.  v1 artifacts (uniform format, one
#: monolithic blob checksum) decode bit-identically to the v1 reader.
SUPPORTED_VERSIONS = (1, 2)

#: Minor version the legacy v1 writer stamps (v1.1 = guardrail-capable).
_V1_MINOR_VERSION = 1

#: RPAK header: magic(4) + version(1) + manifest length prefix (u32 LE).
_HEADER_LEN = len(MAGIC) + 1 + 4

#: Manifest ``format`` value for raw little-endian float32 buffer tensors.
RAW_FP32 = "raw_fp32"


class ArtifactError(ValueError):
    """Raised for malformed, corrupted, or unsupported artifact files."""


def fp32_state_nbytes(model: Module) -> int:
    """Bytes the model's parameters + buffers occupy as dense FP32 arrays.

    The reference point for the artifact's memory-savings claim: an n-bit
    packed artifact should approach ``n/32`` of this (plus the manifest).
    """
    scalars = sum(p.size for p in model.parameters())
    scalars += sum(np.asarray(b).size for _, b in model.named_buffers())
    return scalars * 4


def _blob_sha256(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()


def _as_format(fmt: Union[NumberFormat, str]) -> NumberFormat:
    fmt = parse_format(fmt) if isinstance(fmt, str) else fmt
    if not isinstance(fmt, NumberFormat):
        raise TypeError(f"expected a NumberFormat or spec string, got {fmt!r}")
    return fmt


def resolve_format_map(names, default: Union[NumberFormat, str, None],
                       format_map: Optional[Mapping] = None,
                       ) -> "dict[str, NumberFormat]":
    """Resolve the storage format of named tensors against a format map.

    ``format_map`` maps tensor names — an exact name always wins; otherwise
    :mod:`fnmatch` patterns like ``"layers.*.weight"`` are tried in mapping
    order, first match wins — to registry spec strings or
    :class:`~repro.formats.NumberFormat` objects.  Names the map does not
    cover fall back to ``default``; with ``default=None`` uncovered names
    are simply left out of the result (the partial-resolution mode the
    exporter uses to layer CLI overrides on top of a policy-derived map).
    A map entry matching no tensor raises ``ValueError`` — a silently
    ignored override is a typo shipping the wrong precision.
    """
    names = list(names)
    default = _as_format(default) if default is not None else None
    if not format_map:
        if default is None:
            return {}
        return {name: default for name in names}
    entries = [(key, _as_format(value)) for key, value in format_map.items()]
    exact = {key: fmt for key, fmt in entries}
    resolved: dict[str, NumberFormat] = {}
    used: set = set()
    for name in names:
        if name in exact:
            resolved[name] = exact[name]
            used.add(name)
            continue
        for key, fmt in entries:
            if fnmatch.fnmatchcase(name, key):
                resolved[name] = fmt
                used.add(key)
                break
        else:
            if default is not None:
                resolved[name] = default
    unused = [key for key, _ in entries if key not in used]
    if unused:
        # Distinguish the two failure modes so the diagnostic is true:
        # an entry may genuinely match nothing (a typo), or match tensors
        # that a higher-precedence entry (exact name, earlier pattern)
        # always claimed first (a dead rule that cannot mean what was
        # intended).
        unmatched = [key for key in unused
                     if not any(key == name or fnmatch.fnmatchcase(name, key)
                                for name in names)]
        shadowed = [key for key in unused if key not in unmatched]
        problems = []
        if unmatched:
            problems.append(f"entries {unmatched} match no model tensor")
        if shadowed:
            problems.append(
                f"entries {shadowed} are shadowed by earlier entries or "
                f"exact names and never apply")
        raise ValueError(
            f"format_map {'; '.join(problems)} (known tensors: {names})")
    return resolved


def save_model(model: Module, path: Union[str, os.PathLike],
               fmt: Union[NumberFormat, str] = "posit(8,1)",
               rounding: str = "nearest",
               use_scaling: bool = True, sigma: int = 2,
               model_info: Optional[Mapping] = None,
               metadata: Optional[Mapping] = None,
               activation_calibration: Optional[Mapping] = None,
               scales: Optional[Mapping] = None,
               guardrail: Optional[Mapping] = None,
               format_map: Optional[Mapping] = None,
               version: Optional[int] = None) -> dict:
    """Write ``model`` to ``path`` as a packed artifact; returns the manifest.

    Parameters
    ----------
    model:
        Any :class:`repro.nn.Module`.  Parameters are quantized through
        their resolved format; buffers are stored raw (FP32).
    fmt:
        The default storage :class:`~repro.formats.NumberFormat` (or
        registry spec string) for every parameter ``format_map`` does not
        override.
    rounding:
        Rounding mode handed to ``to_bits``.
    use_scaling / sigma:
        Apply the paper's Eq. (2) layer-wise scale before encoding
        (``codes = to_bits(w / S_f)``, decoded as ``from_bits(codes) * S_f``).
    model_info:
        Architecture description enabling :func:`load_model` to rebuild the
        model without caller help: ``{"model": ..., "model_kwargs": ...,
        "num_classes": ..., "in_features": ..., "seed": ...}`` (the shape
        :func:`repro.serve.export.export_experiment` records).  Optional —
        without it :func:`load_state` still works against a caller-built
        model.
    metadata:
        Free-form JSON-able dict stored under ``"metadata"`` (training
        accuracy, sweep run id, ...).
    activation_calibration:
        Optional ``{"sigma": ..., "centers": {layer: log2_center}}`` block
        (see :func:`repro.serve.export.calibrate_activation_centers`); the
        serving engine re-installs these frozen centers so activation
        quantization is independent of micro-batch composition.
    scales:
        Optional ``{parameter_name: scale}`` overriding the Eq. (2)
        computation.  Re-exporting a loaded artifact with its manifest's
        recorded scales reproduces the file byte for byte — recomputing
        Eq. (2) on already-quantized weights could round to a different
        center (quantization perturbs the log2 mean), silently changing
        the stored codes.
    guardrail:
        Optional startup-guardrail block: ``{"inputs": [[...]...],
        "labels": [...], "logits": [[...]...], "reference_accuracy": ...,
        "tolerance": ..., "tensor_formats": {...}}`` (see
        :func:`repro.serve.export.build_guardrail`).  Serving processes
        replay it before accepting traffic and refuse to serve on drift.
    format_map:
        Optional per-tensor format overrides (exact parameter names or
        fnmatch patterns -> format spec), resolved through
        :func:`resolve_format_map`.  This is the mixed-precision export
        mirroring the training-time :class:`~repro.core.policy.RoleFormats`
        assignment.  v2 only.
    version:
        Artifact major version to write (default: :data:`ARTIFACT_VERSION`).
        ``version=1`` emits the legacy uniform-format layout byte-for-byte
        (used by the golden-fixture regeneration script); it rejects
        ``format_map``.
    """
    version = ARTIFACT_VERSION if version is None else int(version)
    if version not in SUPPORTED_VERSIONS:
        raise ValueError(
            f"cannot write artifact version {version}; "
            f"supported versions: {SUPPORTED_VERSIONS}")
    if version == 1 and format_map:
        raise ValueError(
            "artifact v1 packs every tensor in one uniform format; "
            "per-tensor format_map requires version 2")
    default_fmt = _as_format(fmt)
    param_names = [name for name, _ in model.named_parameters()]
    formats = resolve_format_map(param_names, default_fmt, format_map)

    tensors = []
    chunks = []
    offset = 0
    for name, param in model.named_parameters():
        tensor_fmt = formats[name]
        values = np.asarray(param.data, dtype=np.float64)
        if scales is not None and name in scales:
            scale = float(scales[name])
        elif use_scaling:
            scale = compute_scale_factor(values, sigma=sigma)
        else:
            scale = 1.0
        codes = tensor_fmt.to_bits(values / scale, mode=rounding)
        packed = pack_codes(codes, tensor_fmt.bits)
        expected = packed_nbytes(values.size, tensor_fmt.bits)
        assert len(packed) == expected, (name, len(packed), expected)
        entry = {
            "name": name,
            "kind": "param",
            "format": tensor_fmt.spec(),
            "bits": tensor_fmt.bits,
            "shape": list(values.shape),
            "scale": float(scale),
            "offset": offset,
            "nbytes": len(packed),
        }
        if version >= 2:
            entry["sha256"] = _blob_sha256(packed)
        tensors.append(entry)
        chunks.append(packed)
        offset += len(packed)
    for name, buffer in model.named_buffers():
        raw = np.asarray(buffer, dtype="<f4").tobytes()
        entry = {
            "name": name,
            "kind": "buffer",
            "format": RAW_FP32,
            "bits": 32,
            "shape": list(np.asarray(buffer).shape),
            "scale": 1.0,
            "offset": offset,
            "nbytes": len(raw),
        }
        if version >= 2:
            entry["sha256"] = _blob_sha256(raw)
        tensors.append(entry)
        chunks.append(raw)
        offset += len(raw)

    blob = b"".join(chunks)
    manifest = {
        "artifact": "repro.serve packed model",
        "version": version,
        "version_minor": (ARTIFACT_MINOR_VERSION if version >= 2
                          else _V1_MINOR_VERSION),
        "format": default_fmt.spec(),
        "rounding": rounding,
        "use_scaling": bool(use_scaling),
        "sigma": int(sigma),
        "tensors": tensors,
        "blob_nbytes": len(blob),
        "fp32_state_nbytes": fp32_state_nbytes(model),
    }
    if version == 1:
        # v1 readers verify one monolithic digest; v2 verifies per segment.
        manifest["blob_sha256"] = _blob_sha256(blob)
    if model_info is not None:
        manifest["model"] = dict(model_info)
    if metadata is not None:
        manifest["metadata"] = dict(metadata)
    if activation_calibration is not None:
        manifest["activation_calibration"] = dict(activation_calibration)
    if guardrail is not None:
        manifest["guardrail"] = dict(guardrail)

    manifest_bytes = json.dumps(manifest, sort_keys=True).encode("utf-8")
    directory = os.path.dirname(os.fspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "wb") as handle:
        handle.write(MAGIC)
        handle.write(struct.pack("<B", version))
        handle.write(struct.pack("<I", len(manifest_bytes)))
        handle.write(manifest_bytes)
        handle.write(blob)
    return manifest


# --------------------------------------------------------------------- #
# Reading
# --------------------------------------------------------------------- #
def _read_header(handle, path) -> tuple[int, dict, int]:
    """Parse magic/version/manifest from an open file.

    Returns ``(version, manifest, blob_offset)`` where ``blob_offset`` is
    the absolute file offset of the packed blob — every tensor segment
    lives at ``blob_offset + entry["offset"]``, which is what makes the v2
    layout ``mmap``-friendly (see :func:`segment_table`).
    """
    header = handle.read(_HEADER_LEN)
    if len(header) < _HEADER_LEN or header[:len(MAGIC)] != MAGIC:
        raise ArtifactError(f"{path}: not a repro.serve artifact (bad magic)")
    version = header[len(MAGIC)]
    if version not in SUPPORTED_VERSIONS:
        raise ArtifactError(
            f"{path}: unsupported artifact version {version} "
            f"(this build reads versions {SUPPORTED_VERSIONS})")
    (manifest_len,) = struct.unpack_from("<I", header, len(MAGIC) + 1)
    manifest_bytes = handle.read(manifest_len)
    if len(manifest_bytes) < manifest_len:
        raise ArtifactError(f"{path}: truncated manifest")
    try:
        manifest = json.loads(manifest_bytes)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ArtifactError(f"{path}: corrupted manifest ({exc})") from exc
    if not isinstance(manifest, dict) or "tensors" not in manifest:
        raise ArtifactError(f"{path}: manifest missing 'tensors'")
    return version, manifest, _HEADER_LEN + manifest_len


def _read_artifact(path: Union[str, os.PathLike]) -> tuple[dict, bytes]:
    """v1 path: read and validate the whole file; returns ``(manifest, blob)``.

    Kept verbatim from the v1 reader — monolithic in memory, monolithic
    checksum — so v1 artifacts load exactly as they always did (the golden
    compatibility suite pins this byte for byte).
    """
    with open(path, "rb") as handle:
        _version, manifest, blob_offset = _read_header(handle, path)
        blob = handle.read()
    declared = manifest.get("blob_nbytes")
    if declared is not None and declared != len(blob):
        raise ArtifactError(
            f"{path}: blob length mismatch (manifest says {declared} bytes, "
            f"file holds {len(blob)})"
        )
    digest = manifest.get("blob_sha256")
    if digest is not None and digest != _blob_sha256(blob):
        raise ArtifactError(f"{path}: blob checksum mismatch (corrupted weights)")
    return manifest, blob


def _decode_segment(entry: dict, raw: bytes) -> np.ndarray:
    """Decode one tensor's packed segment bytes to a float64 array."""
    shape = tuple(int(dim) for dim in entry["shape"])
    count = int(np.prod(shape)) if shape else 1
    if entry["format"] == RAW_FP32:
        values = np.frombuffer(raw, dtype="<f4", count=count).astype(np.float64)
        return values.reshape(shape)
    fmt = parse_format(entry["format"])
    codes = unpack_codes(raw, fmt.bits, count)
    values = np.asarray(fmt.from_bits(codes), dtype=np.float64) * float(entry["scale"])
    return values.reshape(shape)


def _decode_tensor(entry: dict, blob: bytes) -> np.ndarray:
    """Decode one manifest tensor entry from the (v1) in-memory blob."""
    offset, nbytes = int(entry["offset"]), int(entry["nbytes"])
    if offset < 0 or offset + nbytes > len(blob):
        raise ArtifactError(
            f"tensor {entry.get('name')!r} spans [{offset}, {offset + nbytes}) "
            f"outside the {len(blob)}-byte blob"
        )
    return _decode_segment(entry, blob[offset:offset + nbytes])


def _check_v2_length(path, manifest, blob_offset, file_size) -> int:
    """Validate the v2 file length; returns the declared blob size.

    A truncated file is diagnosed down to the first tensor segment that no
    longer fits — "re-pull the artifact" is actionable, "bad file" is not.
    """
    declared = int(manifest.get("blob_nbytes", 0))
    available = file_size - blob_offset
    if available > declared:
        raise ArtifactError(
            f"{path}: blob length mismatch (manifest says {declared} bytes, "
            f"file holds {available})")
    if available < declared:
        for entry in manifest["tensors"]:
            if int(entry["offset"]) + int(entry["nbytes"]) > available:
                raise ArtifactError(
                    f"{path}: truncated blob ({available} of {declared} "
                    f"bytes); tensor {entry['name']!r} segment "
                    f"[{entry['offset']}, "
                    f"{int(entry['offset']) + int(entry['nbytes'])}) is "
                    f"incomplete")
        raise ArtifactError(
            f"{path}: truncated blob ({available} of {declared} bytes)")
    return declared


def _read_segment(handle, path, entry, blob_offset, declared,
                  verify: bool = True) -> bytes:
    """Seek to and read one tensor's segment; verify its checksum."""
    offset, nbytes = int(entry["offset"]), int(entry["nbytes"])
    if offset < 0 or offset + nbytes > declared:
        raise ArtifactError(
            f"tensor {entry.get('name')!r} spans [{offset}, {offset + nbytes}) "
            f"outside the {declared}-byte blob")
    handle.seek(blob_offset + offset)
    raw = handle.read(nbytes)
    if len(raw) < nbytes:
        raise ArtifactError(
            f"{path}: truncated blob; tensor {entry['name']!r} segment is "
            f"incomplete")
    digest = entry.get("sha256")
    if verify and digest is not None and digest != _blob_sha256(raw):
        raise ArtifactError(
            f"{path}: segment checksum mismatch for tensor "
            f"{entry['name']!r} (corrupted weights)")
    return raw


def iter_tensors(path: Union[str, os.PathLike]
                 ) -> Iterator[tuple[str, np.ndarray]]:
    """Yield ``(name, array)`` pairs, decoding **one tensor at a time**.

    The streaming read path: for v2 artifacts only one packed segment (plus
    its decode scratch) is resident at a time, so peak extra memory is
    bounded by the largest single tensor segment, not the whole blob —
    the manifest is parsed once and each segment is seeked to directly.
    v1 artifacts have only a monolithic checksum, so they are validated
    whole-blob exactly as the v1 reader did, then decoded entry by entry.
    """
    path = os.fspath(path)
    with open(path, "rb") as handle:
        version, manifest, blob_offset = _read_header(handle, path)
        if version >= 2:
            file_size = os.fstat(handle.fileno()).st_size
            declared = _check_v2_length(path, manifest, blob_offset, file_size)
            for entry in manifest["tensors"]:
                raw = _read_segment(handle, path, entry, blob_offset, declared)
                yield entry["name"], _decode_segment(entry, raw)
            return
    manifest, blob = _read_artifact(path)
    for entry in manifest["tensors"]:
        yield entry["name"], _decode_tensor(entry, blob)


def load_state(path: Union[str, os.PathLike]) -> tuple[dict, dict]:
    """Decode an artifact into ``(state_dict, manifest)``.

    The state dict maps tensor names to float64 arrays, directly loadable
    with :meth:`repro.nn.Module.load_state_dict`.  v2 artifacts are decoded
    through the streaming path (:func:`iter_tensors`): the returned arrays
    are the only whole-model allocation; the packed file is never held in
    memory at once.
    """
    path = os.fspath(path)
    manifest = read_manifest(path)
    return dict(iter_tensors(path)), manifest


def _rebuild_model(manifest: dict) -> Module:
    """Construct the architecture named by the manifest's ``model`` block."""
    info = manifest.get("model")
    if not info:
        raise ArtifactError(
            "artifact has no 'model' architecture block; load it with "
            "load_state(path) into a model you construct yourself"
        )
    from ..api import ExperimentConfig, _build_model

    config = ExperimentConfig(
        model=info["model"],
        model_kwargs=dict(info.get("model_kwargs") or {}),
        num_classes=int(info.get("num_classes", 10)),
        seed=int(info.get("seed", 0)),
    )
    return _build_model(config, int(info.get("in_features", 0) or 1))


def load_model(path: Union[str, os.PathLike],
               model: Optional[Module] = None) -> tuple[Module, dict]:
    """Load an artifact into a model; returns ``(model, manifest)``.

    With ``model=None`` the architecture is rebuilt from the manifest's
    ``model`` block; otherwise the decoded state is loaded into the given
    module (shapes and names must match).  The returned model is in eval
    mode with weights decoded onto each tensor's format grid.
    """
    state, manifest = load_state(path)
    if model is None:
        model = _rebuild_model(manifest)
    try:
        model.load_state_dict(state)
    except (KeyError, ValueError) as exc:
        raise ArtifactError(f"artifact state does not fit the model: {exc}") from exc
    model.eval()
    return model, manifest


def artifact_info(path: Union[str, os.PathLike]) -> dict:
    """Validate ``path`` and return its manifest (no model construction).

    Integrity is fully checked — v1 through the monolithic blob digest, v2
    by streaming every segment through its own SHA-256 (constant memory) —
    so a passing ``artifact_info`` means ``load_state`` will not hit a
    corruption error.
    """
    path = os.fspath(path)
    with open(path, "rb") as handle:
        version, manifest, blob_offset = _read_header(handle, path)
        if version >= 2:
            file_size = os.fstat(handle.fileno()).st_size
            declared = _check_v2_length(path, manifest, blob_offset, file_size)
            for entry in manifest["tensors"]:
                _read_segment(handle, path, entry, blob_offset, declared)
            return manifest
    manifest, _blob = _read_artifact(path)
    return manifest


def read_manifest(path: Union[str, os.PathLike]) -> dict:
    """Parse just the manifest — header only, **no** blob integrity checks.

    The cheap introspection path (``/stats`` aggregation, size reporting):
    reads ``O(manifest)`` bytes however large the blob is.  Use
    :func:`artifact_info` when corruption must be ruled out.
    """
    path = os.fspath(path)
    with open(path, "rb") as handle:
        _version, manifest, _blob_offset = _read_header(handle, path)
    return manifest


def segment_table(path: Union[str, os.PathLike]) -> list[dict]:
    """Per-tensor segment layout with **absolute file offsets**.

    One row per tensor: ``name``, ``kind``, ``format``, ``bits``, ``shape``,
    ``scale``, ``nbytes``, ``offset`` (blob-relative) and ``file_offset``
    (absolute) — everything an ``mmap``-based loader needs to map one
    segment without parsing the blob, plus ``sha256`` where the artifact
    (v2) records it.  Layout only; segment checksums are *not* verified
    (use :func:`artifact_info` for that).
    """
    path = os.fspath(path)
    with open(path, "rb") as handle:
        _version, manifest, blob_offset = _read_header(handle, path)
    rows = []
    for entry in manifest["tensors"]:
        rows.append({
            "name": entry["name"],
            "kind": entry["kind"],
            "format": entry["format"],
            "bits": int(entry["bits"]),
            "shape": [int(dim) for dim in entry["shape"]],
            "scale": float(entry["scale"]),
            "offset": int(entry["offset"]),
            "file_offset": blob_offset + int(entry["offset"]),
            "nbytes": int(entry["nbytes"]),
            "sha256": entry.get("sha256"),
        })
    return rows


def format_breakdown(manifest: Mapping) -> dict:
    """Per-format size breakdown of a manifest's tensor table.

    Returns ``{spec: {"tensors": n, "scalars": n, "nbytes": n}}`` over the
    packed segments — the ``/stats`` / ``repro export`` reporting view of a
    mixed-precision artifact (raw FP32 buffers appear under ``"raw_fp32"``).
    """
    breakdown: dict[str, dict] = {}
    for entry in manifest["tensors"]:
        row = breakdown.setdefault(entry["format"],
                                   {"tensors": 0, "scalars": 0, "nbytes": 0})
        shape = tuple(int(dim) for dim in entry["shape"])
        row["tensors"] += 1
        row["scalars"] += int(np.prod(shape)) if shape else 1
        row["nbytes"] += int(entry["nbytes"])
    return breakdown
