"""Packed posit model artifacts: a versioned, self-describing checkpoint format.

The paper's deployment story (inherited from Deep Positron, its ref. [12]) is
that a model trained in posit is *served* in posit: parameters live in memory
as n-bit posit words, decoded by the hardware codec on the way into the MAC
array.  This module is the software realization of that storage format:

* :func:`save_model` packs every parameter through its format's ``to_bits``
  into a dense n-bit buffer (:mod:`repro.serve.packing`) with the layer-wise
  Eq. (2)/(3) scale factor recorded per tensor, so decoding is exactly
  ``from_bits(codes) * scale``;
* non-trainable buffers (BatchNorm running statistics) are stored as raw
  little-endian ``float32`` — they are not part of the paper's quantized
  state and are negligibly small;
* a JSON manifest carries the format specs, shapes, scales, byte offsets,
  model-architecture description, and a SHA-256 over the packed blob, so a
  corrupted or truncated artifact is rejected at load time;
* since v1.1 the manifest may carry a **guardrail block**: a small held-out
  calibration batch (inputs, labels, the exact serving-path logits, and the
  reference accuracy) that every serving process replays at startup,
  refusing to serve when the replay is not bit-identical or the accuracy
  drifts beyond the recorded tolerance (:mod:`repro.serve.engine`);
* :func:`load_model` rebuilds the architecture from the manifest (via
  :mod:`repro.api`'s model zoo) and restores the decoded weights —
  bit-identical across save/load/save round trips for every registry format,
  including sub-byte widths like posit(6,1).

File layout (single file, magic ``RPAK`` + one version byte)::

    b"RPAK" | version:u8 | manifest_len:u32-LE | manifest JSON | packed blob
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from typing import Mapping, Optional, Union

import numpy as np

from ..core.scaling import compute_scale_factor
from ..formats import NumberFormat, parse_format
from ..nn import Module
from .packing import pack_codes, packed_nbytes, unpack_codes

__all__ = [
    "ArtifactError",
    "save_model",
    "load_model",
    "load_state",
    "artifact_info",
    "fp32_state_nbytes",
    "ARTIFACT_VERSION",
    "ARTIFACT_MINOR_VERSION",
]

MAGIC = b"RPAK"
ARTIFACT_VERSION = 1
#: Manifest minor version.  Minor bumps are additive (new optional manifest
#: blocks like v1.1's ``guardrail``); readers accept any minor under the
#: same major, so v1.0 artifacts load unchanged and v1.1 artifacts degrade
#: gracefully on v1.0 readers (which simply ignore the new block).
ARTIFACT_MINOR_VERSION = 1

#: Manifest ``format`` value for raw little-endian float32 buffer tensors.
RAW_FP32 = "raw_fp32"


class ArtifactError(ValueError):
    """Raised for malformed, corrupted, or unsupported artifact files."""


def fp32_state_nbytes(model: Module) -> int:
    """Bytes the model's parameters + buffers occupy as dense FP32 arrays.

    The reference point for the artifact's memory-savings claim: an n-bit
    packed artifact should approach ``n/32`` of this (plus the manifest).
    """
    scalars = sum(p.size for p in model.parameters())
    scalars += sum(np.asarray(b).size for _, b in model.named_buffers())
    return scalars * 4


def _blob_sha256(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()


def save_model(model: Module, path: Union[str, os.PathLike],
               fmt: Union[NumberFormat, str] = "posit(8,1)",
               rounding: str = "nearest",
               use_scaling: bool = True, sigma: int = 2,
               model_info: Optional[Mapping] = None,
               metadata: Optional[Mapping] = None,
               activation_calibration: Optional[Mapping] = None,
               scales: Optional[Mapping] = None,
               guardrail: Optional[Mapping] = None) -> dict:
    """Write ``model`` to ``path`` as a packed artifact; returns the manifest.

    Parameters
    ----------
    model:
        Any :class:`repro.nn.Module`.  Parameters are quantized through
        ``fmt``; buffers are stored raw (FP32).
    fmt:
        The storage :class:`~repro.formats.NumberFormat` (or registry spec
        string) every parameter is packed in.
    rounding:
        Rounding mode handed to ``to_bits``.
    use_scaling / sigma:
        Apply the paper's Eq. (2) layer-wise scale before encoding
        (``codes = to_bits(w / S_f)``, decoded as ``from_bits(codes) * S_f``).
    model_info:
        Architecture description enabling :func:`load_model` to rebuild the
        model without caller help: ``{"model": ..., "model_kwargs": ...,
        "num_classes": ..., "in_features": ..., "seed": ...}`` (the shape
        :func:`repro.serve.export.export_experiment` records).  Optional —
        without it :func:`load_state` still works against a caller-built
        model.
    metadata:
        Free-form JSON-able dict stored under ``"metadata"`` (training
        accuracy, sweep run id, ...).
    activation_calibration:
        Optional ``{"sigma": ..., "centers": {layer: log2_center}}`` block
        (see :func:`repro.serve.export.calibrate_activation_centers`); the
        serving engine re-installs these frozen centers so activation
        quantization is independent of micro-batch composition.
    scales:
        Optional ``{parameter_name: scale}`` overriding the Eq. (2)
        computation.  Re-exporting a loaded artifact with its manifest's
        recorded scales reproduces the file byte for byte — recomputing
        Eq. (2) on already-quantized weights could round to a different
        center (quantization perturbs the log2 mean), silently changing
        the stored codes.
    guardrail:
        Optional v1.1 startup-guardrail block: ``{"inputs": [[...]...],
        "labels": [...], "logits": [[...]...], "reference_accuracy": ...,
        "tolerance": ...}`` (see
        :func:`repro.serve.export.build_guardrail`).  Serving processes
        replay it before accepting traffic and refuse to serve on drift.
    """
    fmt = parse_format(fmt) if isinstance(fmt, str) else fmt
    if not isinstance(fmt, NumberFormat):
        raise TypeError(f"fmt must be a NumberFormat or spec string, got {fmt!r}")

    tensors = []
    chunks = []
    offset = 0
    for name, param in model.named_parameters():
        values = np.asarray(param.data, dtype=np.float64)
        if scales is not None and name in scales:
            scale = float(scales[name])
        elif use_scaling:
            scale = compute_scale_factor(values, sigma=sigma)
        else:
            scale = 1.0
        codes = fmt.to_bits(values / scale, mode=rounding)
        packed = pack_codes(codes, fmt.bits)
        expected = packed_nbytes(values.size, fmt.bits)
        assert len(packed) == expected, (name, len(packed), expected)
        tensors.append({
            "name": name,
            "kind": "param",
            "format": fmt.spec(),
            "bits": fmt.bits,
            "shape": list(values.shape),
            "scale": float(scale),
            "offset": offset,
            "nbytes": len(packed),
        })
        chunks.append(packed)
        offset += len(packed)
    for name, buffer in model.named_buffers():
        raw = np.asarray(buffer, dtype="<f4").tobytes()
        tensors.append({
            "name": name,
            "kind": "buffer",
            "format": RAW_FP32,
            "bits": 32,
            "shape": list(np.asarray(buffer).shape),
            "scale": 1.0,
            "offset": offset,
            "nbytes": len(raw),
        })
        chunks.append(raw)
        offset += len(raw)

    blob = b"".join(chunks)
    manifest = {
        "artifact": "repro.serve packed model",
        "version": ARTIFACT_VERSION,
        "version_minor": ARTIFACT_MINOR_VERSION,
        "format": fmt.spec(),
        "rounding": rounding,
        "use_scaling": bool(use_scaling),
        "sigma": int(sigma),
        "tensors": tensors,
        "blob_nbytes": len(blob),
        "blob_sha256": _blob_sha256(blob),
        "fp32_state_nbytes": fp32_state_nbytes(model),
    }
    if model_info is not None:
        manifest["model"] = dict(model_info)
    if metadata is not None:
        manifest["metadata"] = dict(metadata)
    if activation_calibration is not None:
        manifest["activation_calibration"] = dict(activation_calibration)
    if guardrail is not None:
        manifest["guardrail"] = dict(guardrail)

    manifest_bytes = json.dumps(manifest, sort_keys=True).encode("utf-8")
    directory = os.path.dirname(os.fspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "wb") as handle:
        handle.write(MAGIC)
        handle.write(struct.pack("<B", ARTIFACT_VERSION))
        handle.write(struct.pack("<I", len(manifest_bytes)))
        handle.write(manifest_bytes)
        handle.write(blob)
    return manifest


def _read_artifact(path: Union[str, os.PathLike]) -> tuple[dict, bytes]:
    """Parse and validate an artifact file; returns ``(manifest, blob)``."""
    with open(path, "rb") as handle:
        data = handle.read()
    header_len = len(MAGIC) + 1 + 4
    if len(data) < header_len or data[:len(MAGIC)] != MAGIC:
        raise ArtifactError(f"{path}: not a repro.serve artifact (bad magic)")
    version = data[len(MAGIC)]
    if version != ARTIFACT_VERSION:
        raise ArtifactError(
            f"{path}: unsupported artifact version {version} "
            f"(this build reads version {ARTIFACT_VERSION})"
        )
    (manifest_len,) = struct.unpack_from("<I", data, len(MAGIC) + 1)
    if header_len + manifest_len > len(data):
        raise ArtifactError(f"{path}: truncated manifest")
    try:
        manifest = json.loads(data[header_len:header_len + manifest_len])
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ArtifactError(f"{path}: corrupted manifest ({exc})") from exc
    if not isinstance(manifest, dict) or "tensors" not in manifest:
        raise ArtifactError(f"{path}: manifest missing 'tensors'")
    blob = data[header_len + manifest_len:]
    declared = manifest.get("blob_nbytes")
    if declared is not None and declared != len(blob):
        raise ArtifactError(
            f"{path}: blob length mismatch (manifest says {declared} bytes, "
            f"file holds {len(blob)})"
        )
    digest = manifest.get("blob_sha256")
    if digest is not None and digest != _blob_sha256(blob):
        raise ArtifactError(f"{path}: blob checksum mismatch (corrupted weights)")
    return manifest, blob


def _decode_tensor(entry: dict, blob: bytes) -> np.ndarray:
    """Decode one manifest tensor entry from the blob to a float array."""
    offset, nbytes = int(entry["offset"]), int(entry["nbytes"])
    if offset < 0 or offset + nbytes > len(blob):
        raise ArtifactError(
            f"tensor {entry.get('name')!r} spans [{offset}, {offset + nbytes}) "
            f"outside the {len(blob)}-byte blob"
        )
    shape = tuple(int(dim) for dim in entry["shape"])
    count = int(np.prod(shape)) if shape else 1
    raw = blob[offset:offset + nbytes]
    if entry["format"] == RAW_FP32:
        values = np.frombuffer(raw, dtype="<f4", count=count).astype(np.float64)
        return values.reshape(shape)
    fmt = parse_format(entry["format"])
    codes = unpack_codes(raw, fmt.bits, count)
    values = np.asarray(fmt.from_bits(codes), dtype=np.float64) * float(entry["scale"])
    return values.reshape(shape)


def load_state(path: Union[str, os.PathLike]) -> tuple[dict, dict]:
    """Decode an artifact into ``(state_dict, manifest)``.

    The state dict maps tensor names to float64 arrays, directly loadable
    with :meth:`repro.nn.Module.load_state_dict`.
    """
    manifest, blob = _read_artifact(path)
    state = {}
    for entry in manifest["tensors"]:
        state[entry["name"]] = _decode_tensor(entry, blob)
    return state, manifest


def _rebuild_model(manifest: dict) -> Module:
    """Construct the architecture named by the manifest's ``model`` block."""
    info = manifest.get("model")
    if not info:
        raise ArtifactError(
            "artifact has no 'model' architecture block; load it with "
            "load_state(path) into a model you construct yourself"
        )
    from ..api import ExperimentConfig, _build_model

    config = ExperimentConfig(
        model=info["model"],
        model_kwargs=dict(info.get("model_kwargs") or {}),
        num_classes=int(info.get("num_classes", 10)),
        seed=int(info.get("seed", 0)),
    )
    return _build_model(config, int(info.get("in_features", 0) or 1))


def load_model(path: Union[str, os.PathLike],
               model: Optional[Module] = None) -> tuple[Module, dict]:
    """Load an artifact into a model; returns ``(model, manifest)``.

    With ``model=None`` the architecture is rebuilt from the manifest's
    ``model`` block; otherwise the decoded state is loaded into the given
    module (shapes and names must match).  The returned model is in eval
    mode with weights decoded onto the artifact format's value grid.
    """
    state, manifest = load_state(path)
    if model is None:
        model = _rebuild_model(manifest)
    try:
        model.load_state_dict(state)
    except (KeyError, ValueError) as exc:
        raise ArtifactError(f"artifact state does not fit the model: {exc}") from exc
    model.eval()
    return model, manifest


def artifact_info(path: Union[str, os.PathLike]) -> dict:
    """Validate ``path`` and return its manifest (no model construction)."""
    manifest, _ = _read_artifact(path)
    return manifest
