"""Adaptive serving control plane: autoscaling, SLO-tuned batching, backpressure.

The serving tier below this module is statically tuned: ``max_batch`` and
``max_wait_ms`` are fixed guesses, and the worker count is whatever the CLI
flag said.  ``benchmarks/results/serve_throughput.json`` recorded the cost
of that: on a single-core runner a 2-worker cluster served *fewer* requests
per second than one worker (dispatch fan-out costs more than it buys when
every process time-slices the same core), and a saturated admission queue
blew p99 out to 190 ms.  This module closes the loop:

* :class:`Controller` — a periodic control loop (injectable clock, so the
  unit tests tick it deterministically) that

  - **autoscales** the worker count between ``min_workers`` and
    ``max_workers`` from measured queue utilization, *capped at the host's
    core count* — on a core-starved host the cap scales a 2-worker cluster
    down to 1, which is exactly the recorded regression;
  - **tunes** ``max_wait_ms`` online with an AIMD rule against a p99 SLO:
    additive increase (more coalescing, more throughput) while p99 sits
    comfortably under the SLO, multiplicative decrease the moment it
    crosses — the classic stable shape for a feedback knob;
  - holds **hysteresis**: scaling decisions need ``hysteresis_ticks``
    consecutive ticks of agreeing evidence and are followed by a
    ``cooldown_ticks`` quiet period, so the worker count cannot flap.

* :class:`EnginePlant` / :class:`ClusterPlant` — adapters giving the
  controller one observe/actuate surface over an in-process
  :class:`~repro.serve.engine.InferenceEngine` or a multi-process
  :class:`~repro.serve.cluster.ServeCluster`.

* :func:`load_state` — the shared ok/busy/overloaded classification from
  queue utilization and recent rejections; the transports surface it
  through ``/healthz`` (clusters add ``degraded``/``down`` from worker
  liveness).

Backpressure itself lives where the queue lives: the engine's bounded
admission queue raises :class:`~repro.serve.engine.AdmissionError` (with a
measured ``retry_after_s``) instead of buffering unboundedly, and the
transport maps it to HTTP **429 + Retry-After** — load the clients can see
and pace against, instead of tail latency they can only suffer.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

__all__ = ["ControlConfig", "Controller", "EnginePlant", "ClusterPlant",
           "load_state", "LOAD_STATES"]

#: The /healthz load states, from healthy to dead.  ``degraded``/``down``
#: are liveness states (cluster workers missing); ``busy``/``overloaded``
#: are load states (admission queue filling / rejecting).
LOAD_STATES = ("ok", "busy", "overloaded", "degraded", "down")

#: Queue-utilization watermarks for the shared load classification.
_BUSY_UTILIZATION = 0.5
_OVERLOADED_UTILIZATION = 0.9


def load_state(queue_utilization: float, recent_rejects: float = 0.0) -> str:
    """Classify load from queue utilization and recent rejections.

    ``overloaded`` when the admission queue is effectively full (>= 90%)
    or requests were rejected within the observation window; ``busy`` at
    >= 50% utilization; ``ok`` otherwise.  Liveness states are layered on
    by the cluster, which knows how many workers are alive.
    """
    if recent_rejects > 0 or queue_utilization >= _OVERLOADED_UTILIZATION:
        return "overloaded"
    if queue_utilization >= _BUSY_UTILIZATION:
        return "busy"
    return "ok"


@dataclass
class ControlConfig:
    """Control-loop knobs (kept JSON-able for the CLI and ``/stats``).

    ``slo_p99_ms`` is the target the AIMD rule steers toward; the wait
    tuner never pushes p99 *to* the SLO — it backs off multiplicatively as
    soon as p99 crosses it and only grows the wait again while p99 sits
    under ``slo_headroom * slo_p99_ms``.
    """

    slo_p99_ms: float = 50.0
    interval_s: float = 0.5
    min_workers: int = 1
    max_workers: int = 4
    autoscale: bool = True
    tune_wait: bool = True
    wait_min_ms: float = 0.0
    wait_max_ms: float = 50.0
    wait_additive_ms: float = 0.5
    wait_backoff: float = 0.5
    slo_headroom: float = 0.7
    queue_high: float = 0.5
    queue_low: float = 0.05
    hysteresis_ticks: int = 3
    cooldown_ticks: int = 6

    def __post_init__(self):
        if self.slo_p99_ms <= 0:
            raise ValueError(f"slo_p99_ms must be > 0, got {self.slo_p99_ms}")
        if self.min_workers < 1:
            raise ValueError(f"min_workers must be >= 1, got {self.min_workers}")
        if self.max_workers < self.min_workers:
            raise ValueError(
                f"max_workers ({self.max_workers}) must be >= min_workers "
                f"({self.min_workers})")
        if not 0 < self.wait_backoff < 1:
            raise ValueError(
                f"wait_backoff must be in (0, 1), got {self.wait_backoff}")
        if not 0 < self.slo_headroom <= 1:
            raise ValueError(
                f"slo_headroom must be in (0, 1], got {self.slo_headroom}")
        if self.hysteresis_ticks < 1:
            raise ValueError(
                f"hysteresis_ticks must be >= 1, got {self.hysteresis_ticks}")

    def to_dict(self) -> dict:
        return dict(self.__dict__)


class EnginePlant:
    """Observe/actuate adapter over one in-process ``InferenceEngine``.

    A single engine has no workers to scale (that is the cluster's axis),
    so :meth:`scale_to` reports the fixed count; the wait tuner and the
    backpressure signals still apply.
    """

    def __init__(self, engine):
        self.engine = engine

    def observe(self) -> Optional[dict]:
        snapshot = self.engine.metrics.snapshot()
        total = snapshot["latency_ms"].get("total", {})
        return {
            "queue_depth": self.engine.queue_depth,
            "queue_capacity": self.engine.batching.queue_size,
            "p99_ms": total.get("p99", 0.0),
            "latency_samples": total.get("count", 0),
            "arrival_rate_rps": snapshot["rates"].get("arrivals", 0.0),
            "completion_rate_rps": snapshot["rates"].get("completed", 0.0),
            "rejected_recent": snapshot["counts"].get("rejected", 0.0),
            "batch_occupancy": snapshot["gauges"].get(
                "batch_occupancy", {}).get("mean", 0.0),
            "workers": 1,
            "workers_alive": 1,
        }

    def get_max_wait_ms(self) -> float:
        return self.engine.max_wait_ms

    def set_max_wait_ms(self, value: float) -> None:
        self.engine.set_max_wait_ms(value)

    def scale_to(self, target: int) -> int:
        return 1


class ClusterPlant:
    """Observe/actuate adapter over a ``ServeCluster``."""

    def __init__(self, cluster):
        self.cluster = cluster

    def observe(self) -> Optional[dict]:
        if not self.cluster.running:
            return None
        return self.cluster.control_snapshot()

    def get_max_wait_ms(self) -> float:
        return self.cluster.max_wait_ms

    def set_max_wait_ms(self, value: float) -> None:
        self.cluster.set_max_wait_ms(value)

    def scale_to(self, target: int) -> int:
        return self.cluster.scale_to(target)


class Controller:
    """Periodic control loop over one plant (engine or cluster).

    Deterministic core: :meth:`tick` reads one observation, applies the
    AIMD wait rule and the autoscaling rule, actuates the plant, and
    returns a decision record — the unit tests call it directly with a
    fake clock and a scripted plant.  :meth:`start`/:meth:`stop` run the
    same tick on a daemon thread every ``config.interval_s`` for
    production use.

    ``cpu_count`` caps the autoscaler above ``min_workers``: workers
    beyond the host's cores cannot add MAC throughput, only dispatch
    overhead (the measured 1-vs-2-worker regression on a single core), so
    the cap applies immediately — no hysteresis for physics.
    """

    def __init__(self, plant, config: Optional[ControlConfig] = None,
                 clock: Callable[[], float] = time.monotonic,
                 cpu_count: Optional[int] = None):
        self.plant = plant
        self.config = config or ControlConfig()
        self.clock = clock
        self.cpu_count = int(cpu_count if cpu_count is not None
                             else (os.cpu_count() or 1))
        self.ticks = 0
        self.scale_events: list[dict] = []
        self.last_decision: Optional[dict] = None
        #: Bounded history of every *actuation* (scale moves and AIMD wait
        #: changes) with its reason — decisions used to be invisible the
        #: tick after they happened; /stats and the
        #: ``repro_controller_decisions_total`` Prometheus family read
        #: from here.
        self.decision_log: deque = deque(maxlen=256)
        self.decision_counts: dict[str, int] = {}
        self._high_ticks = 0
        self._low_ticks = 0
        self._cooldown = 0
        self._thread: Optional[threading.Thread] = None
        self._stop_event = threading.Event()

    # ------------------------------------------------------------------ #
    # The deterministic core
    # ------------------------------------------------------------------ #
    @property
    def worker_cap(self) -> int:
        """Autoscaling ceiling: min(max_workers, cores), never below min."""
        return max(self.config.min_workers,
                   min(self.config.max_workers, self.cpu_count))

    def _tune_wait(self, observation: dict, decision: dict) -> None:
        config = self.config
        if not config.tune_wait or not observation.get("latency_samples"):
            return
        wait = float(self.plant.get_max_wait_ms())
        p99 = float(observation.get("p99_ms", 0.0))
        if p99 > config.slo_p99_ms:
            # Multiplicative decrease: over SLO, shed coalescing delay fast.
            target = max(config.wait_min_ms, wait * config.wait_backoff)
            reason = "p99-over-slo"
        elif p99 < config.slo_headroom * config.slo_p99_ms:
            # Additive increase: comfortably under SLO, buy batch occupancy.
            target = min(config.wait_max_ms, wait + config.wait_additive_ms)
            reason = "p99-under-headroom"
        else:
            return
        if target != wait:
            self.plant.set_max_wait_ms(target)
            decision["max_wait_ms"] = target
            decision["wait_reason"] = reason
            self._note("wait_backoff" if reason == "p99-over-slo"
                       else "wait_increase",
                       reason, **{"from": wait, "to": target, "p99_ms": p99})

    def _autoscale(self, observation: dict, decision: dict) -> None:
        config = self.config
        if not config.autoscale:
            return
        workers = int(observation.get("workers", 1))
        cap = self.worker_cap
        capacity = max(1.0, float(observation.get("queue_capacity", 1)))
        utilization = float(observation.get("queue_depth", 0)) / capacity
        decision["queue_utilization"] = utilization
        if workers > cap:
            # Core starvation (or a lowered max): apply the cap now.
            self._scale(workers, cap, "over-core-cap", decision)
            return
        if workers < config.min_workers:
            self._scale(workers, config.min_workers, "under-min", decision)
            return
        if self._cooldown > 0:
            self._cooldown -= 1
            decision["cooldown"] = self._cooldown
            return
        if utilization >= config.queue_high:
            self._high_ticks += 1
            self._low_ticks = 0
        elif utilization <= config.queue_low:
            self._low_ticks += 1
            self._high_ticks = 0
        else:
            self._high_ticks = self._low_ticks = 0
        if self._high_ticks >= config.hysteresis_ticks and workers < cap:
            self._scale(workers, workers + 1, "sustained-queue-depth", decision)
        elif (self._low_ticks >= config.hysteresis_ticks
              and workers > config.min_workers):
            self._scale(workers, workers - 1, "sustained-idle", decision)

    def _scale(self, current: int, target: int, reason: str,
               decision: dict) -> None:
        self.plant.scale_to(target)
        self._high_ticks = self._low_ticks = 0
        self._cooldown = self.config.cooldown_ticks
        event = {"tick": self.ticks, "from": current, "to": target,
                 "reason": reason, "at": self.clock()}
        self.scale_events.append(event)
        del self.scale_events[:-64]
        decision["scaled"] = event
        self._note("scale_up" if target > current else "scale_down",
                   reason, **{"from": current, "to": target})

    def _note(self, action: str, reason: str, **fields) -> None:
        """Log one actuation into the bounded decision history."""
        entry = {"tick": self.ticks, "at": self.clock(),
                 "action": action, "reason": reason, **fields}
        self.decision_log.append(entry)
        self.decision_counts[action] = self.decision_counts.get(action, 0) + 1

    def tick(self, observation: Optional[dict] = None) -> dict:
        """One control step; pass ``observation`` to bypass the plant read.

        Returns the decision record: what was observed, what (if anything)
        was actuated, and why — also kept as :attr:`last_decision` so
        ``/stats`` can show the controller's reasoning.
        """
        self.ticks += 1
        if observation is None:
            observation = self.plant.observe()
        decision: dict = {"tick": self.ticks, "at": self.clock()}
        if observation is None:  # plant not started yet
            decision["skipped"] = "no-observation"
            self.last_decision = decision
            return decision
        decision["observed"] = {
            key: observation.get(key)
            for key in ("queue_depth", "p99_ms", "arrival_rate_rps",
                        "rejected_recent", "workers", "workers_alive")}
        self._tune_wait(observation, decision)
        self._autoscale(observation, decision)
        self.last_decision = decision
        return decision

    # ------------------------------------------------------------------ #
    # The production loop
    # ------------------------------------------------------------------ #
    def start(self) -> "Controller":
        """Tick every ``interval_s`` on a daemon thread (idempotent)."""
        if self._thread is None or not self._thread.is_alive():
            self._stop_event.clear()
            self._thread = threading.Thread(target=self._loop,
                                            name="repro-serve-controller",
                                            daemon=True)
            self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop_event.wait(self.config.interval_s):
            try:
                self.tick()
            except Exception:  # noqa: BLE001 - the loop must survive a bad
                # observation (a worker died mid-poll); the next tick reads
                # fresh state.
                continue

    def stop(self) -> None:
        self._stop_event.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "Controller":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def describe(self) -> dict:
        """Controller state for ``/stats``: config, cap, recent decisions."""
        return {
            "config": self.config.to_dict(),
            "cpu_count": self.cpu_count,
            "worker_cap": self.worker_cap,
            "ticks": self.ticks,
            "scale_events": list(self.scale_events[-8:]),
            "last_decision": self.last_decision,
            "decisions": list(self.decision_log)[-16:],
            "decision_counts": dict(self.decision_counts),
        }
