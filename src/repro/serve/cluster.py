"""Multi-worker serving: N engine processes behind one dispatcher.

The single-process :class:`~repro.serve.engine.InferenceEngine` is
thread-safe but GIL-bound: its NumPy forward passes release the GIL only
partially, so one process cannot use more than roughly one core of MAC
throughput.  :class:`ServeCluster` is the scale-out tier the ROADMAP asks
for: a supervisor forks ``workers`` engine processes, each of which loads
the packed artifact *independently* (and therefore replays the artifact's
v1.1 startup guardrail independently — a worker that cannot reproduce the
recorded logits exits non-zero and never serves), and dispatches requests
over per-worker :func:`multiprocessing.Pipe` pairs.

Dispatch is round-robin with a least-outstanding fallback: the rotor picks
the next live worker, but when that worker already has more requests in
flight than the least-loaded one (a slow batch, a GC pause), the request is
routed to the least-loaded worker instead — cheap balancing that keeps one
stuck worker from queueing the world.

Supervision: a monitor thread watches worker processes.  A crashed worker
(segfault, OOM kill, operator ``kill -9``) has its in-flight requests
failed over to the surviving workers (one transparent retry per request),
and is restarted up to ``max_restarts`` times — the restarted process
re-runs the guardrail before rejoining the rotation.  Workers that *refuse*
to start (guardrail violation) are not restarted: the failure is
deterministic, so a restart loop would only burn CPU.

Shutdown drains: :meth:`ServeCluster.stop` stops admitting new requests,
sends every worker a shutdown message (each worker drains its engine's
queued requests before exiting), then joins — escalating to ``terminate``
only for workers that fail to exit in time.

The cluster exposes the same client contract as the transports
(``predict``/``healthz``/``stats``), so :func:`repro.serve.loadgen.run_load`
drives it directly and :class:`repro.serve.transport.ClusterServer` puts it
behind one HTTP listener.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import queue
import signal
import threading
import time
from concurrent.futures import Future, TimeoutError as FuturesTimeout
from typing import Optional, Sequence, Union

import numpy as np

from .engine import BatchingConfig, GuardrailError, InferenceEngine

__all__ = ["ClusterConfig", "ServeCluster", "ClusterError", "WorkerCrashed"]


class ClusterError(RuntimeError):
    """Cluster-level failure (no live workers, failed startup, stopped)."""


class WorkerCrashed(RuntimeError):
    """A request was in flight on a worker that died (internal; retried)."""


#: Worker states tracked by the supervisor.
_STARTING, _READY, _FAILED, _DEAD = "starting", "ready", "failed", "dead"

#: Persistent handler threads per worker process.  Bounds in-worker request
#: concurrency (and therefore the micro-batcher's coalescing opportunity
#: from one worker's perspective); spawning a thread per message instead
#: costs ~0.2 ms/request, which at scale-out throughputs dominates the MACs.
_WORKER_POOL_SIZE = 32


def _cluster_context(name: Optional[str]) -> mp.context.BaseContext:
    """Start-method context: ``fork`` where available (fast, inherits the
    loaded library), else ``spawn``; overridable for platform debugging."""
    if name is not None:
        return mp.get_context(name)
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


def _worker_main(index: int, artifact: str, batching: Optional[dict],
                 quantize_activations: bool, verify_guardrail: bool,
                 conn) -> None:
    """Engine worker process body.

    Handshake first: construct the engine (which replays the guardrail) and
    report ``ready`` or ``failed`` — a guardrail violation makes the worker
    exit with a non-zero status without ever serving a request.  Then serve
    messages off the pipe through a persistent handler pool, so concurrent
    dispatches coalesce in the engine's micro-batcher exactly like
    concurrent HTTP clients do in the single-process server.
    """
    # A terminal Ctrl-C signals the whole foreground process group; shutdown
    # is the supervisor's job (via the pipe), so workers must not die — or
    # spray KeyboardInterrupt tracebacks — on the operator's SIGINT.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread/platform
        pass

    send_lock = threading.Lock()

    def reply(payload: dict) -> None:
        with send_lock:
            try:
                conn.send(payload)
            except (BrokenPipeError, OSError):  # supervisor is gone
                pass

    try:
        engine = InferenceEngine(
            artifact,
            BatchingConfig(**batching) if batching else None,
            quantize_activations=quantize_activations,
            verify_guardrail=verify_guardrail)
    except BaseException as exc:  # noqa: BLE001 - report, then refuse to serve
        reply({"kind": "failed", "worker": index,
               "etype": type(exc).__name__, "error": str(exc)})
        conn.close()
        raise SystemExit(1)

    reply({"kind": "ready", "worker": index, "pid": os.getpid(),
           "guardrail": engine.guardrail_status})
    engine.start()

    def handle(message: dict) -> None:
        try:
            if message["kind"] == "predict":
                samples = [np.asarray(sample, dtype=np.float64)
                           for sample in message["samples"]]
                futures = [engine.submit(sample) for sample in samples]
                logits = [future.result(timeout=60.0) for future in futures]
                result = {
                    "predictions": [int(np.argmax(row)) for row in logits],
                    "logits": [np.asarray(row, dtype=np.float64).tolist()
                               for row in logits],
                    "worker": index,
                }
            elif message["kind"] == "stats":
                result = {**engine.stats(), "worker": index, "pid": os.getpid()}
            elif message["kind"] == "ping":
                result = {"worker": index, "pid": os.getpid()}
            else:
                raise ValueError(f"unknown message kind {message['kind']!r}")
        except BaseException as exc:  # noqa: BLE001 - errors travel the pipe
            reply({"id": message["id"], "ok": False,
                   "etype": type(exc).__name__, "error": str(exc)})
            return
        reply({"id": message["id"], "ok": True, "result": result})

    work: queue.Queue = queue.Queue()

    def pool_loop() -> None:
        while True:
            message = work.get()
            if message is None:
                return
            handle(message)

    pool = [threading.Thread(target=pool_loop, daemon=True,
                             name=f"repro-serve-handler-{index}-{rank}")
            for rank in range(_WORKER_POOL_SIZE)]
    for thread in pool:
        thread.start()

    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message.get("kind") == "shutdown":
                break
            work.put(message)
    finally:
        for _ in pool:
            work.put(None)
        for thread in pool:
            thread.join(timeout=5.0)
        engine.stop()  # drains already-queued requests before exit
        conn.close()


class ClusterConfig:
    """Knobs for :class:`ServeCluster` (kept JSON-able for the CLI)."""

    def __init__(self, workers: int = 2, max_restarts: int = 2,
                 start_timeout_s: float = 120.0,
                 monitor_interval_s: float = 0.2,
                 mp_context: Optional[str] = None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {max_restarts}")
        self.workers = int(workers)
        self.max_restarts = int(max_restarts)
        self.start_timeout_s = float(start_timeout_s)
        self.monitor_interval_s = float(monitor_interval_s)
        self.mp_context = mp_context


class _WorkerHandle:
    """Supervisor-side view of one worker process."""

    def __init__(self, index: int):
        self.index = index
        self.process = None
        self.conn = None
        self.state = _STARTING
        self.ready_event = threading.Event()
        self.failure: Optional[str] = None
        self.guardrail: Optional[str] = None
        self.pid: Optional[int] = None
        self.restarts = 0
        self.dispatched = 0
        self.outstanding = 0
        #: Incremented on every (re)spawn; reader threads tag themselves
        #: with it so a stale reader (previous incarnation's pipe) cannot
        #: mutate the state of a restarted worker.
        self.epoch = 0
        self.send_lock = threading.Lock()
        self.pending_lock = threading.Lock()
        self.pending: dict[int, Future] = {}
        self.reader: Optional[threading.Thread] = None

    def fail_pending(self, reason: str) -> None:
        with self.pending_lock:
            pending, self.pending = self.pending, {}
            self.outstanding = 0
        for future in pending.values():
            if not future.done():
                future.set_exception(WorkerCrashed(reason))


class ServeCluster:
    """Supervise N engine worker processes behind one dispatch surface.

    Parameters mirror :class:`~repro.serve.engine.InferenceEngine` where
    they overlap; ``config`` holds the cluster-level knobs.  Use as a
    context manager (or call :meth:`start`/:meth:`stop`)::

        with ServeCluster("model.rpak", ClusterConfig(workers=4)) as cluster:
            payload = cluster.predict([sample])

    :meth:`start` raises :class:`GuardrailError` when *every* worker
    refuses to serve because of a guardrail violation (the acceptance
    condition for a corrupted artifact), and :class:`ClusterError` when no
    worker comes up for any other reason.
    """

    def __init__(self, artifact: Union[str, os.PathLike],
                 config: Optional[ClusterConfig] = None,
                 batching: Optional[BatchingConfig] = None,
                 quantize_activations: bool = True,
                 verify_guardrail: bool = True):
        self.artifact_path = os.fspath(artifact)
        self.config = config or ClusterConfig()
        self.batching = batching
        self.quantize_activations = quantize_activations
        self.verify_guardrail = verify_guardrail
        self._ctx = _cluster_context(self.config.mp_context)
        self._handles: list[_WorkerHandle] = []
        self._rotor = itertools.cycle(range(self.config.workers))
        self._ids = itertools.count(1)
        self._id_lock = threading.Lock()
        self._started = False
        self._stopping = False
        self._monitor: Optional[threading.Thread] = None
        self._monitor_stop = threading.Event()
        self._started_at = time.perf_counter()
        self._format_summary: Optional[dict] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def _spawn(self, handle: _WorkerHandle) -> None:
        """(Re)start one worker: fresh pipe, process, and reader thread."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(handle.index, self.artifact_path,
                  (self.batching.__dict__ if self.batching else None),
                  self.quantize_activations, self.verify_guardrail,
                  child_conn),
            name=f"repro-serve-worker-{handle.index}",
            daemon=True)
        handle.conn = parent_conn
        handle.process = process
        handle.state = _STARTING
        handle.ready_event.clear()
        handle.failure = None
        handle.epoch += 1
        process.start()
        child_conn.close()  # the child's end lives in the child now
        handle.reader = threading.Thread(
            target=self._read_loop, args=(handle, parent_conn, handle.epoch),
            name=f"repro-serve-reader-{handle.index}", daemon=True)
        handle.reader.start()

    def _read_loop(self, handle: _WorkerHandle, conn, epoch: int) -> None:
        """Pump one worker's pipe: handshakes and request replies."""
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            kind = message.get("kind")
            if kind == "ready":
                handle.pid = message.get("pid")
                handle.guardrail = message.get("guardrail")
                handle.state = _READY
                handle.ready_event.set()
                continue
            if kind == "failed":
                handle.failure = f"{message.get('etype')}: {message.get('error')}"
                handle.state = _FAILED
                handle.ready_event.set()
                continue
            with handle.pending_lock:
                future = handle.pending.pop(message.get("id"), None)
                if future is not None:
                    handle.outstanding = max(0, handle.outstanding - 1)
            if future is None:
                continue
            if message.get("ok"):
                future.set_result(message["result"])
            else:
                exc_type = {"ValueError": ValueError,
                            "TypeError": TypeError}.get(
                                message.get("etype"), RuntimeError)
                future.set_exception(exc_type(message.get("error", "worker error")))
        # Pipe closed: the worker exited or crashed.  Startup refusals keep
        # their 'failed' state (deterministic, never restarted); anything
        # else becomes 'dead' and is the monitor's problem.  A stale reader
        # (the handle has already been respawned under a newer epoch) must
        # not touch the new incarnation's state or pending requests.
        if handle.epoch != epoch:
            return
        if handle.state not in (_FAILED,):
            handle.state = _DEAD
        handle.ready_event.set()
        handle.fail_pending(f"worker {handle.index} exited mid-request")

    def start(self, timeout: Optional[float] = None) -> "ServeCluster":
        """Start every worker and wait for their startup handshakes."""
        if self._started:
            return self
        timeout = self.config.start_timeout_s if timeout is None else timeout
        self._handles = [_WorkerHandle(index)
                         for index in range(self.config.workers)]
        for handle in self._handles:
            self._spawn(handle)
        deadline = time.monotonic() + timeout
        for handle in self._handles:
            remaining = max(0.0, deadline - time.monotonic())
            if not handle.ready_event.wait(remaining):
                handle.failure = "startup handshake timed out"
                handle.state = _FAILED
        ready = [handle for handle in self._handles if handle.state == _READY]
        if not ready:
            failures = "; ".join(
                f"worker {handle.index}: {handle.failure or handle.state}"
                for handle in self._handles)
            self._terminate_all()
            if all("GuardrailError" in (handle.failure or "")
                   for handle in self._handles):
                raise GuardrailError(
                    f"every worker refused to serve {self.artifact_path}: "
                    f"{failures}")
            raise ClusterError(
                f"no worker of {self.config.workers} started for "
                f"{self.artifact_path}: {failures}")
        self._started = True
        self._stopping = False
        self._monitor_stop.clear()
        self._monitor = threading.Thread(target=self._monitor_loop,
                                         name="repro-serve-monitor",
                                         daemon=True)
        self._monitor.start()
        return self

    def _monitor_loop(self) -> None:
        """Detect crashed workers and restart them within budget."""
        while not self._monitor_stop.wait(self.config.monitor_interval_s):
            for handle in self._handles:
                if self._stopping:
                    return
                process = handle.process
                if (handle.state in (_READY, _DEAD)
                        and process is not None and not process.is_alive()):
                    if handle.state == _READY:
                        handle.state = _DEAD
                        handle.fail_pending(
                            f"worker {handle.index} died (pid {handle.pid})")
                    if handle.restarts < self.config.max_restarts:
                        handle.restarts += 1
                        self._spawn(handle)

    def _terminate_all(self) -> None:
        for handle in self._handles:
            if handle.process is not None and handle.process.is_alive():
                handle.process.terminate()
            if handle.process is not None:
                handle.process.join(timeout=5.0)
            if handle.conn is not None:
                handle.conn.close()

    def stop(self, drain_timeout_s: float = 10.0) -> None:
        """Drain and stop every worker, then the monitor (idempotent)."""
        if not self._started:
            return
        self._stopping = True
        self._monitor_stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
        for handle in self._handles:
            if handle.conn is not None and handle.state == _READY:
                try:
                    with handle.send_lock:
                        handle.conn.send({"kind": "shutdown"})
                except (BrokenPipeError, OSError):
                    pass
        deadline = time.monotonic() + drain_timeout_s
        for handle in self._handles:
            if handle.process is not None:
                handle.process.join(timeout=max(0.1, deadline - time.monotonic()))
        self._terminate_all()
        self._started = False

    def __enter__(self) -> "ServeCluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def _live_handles(self) -> list[_WorkerHandle]:
        return [handle for handle in self._handles if handle.state == _READY]

    def _pick_worker(self, exclude: frozenset = frozenset()) -> _WorkerHandle:
        """Round-robin over live workers, least-outstanding fallback.

        ``exclude`` holds worker indices a failed-over request already
        tried; they are avoided while any other live worker exists (the
        reader thread may not have noticed the crash yet, and handing the
        retry back to the same dying worker would waste the one failover).
        """
        live = self._live_handles()
        if not live:
            raise ClusterError("no live workers (all crashed or refused to serve)")
        if exclude:
            preferred = [handle for handle in live
                         if handle.index not in exclude]
            if preferred:
                live = preferred
        live_indices = {handle.index for handle in live}
        choice = None
        for _ in range(self.config.workers):
            index = next(self._rotor)
            if index in live_indices:
                choice = next(handle for handle in live
                              if handle.index == index)
                break
        least = min(live, key=lambda handle: handle.outstanding)
        if choice is None or choice.outstanding > least.outstanding:
            return least
        return choice

    def _request(self, handle: _WorkerHandle, message: dict,
                 timeout: float) -> dict:
        """Send one message to one worker and wait for its reply."""
        with self._id_lock:
            request_id = next(self._ids)
        message = {**message, "id": request_id}
        future: Future = Future()
        with handle.pending_lock:
            handle.pending[request_id] = future
            handle.outstanding += 1
        try:
            with handle.send_lock:
                handle.conn.send(message)
        except (BrokenPipeError, OSError) as exc:
            with handle.pending_lock:
                handle.pending.pop(request_id, None)
                handle.outstanding = max(0, handle.outstanding - 1)
            # A broken pipe means the worker is gone even if its reader
            # thread has not hit EOF yet; mark it dead now so dispatch
            # stops routing to it and the monitor restarts it promptly.
            if handle.state == _READY:
                handle.state = _DEAD
                handle.fail_pending(f"worker {handle.index} pipe closed")
            raise WorkerCrashed(f"worker {handle.index} pipe closed") from exc
        if message["kind"] == "predict":
            handle.dispatched += 1
        return future.result(timeout=timeout)

    def predict(self, samples: Sequence, timeout: float = 60.0) -> dict:
        """Transport-contract prediction: route one request to one worker.

        A request whose worker dies mid-flight is retried once on a
        surviving worker — the failover that makes ``kill -9`` of a worker
        invisible to well-behaved clients.  Raises ``ValueError`` for
        malformed input (mapped to HTTP 400), :class:`ClusterError` when no
        workers are live (503), and
        :class:`concurrent.futures.TimeoutError` on timeout (504).
        """
        if not self._started or self._stopping:
            raise ClusterError("cluster is not running; use start() or a with-block")
        if not isinstance(samples, (list, tuple)) or not samples:
            raise ValueError("'inputs' must be a non-empty list of samples")
        payload = [np.asarray(sample, dtype=np.float64) for sample in samples]
        last_error: Optional[BaseException] = None
        tried: set[int] = set()
        for _attempt in range(2):
            handle = self._pick_worker(exclude=frozenset(tried))
            tried.add(handle.index)
            try:
                return self._request(handle, {"kind": "predict",
                                              "samples": payload}, timeout)
            except WorkerCrashed as exc:
                last_error = exc
                continue
        raise ClusterError(
            f"request failed over twice without a survivor: {last_error}")

    def predict_on(self, worker_index: int, samples: Sequence,
                   timeout: float = 60.0) -> dict:
        """Pin one prediction to one worker (cross-worker identity checks)."""
        for handle in self._live_handles():
            if handle.index == worker_index:
                payload = [np.asarray(sample, dtype=np.float64)
                           for sample in samples]
                return self._request(handle, {"kind": "predict",
                                              "samples": payload}, timeout)
        raise ClusterError(f"worker {worker_index} is not live")

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def healthz(self) -> dict:
        """Liveness summary: ``ok`` (all up), ``degraded`` (some), ``down``."""
        states = [handle.state for handle in self._handles]
        alive = states.count(_READY)
        status = ("ok" if alive == self.config.workers
                  else "degraded" if alive else "down")
        return {
            "status": status,
            "artifact": self.artifact_path,
            "workers": self.config.workers,
            "alive": alive,
            "worker_states": states,
            "guardrail": [handle.guardrail for handle in self._handles],
        }

    def _artifact_formats(self) -> dict:
        """Cached per-tensor format summary of the served artifact.

        Read once from the manifest header (no blob traffic) — every worker
        serves the same file, so the supervisor can answer the ``/stats``
        format-breakdown question without a worker round trip.
        """
        if self._format_summary is None:
            from .artifact import format_breakdown, read_manifest

            try:
                manifest = read_manifest(self.artifact_path)
            except (OSError, ValueError):
                self._format_summary = {}
            else:
                param_specs = {entry["format"]
                               for entry in manifest["tensors"]
                               if entry.get("kind") == "param"}
                self._format_summary = {
                    "format": manifest.get("format"),
                    "formats": format_breakdown(manifest),
                    "mixed_precision": len(param_specs) > 1,
                }
        return self._format_summary

    def stats(self, timeout: float = 10.0) -> dict:
        """Aggregate worker stats plus supervisor-side dispatch counters.

        Requests/batches/energy are sums over live workers; the latency
        percentiles are request-weighted means of the per-worker
        percentiles (exact merging would need the raw samples), with the
        per-worker rows included for anyone who wants the real thing.
        """
        per_worker = []
        for handle in self._live_handles():
            try:
                per_worker.append(self._request(handle, {"kind": "stats"},
                                                timeout))
            except (WorkerCrashed, FuturesTimeout, ClusterError):
                continue
        requests = sum(row["requests"] for row in per_worker)
        batches = sum(row["batches"] for row in per_worker)
        batched = sum(row["mean_batch_size"] * row["batches"]
                      for row in per_worker)

        def weighted(key: str) -> float:
            if not requests:
                return 0.0
            return sum(row[key] * row["requests"] for row in per_worker) / requests

        return {
            "artifact": self.artifact_path,
            **self._artifact_formats(),
            "workers": self.config.workers,
            "alive": len(self._live_handles()),
            "restarts": sum(handle.restarts for handle in self._handles),
            "dispatched": [handle.dispatched for handle in self._handles],
            "requests": requests,
            "batches": batches,
            "mean_batch_size": (batched / batches) if batches else 0.0,
            "latency_p50_ms": weighted("latency_p50_ms"),
            "latency_p99_ms": weighted("latency_p99_ms"),
            "energy_uj_total": sum(row["energy_uj_total"] for row in per_worker),
            "uptime_s": time.perf_counter() - self._started_at,
            "per_worker": per_worker,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ServeCluster({self.artifact_path!r}, "
                f"workers={self.config.workers}, "
                f"alive={len(self._live_handles())})")
