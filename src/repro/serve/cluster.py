"""Multi-worker serving: N engine processes behind one dispatcher.

The single-process :class:`~repro.serve.engine.InferenceEngine` is
thread-safe but GIL-bound: its NumPy forward passes release the GIL only
partially, so one process cannot use more than roughly one core of MAC
throughput.  :class:`ServeCluster` is the scale-out tier the ROADMAP asks
for: a supervisor forks ``workers`` engine processes, each of which loads
the packed artifact *independently* (and therefore replays the artifact's
v1.1 startup guardrail independently — a worker that cannot reproduce the
recorded logits exits non-zero and never serves), and dispatches requests
over per-worker :func:`multiprocessing.Pipe` pairs.

Dispatch is round-robin with a least-outstanding fallback: the rotor picks
the next live worker, but when that worker already has more requests in
flight than the least-loaded one (a slow batch, a GC pause), the request is
routed to the least-loaded worker instead — cheap balancing that keeps one
stuck worker from queueing the world.

Supervision: a monitor thread watches worker processes.  A crashed worker
(segfault, OOM kill, operator ``kill -9``) has its in-flight requests
failed over to the surviving workers (one transparent retry per request),
and is restarted up to ``max_restarts`` times — the restarted process
re-runs the guardrail before rejoining the rotation.  Workers that *refuse*
to start (guardrail violation) are not restarted: the failure is
deterministic, so a restart loop would only burn CPU.

Shutdown drains: :meth:`ServeCluster.stop` stops admitting new requests,
sends every worker a shutdown message (each worker drains its engine's
queued requests before exiting), then joins — escalating to ``terminate``
only for workers that fail to exit in time.

The cluster exposes the same client contract as the transports
(``predict``/``healthz``/``stats``), so :func:`repro.serve.loadgen.run_load`
drives it directly and :class:`repro.serve.transport.ClusterServer` puts it
behind one HTTP listener.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import queue
import signal
import threading
import time
from concurrent.futures import Future, TimeoutError as FuturesTimeout
from typing import Optional, Sequence, Union

import numpy as np

from ..obs.tracing import TraceConfig, Tracer
from .control import load_state as classify_load
from .engine import AdmissionError, BatchingConfig, GuardrailError, InferenceEngine
from .metrics import MetricsCollector, merge_snapshots

__all__ = ["ClusterConfig", "ServeCluster", "ClusterError", "WorkerCrashed"]


class ClusterError(RuntimeError):
    """Cluster-level failure (no live workers, failed startup, stopped)."""


class WorkerCrashed(RuntimeError):
    """A request was in flight on a worker that died (internal; retried)."""


#: Worker states tracked by the supervisor.  ``retired`` is terminal and
#: voluntary: the autoscaler drained the worker and shut it down — never
#: restarted, never dispatched to, not a liveness defect.
_STARTING, _READY, _FAILED, _DEAD, _RETIRED = (
    "starting", "ready", "failed", "dead", "retired")

#: Persistent handler threads per worker process.  Bounds in-worker request
#: concurrency (and therefore the micro-batcher's coalescing opportunity
#: from one worker's perspective); spawning a thread per message instead
#: costs ~0.2 ms/request, which at scale-out throughputs dominates the MACs.
_WORKER_POOL_SIZE = 32


def _cluster_context(name: Optional[str]) -> mp.context.BaseContext:
    """Start-method context: ``fork`` where available (fast, inherits the
    loaded library), else ``spawn``; overridable for platform debugging."""
    if name is not None:
        return mp.get_context(name)
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


def _worker_main(index: int, artifact: str, batching: Optional[dict],
                 quantize_activations: bool, verify_guardrail: bool,
                 conn, tracing: Optional[dict] = None) -> None:
    """Engine worker process body.

    Handshake first: construct the engine (which replays the guardrail) and
    report ``ready`` or ``failed`` — a guardrail violation makes the worker
    exit with a non-zero status without ever serving a request.  Then serve
    messages off the pipe through a persistent handler pool, so concurrent
    dispatches coalesce in the engine's micro-batcher exactly like
    concurrent HTTP clients do in the single-process server.
    """
    # A terminal Ctrl-C signals the whole foreground process group; shutdown
    # is the supervisor's job (via the pipe), so workers must not die — or
    # spray KeyboardInterrupt tracebacks — on the operator's SIGINT.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread/platform
        pass

    send_lock = threading.Lock()

    def reply(payload: dict) -> None:
        with send_lock:
            try:
                conn.send(payload)
            except (BrokenPipeError, OSError):  # supervisor is gone
                pass

    try:
        engine = InferenceEngine(
            artifact,
            BatchingConfig(**batching) if batching else None,
            quantize_activations=quantize_activations,
            verify_guardrail=verify_guardrail,
            tracing=TraceConfig.from_dict(tracing) if tracing else None)
    except BaseException as exc:  # noqa: BLE001 - report, then refuse to serve
        reply({"kind": "failed", "worker": index,
               "etype": type(exc).__name__, "error": str(exc)})
        conn.close()
        raise SystemExit(1)

    reply({"kind": "ready", "worker": index, "pid": os.getpid(),
           "guardrail": engine.guardrail_status})
    engine.start()

    def handle(message: dict) -> None:
        try:
            if message["kind"] == "predict":
                samples = [np.asarray(sample, dtype=np.float64)
                           for sample in message["samples"]]
                trace_ctx = message.get("trace")
                futures = [engine.submit(sample, trace=trace_ctx)
                           for sample in samples]
                logits = [future.result(timeout=60.0) for future in futures]
                result = {
                    "predictions": [int(np.argmax(row)) for row in logits],
                    "logits": [np.asarray(row, dtype=np.float64).tolist()
                               for row in logits],
                    "worker": index,
                }
                if trace_ctx and trace_ctx.get("sampled", True):
                    # Ship this request's worker-side spans back with the
                    # reply; the supervisor merges them into one trace.
                    # Safe to collect here: the engine closes a request's
                    # spans before resolving its future.
                    result["trace_spans"] = [
                        span.to_dict() for span in
                        engine.tracer.spans(trace_ctx.get("trace_id"))]
            elif message["kind"] == "stats":
                result = {**engine.stats(), "worker": index, "pid": os.getpid()}
            elif message["kind"] == "metrics":
                # The control-plane poll: cheap rolling-window signals only
                # (no energy pricing, no lifetime percentile scan).
                result = {
                    "worker": index,
                    "queue_depth": engine.queue_depth,
                    "queue_capacity": engine.batching.queue_size,
                    "max_wait_ms": engine.max_wait_ms,
                    "load_state": engine.load_state(),
                    "metrics": engine.metrics.snapshot(),
                }
            elif message["kind"] == "control":
                # Actuation from the supervisor's controller.
                if "max_wait_ms" in message:
                    engine.set_max_wait_ms(message["max_wait_ms"])
                result = {"worker": index, "max_wait_ms": engine.max_wait_ms}
            elif message["kind"] == "ping":
                result = {"worker": index, "pid": os.getpid()}
            else:
                raise ValueError(f"unknown message kind {message['kind']!r}")
        except BaseException as exc:  # noqa: BLE001 - errors travel the pipe
            payload = {"id": message["id"], "ok": False,
                       "etype": type(exc).__name__, "error": str(exc)}
            retry_after = getattr(exc, "retry_after_s", None)
            if retry_after is not None:
                # Backpressure must survive the pipe: the supervisor
                # rebuilds a typed AdmissionError so the transport can
                # answer 429 + Retry-After.
                payload["retry_after_s"] = float(retry_after)
            reply(payload)
            return
        reply({"id": message["id"], "ok": True, "result": result})

    work: queue.Queue = queue.Queue()

    def pool_loop() -> None:
        while True:
            message = work.get()
            if message is None:
                return
            handle(message)

    pool = [threading.Thread(target=pool_loop, daemon=True,
                             name=f"repro-serve-handler-{index}-{rank}")
            for rank in range(_WORKER_POOL_SIZE)]
    for thread in pool:
        thread.start()

    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message.get("kind") == "shutdown":
                break
            work.put(message)
    finally:
        for _ in pool:
            work.put(None)
        for thread in pool:
            thread.join(timeout=5.0)
        engine.stop()  # drains already-queued requests before exit
        conn.close()


class ClusterConfig:
    """Knobs for :class:`ServeCluster` (kept JSON-able for the CLI)."""

    def __init__(self, workers: int = 2, max_restarts: int = 2,
                 start_timeout_s: float = 120.0,
                 monitor_interval_s: float = 0.2,
                 mp_context: Optional[str] = None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {max_restarts}")
        self.workers = int(workers)
        self.max_restarts = int(max_restarts)
        self.start_timeout_s = float(start_timeout_s)
        self.monitor_interval_s = float(monitor_interval_s)
        self.mp_context = mp_context


class _WorkerHandle:
    """Supervisor-side view of one worker process."""

    def __init__(self, index: int):
        self.index = index
        self.process = None
        self.conn = None
        self.state = _STARTING
        self.ready_event = threading.Event()
        self.failure: Optional[str] = None
        self.guardrail: Optional[str] = None
        self.pid: Optional[int] = None
        self.restarts = 0
        self.dispatched = 0
        self.outstanding = 0
        #: Incremented on every (re)spawn; reader threads tag themselves
        #: with it so a stale reader (previous incarnation's pipe) cannot
        #: mutate the state of a restarted worker.
        self.epoch = 0
        self.send_lock = threading.Lock()
        self.pending_lock = threading.Lock()
        self.pending: dict[int, Future] = {}
        self.reader: Optional[threading.Thread] = None

    def fail_pending(self, reason: str) -> None:
        with self.pending_lock:
            pending, self.pending = self.pending, {}
            self.outstanding = 0
        for future in pending.values():
            if not future.done():
                future.set_exception(WorkerCrashed(reason))


class ServeCluster:
    """Supervise N engine worker processes behind one dispatch surface.

    Parameters mirror :class:`~repro.serve.engine.InferenceEngine` where
    they overlap; ``config`` holds the cluster-level knobs.  Use as a
    context manager (or call :meth:`start`/:meth:`stop`)::

        with ServeCluster("model.rpak", ClusterConfig(workers=4)) as cluster:
            payload = cluster.predict([sample])

    :meth:`start` raises :class:`GuardrailError` when *every* worker
    refuses to serve because of a guardrail violation (the acceptance
    condition for a corrupted artifact), and :class:`ClusterError` when no
    worker comes up for any other reason.
    """

    def __init__(self, artifact: Union[str, os.PathLike],
                 config: Optional[ClusterConfig] = None,
                 batching: Optional[BatchingConfig] = None,
                 quantize_activations: bool = True,
                 verify_guardrail: bool = True,
                 tracing: Optional[TraceConfig] = None):
        self.artifact_path = os.fspath(artifact)
        self.config = config or ClusterConfig()
        self.batching = batching
        self.quantize_activations = quantize_activations
        self.verify_guardrail = verify_guardrail
        #: Request tracing (repro.obs).  The supervisor owns the sampling
        #: decision (head-based, once per request); workers receive the
        #: same config at spawn and record spans only for requests whose
        #: pipe message carries a sampled trace context, which the reply
        #: ships back for the supervisor to merge — one request, one trace,
        #: across processes.
        self.tracing = tracing
        self.tracer = Tracer(tracing)
        self._ctx = _cluster_context(self.config.mp_context)
        self._handles: list[_WorkerHandle] = []
        #: Workers the autoscaler removed: kept until drained so their
        #: in-flight replies still resolve, swept on stop().
        self._retired: list[_WorkerHandle] = []
        #: Guards handle-list mutations (autoscaling) against the monitor,
        #: dispatch, and introspection walking the list concurrently.
        self._handles_lock = threading.Lock()
        self._rotor = itertools.count()
        self._next_index = itertools.count(self.config.workers)
        self._target_workers = self.config.workers
        self._ids = itertools.count(1)
        self._id_lock = threading.Lock()
        self._started = False
        self._stopping = False
        self._monitor: Optional[threading.Thread] = None
        self._monitor_stop = threading.Event()
        self._started_at = time.perf_counter()
        self._format_summary: Optional[dict] = None
        #: Supervisor-side rolling counters: dispatches and the admission
        #: rejects relayed from workers — the cheap signals healthz grades
        #: load from without a worker round trip.
        self.metrics = MetricsCollector()
        self._max_wait_ms = float((batching or BatchingConfig()).max_wait_ms)
        self._queue_size = int((batching or BatchingConfig()).queue_size)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def _batching_payload(self) -> dict:
        """Worker BatchingConfig kwargs, with the *tuned* coalescing wait.

        A worker spawned after the controller moved ``max_wait_ms`` (a
        crash restart, an autoscale add) must join at the tuned operating
        point, not the startup guess.
        """
        payload = dict(self.batching.__dict__) if self.batching else {}
        payload["max_wait_ms"] = self._max_wait_ms
        return payload

    def _spawn(self, handle: _WorkerHandle) -> None:
        """(Re)start one worker: fresh pipe, process, and reader thread."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(handle.index, self.artifact_path,
                  self._batching_payload(),
                  self.quantize_activations, self.verify_guardrail,
                  child_conn,
                  self.tracing.to_dict() if self.tracing else None),
            name=f"repro-serve-worker-{handle.index}",
            daemon=True)
        handle.conn = parent_conn
        handle.process = process
        handle.state = _STARTING
        handle.ready_event.clear()
        handle.failure = None
        handle.epoch += 1
        process.start()
        child_conn.close()  # the child's end lives in the child now
        handle.reader = threading.Thread(
            target=self._read_loop, args=(handle, parent_conn, handle.epoch),
            name=f"repro-serve-reader-{handle.index}", daemon=True)
        handle.reader.start()

    def _read_loop(self, handle: _WorkerHandle, conn, epoch: int) -> None:
        """Pump one worker's pipe: handshakes and request replies."""
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            kind = message.get("kind")
            if kind == "ready":
                handle.pid = message.get("pid")
                handle.guardrail = message.get("guardrail")
                if handle.state != _RETIRED:
                    # A worker retired while still starting must not
                    # re-enter the rotation on its late handshake.
                    handle.state = _READY
                handle.ready_event.set()
                continue
            if kind == "failed":
                handle.failure = f"{message.get('etype')}: {message.get('error')}"
                handle.state = _FAILED
                handle.ready_event.set()
                continue
            with handle.pending_lock:
                future = handle.pending.pop(message.get("id"), None)
                if future is not None:
                    handle.outstanding = max(0, handle.outstanding - 1)
            if future is None:
                continue
            if message.get("ok"):
                future.set_result(message["result"])
            elif message.get("etype") == "AdmissionError":
                # Typed backpressure: rebuild the engine's rejection with
                # its Retry-After hint and tally it supervisor-side so
                # healthz can report 'overloaded' without a worker poll.
                self.metrics.count("rejected")
                future.set_exception(AdmissionError(
                    message.get("error", "request queue full"),
                    retry_after_s=float(message.get("retry_after_s", 1.0))))
            else:
                exc_type = {"ValueError": ValueError,
                            "TypeError": TypeError}.get(
                                message.get("etype"), RuntimeError)
                future.set_exception(exc_type(message.get("error", "worker error")))
        # Pipe closed: the worker exited or crashed.  Startup refusals keep
        # their 'failed' state (deterministic, never restarted); anything
        # else becomes 'dead' and is the monitor's problem.  A stale reader
        # (the handle has already been respawned under a newer epoch) must
        # not touch the new incarnation's state or pending requests.
        if handle.epoch != epoch:
            return
        if handle.state not in (_FAILED, _RETIRED):
            handle.state = _DEAD
        handle.ready_event.set()
        handle.fail_pending(f"worker {handle.index} exited mid-request")

    def start(self, timeout: Optional[float] = None) -> "ServeCluster":
        """Start every worker and wait for their startup handshakes."""
        if self._started:
            return self
        timeout = self.config.start_timeout_s if timeout is None else timeout
        self._target_workers = self.config.workers
        self._handles = [_WorkerHandle(index)
                         for index in range(self.config.workers)]
        for handle in self._handles:
            self._spawn(handle)
        deadline = time.monotonic() + timeout
        for handle in self._handles:
            remaining = max(0.0, deadline - time.monotonic())
            if not handle.ready_event.wait(remaining):
                handle.failure = "startup handshake timed out"
                handle.state = _FAILED
        ready = [handle for handle in self._handles if handle.state == _READY]
        if not ready:
            failures = "; ".join(
                f"worker {handle.index}: {handle.failure or handle.state}"
                for handle in self._handles)
            self._terminate_all()
            if all("GuardrailError" in (handle.failure or "")
                   for handle in self._handles):
                raise GuardrailError(
                    f"every worker refused to serve {self.artifact_path}: "
                    f"{failures}")
            raise ClusterError(
                f"no worker of {self.config.workers} started for "
                f"{self.artifact_path}: {failures}")
        self._started = True
        self._stopping = False
        self._monitor_stop.clear()
        self._monitor = threading.Thread(target=self._monitor_loop,
                                         name="repro-serve-monitor",
                                         daemon=True)
        self._monitor.start()
        return self

    def _monitor_loop(self) -> None:
        """Detect crashed workers and restart them within budget."""
        while not self._monitor_stop.wait(self.config.monitor_interval_s):
            with self._handles_lock:
                handles = list(self._handles)
            for handle in handles:
                if self._stopping:
                    return
                process = handle.process
                if (handle.state in (_READY, _DEAD)
                        and process is not None and not process.is_alive()):
                    if handle.state == _READY:
                        handle.state = _DEAD
                        handle.fail_pending(
                            f"worker {handle.index} died (pid {handle.pid})")
                    if handle.restarts < self.config.max_restarts:
                        handle.restarts += 1
                        self._spawn(handle)

    def _terminate_all(self) -> None:
        with self._handles_lock:
            handles = list(self._handles) + list(self._retired)
        for handle in handles:
            if handle.process is not None and handle.process.is_alive():
                handle.process.terminate()
            if handle.process is not None:
                handle.process.join(timeout=5.0)
            if handle.conn is not None:
                handle.conn.close()

    def stop(self, drain_timeout_s: float = 10.0) -> None:
        """Drain and stop every worker, then the monitor (idempotent)."""
        if not self._started:
            return
        self._stopping = True
        self._monitor_stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
        with self._handles_lock:
            handles = list(self._handles)
        for handle in handles:
            if handle.conn is not None and handle.state == _READY:
                try:
                    with handle.send_lock:
                        handle.conn.send({"kind": "shutdown"})
                except (BrokenPipeError, OSError):
                    pass
        deadline = time.monotonic() + drain_timeout_s
        for handle in handles:
            if handle.process is not None:
                handle.process.join(timeout=max(0.1, deadline - time.monotonic()))
        self._terminate_all()
        self._started = False

    def __enter__(self) -> "ServeCluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def _live_handles(self) -> list[_WorkerHandle]:
        with self._handles_lock:
            return [handle for handle in self._handles
                    if handle.state == _READY]

    def _pick_worker(self, exclude: frozenset = frozenset()) -> _WorkerHandle:
        """Round-robin over live workers, least-outstanding fallback.

        The worker set is dynamic under autoscaling, so the rotor is a
        plain counter over the *current* live list rather than a cycle of
        startup indices.  ``exclude`` holds worker indices a failed-over
        request already tried; they are avoided while any other live
        worker exists (the reader thread may not have noticed the crash
        yet, and handing the retry back to the same dying worker would
        waste the one failover).
        """
        live = self._live_handles()
        if not live:
            raise ClusterError("no live workers (all crashed or refused to serve)")
        if exclude:
            preferred = [handle for handle in live
                         if handle.index not in exclude]
            if preferred:
                live = preferred
        choice = live[next(self._rotor) % len(live)]
        least = min(live, key=lambda handle: handle.outstanding)
        if choice.outstanding > least.outstanding:
            return least
        return choice

    def _request(self, handle: _WorkerHandle, message: dict,
                 timeout: float) -> dict:
        """Send one message to one worker and wait for its reply."""
        with self._id_lock:
            request_id = next(self._ids)
        message = {**message, "id": request_id}
        future: Future = Future()
        with handle.pending_lock:
            handle.pending[request_id] = future
            handle.outstanding += 1
        try:
            with handle.send_lock:
                handle.conn.send(message)
        except (BrokenPipeError, OSError) as exc:
            with handle.pending_lock:
                handle.pending.pop(request_id, None)
                handle.outstanding = max(0, handle.outstanding - 1)
            # A broken pipe means the worker is gone even if its reader
            # thread has not hit EOF yet; mark it dead now so dispatch
            # stops routing to it and the monitor restarts it promptly.
            if handle.state == _READY:
                handle.state = _DEAD
                handle.fail_pending(f"worker {handle.index} pipe closed")
            raise WorkerCrashed(f"worker {handle.index} pipe closed") from exc
        if message["kind"] == "predict":
            handle.dispatched += 1
        return future.result(timeout=timeout)

    def predict(self, samples: Sequence, timeout: float = 60.0,
                trace_id: Optional[str] = None) -> dict:
        """Transport-contract prediction: route one request to one worker.

        A request whose worker dies mid-flight is retried once on a
        surviving worker — the failover that makes ``kill -9`` of a worker
        invisible to well-behaved clients.  With tracing enabled (and the
        request sampled) the supervisor opens the ``request`` root span,
        wraps each attempt in a ``dispatch`` child (a failover retry is
        the *same* trace, second dispatch annotated ``retry=True``), ships
        the context to the worker in the pipe message, merges the worker's
        spans from the reply, and echoes ``trace_id`` in the payload.
        ``trace_id`` lets a client (the HTTP header path) supply its own.

        Raises ``ValueError`` for malformed input (mapped to HTTP 400),
        :class:`ClusterError` when no workers are live (503), and
        :class:`concurrent.futures.TimeoutError` on timeout (504).
        """
        if not self._started or self._stopping:
            raise ClusterError("cluster is not running; use start() or a with-block")
        if not isinstance(samples, (list, tuple)) or not samples:
            raise ValueError("'inputs' must be a non-empty list of samples")
        payload = [np.asarray(sample, dtype=np.float64) for sample in samples]
        root = self.tracer.begin("request", trace_id=trace_id,
                                 annotations={"samples": len(payload)})
        # An explicitly unsampled context stops worker engines from rolling
        # their own dice on this request — the supervisor's decision is the
        # only one, so a trace is always whole or absent.
        ctx_unsampled = {"sampled": False} if self.tracer.enabled else None
        last_error: Optional[BaseException] = None
        tried: set[int] = set()
        for attempt in range(2):
            try:
                handle = self._pick_worker(exclude=frozenset(tried))
            except ClusterError:
                if root is not None:
                    root.finish(error="no live workers")
                raise
            tried.add(handle.index)
            message = {"kind": "predict", "samples": payload}
            dispatch = None
            if root is not None:
                dispatch = root.child("dispatch", annotations={
                    "worker": handle.index, "attempt": attempt,
                    "retry": attempt > 0})
                message["trace"] = dispatch.context()
            elif ctx_unsampled is not None:
                message["trace"] = ctx_unsampled
            try:
                result = self._request(handle, message, timeout)
            except WorkerCrashed as exc:
                if dispatch is not None:
                    dispatch.finish(error=str(exc))
                last_error = exc
                continue
            except BaseException as exc:
                if dispatch is not None:
                    dispatch.finish(error=repr(exc))
                if root is not None:
                    root.finish(error=repr(exc))
                raise
            if dispatch is not None:
                dispatch.finish()
            if root is not None:
                self.tracer.ingest(result.pop("trace_spans", ()))
                root.finish()
                result.setdefault("trace_id", root.trace_id)
            else:
                result.pop("trace_spans", None)
            return result
        if root is not None:
            root.finish(error=f"failed over twice: {last_error}")
        raise ClusterError(
            f"request failed over twice without a survivor: {last_error}")

    def predict_on(self, worker_index: int, samples: Sequence,
                   timeout: float = 60.0) -> dict:
        """Pin one prediction to one worker (cross-worker identity checks)."""
        for handle in self._live_handles():
            if handle.index == worker_index:
                payload = [np.asarray(sample, dtype=np.float64)
                           for sample in samples]
                return self._request(handle, {"kind": "predict",
                                              "samples": payload}, timeout)
        raise ClusterError(f"worker {worker_index} is not live")

    # ------------------------------------------------------------------ #
    # Control surface (the autoscaler's actuators and sensors)
    # ------------------------------------------------------------------ #
    @property
    def running(self) -> bool:
        return self._started and not self._stopping

    @property
    def target_workers(self) -> int:
        """The worker count the cluster is currently steering toward."""
        return self._target_workers

    @property
    def max_wait_ms(self) -> float:
        """The tuned coalescing wait last broadcast to the workers."""
        return self._max_wait_ms

    def set_max_wait_ms(self, value: float) -> float:
        """Broadcast a new coalescing wait to every live worker engine."""
        value = max(0.0, float(value))
        self._max_wait_ms = value  # recorded first: restarts inherit it
        for handle in self._live_handles():
            try:
                self._request(handle, {"kind": "control",
                                       "max_wait_ms": value}, timeout=5.0)
            except (WorkerCrashed, FuturesTimeout, ClusterError, RuntimeError):
                continue
        return value

    def scale_to(self, target: int) -> int:
        """Grow or shrink the worker set to ``target`` with zero drops.

        Growing spawns fresh workers that join the rotation once their
        startup handshake (guardrail replay included) lands.  Shrinking
        *retires* the least-loaded workers: they leave the dispatch
        rotation immediately, their in-flight requests complete and reply
        normally, and only then does a background drain send the shutdown
        message — an autoscale-down is invisible to clients.  Returns the
        delta actually applied (0 when already at target).
        """
        target = int(target)
        if target < 1:
            raise ValueError(f"target workers must be >= 1, got {target}")
        if not self.running:
            raise ClusterError("cluster is not running; use start() or a with-block")
        with self._handles_lock:
            active = [handle for handle in self._handles
                      if handle.state in (_STARTING, _READY)]
            delta = target - len(active)
            if delta > 0:
                for _ in range(delta):
                    handle = _WorkerHandle(next(self._next_index))
                    self._handles.append(handle)
                    self._spawn(handle)
            elif delta < 0:
                # Ready workers first (their drain is observable), ordered
                # by least outstanding work so retirement is cheapest.
                ready = sorted((h for h in active if h.state == _READY),
                               key=lambda h: h.outstanding)
                starting = [h for h in active if h.state == _STARTING]
                for handle in (ready + starting)[:-delta]:
                    handle.state = _RETIRED
                    self._handles.remove(handle)
                    self._retired.append(handle)
                    threading.Thread(
                        target=self._drain_retired, args=(handle,),
                        name=f"repro-serve-retire-{handle.index}",
                        daemon=True).start()
            self._target_workers = target
        if delta:
            self.metrics.count("scale_up" if delta > 0 else "scale_down")
        return delta

    def _drain_retired(self, handle: _WorkerHandle,
                       drain_timeout_s: float = 30.0) -> None:
        """Finish a retired worker: wait out its in-flight work, then stop it."""
        deadline = time.monotonic() + drain_timeout_s
        while handle.outstanding > 0 and time.monotonic() < deadline:
            time.sleep(0.02)
        try:
            with handle.send_lock:
                handle.conn.send({"kind": "shutdown"})
        except (BrokenPipeError, OSError, AttributeError):
            pass
        if handle.process is not None:
            handle.process.join(timeout=10.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=5.0)
        if handle.conn is not None:
            try:
                handle.conn.close()
            except OSError:
                pass
        with self._handles_lock:
            if handle in self._retired:
                self._retired.remove(handle)

    def worker_metrics(self, timeout: float = 5.0) -> list[dict]:
        """Per-worker control-plane rows (queue depth, window snapshot)."""
        rows = []
        for handle in self._live_handles():
            try:
                rows.append(self._request(handle, {"kind": "metrics"},
                                          timeout))
            except (WorkerCrashed, FuturesTimeout, ClusterError, RuntimeError):
                continue
        return rows

    def metrics_snapshot(self, timeout: float = 5.0) -> dict:
        """Cluster-level rolling-window snapshot (the ``/metrics`` view).

        Engine-side windows merged across live workers, plus the
        supervisor's own counters (relayed rejects, scale events) under
        ``supervisor``.
        """
        rows = self.worker_metrics(timeout)
        merged = merge_snapshots([row["metrics"] for row in rows])
        merged["supervisor"] = self.metrics.snapshot()
        return merged

    def control_snapshot(self, timeout: float = 5.0) -> dict:
        """One controller observation over the whole cluster."""
        rows = self.worker_metrics(timeout)
        alive = len(self._live_handles())
        merged = merge_snapshots([row["metrics"] for row in rows])
        total = merged["latency_ms"].get("total", {})
        return {
            "queue_depth": sum(row["queue_depth"] for row in rows),
            "queue_capacity": max(1, sum(row["queue_capacity"]
                                         for row in rows)),
            "p99_ms": total.get("p99", 0.0),
            "latency_samples": total.get("count", 0),
            "arrival_rate_rps": merged["rates"].get("arrivals", 0.0),
            "completion_rate_rps": merged["rates"].get("completed", 0.0),
            "rejected_recent": merged["counts"].get("rejected", 0.0),
            "batch_occupancy": merged["gauges"].get(
                "batch_occupancy", {}).get("mean", 0.0),
            "workers": self._target_workers,
            "workers_alive": alive,
        }

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def healthz(self) -> dict:
        """Liveness + load summary, graded worst-first:

        ``down`` (no live worker), ``degraded`` (fewer live than the
        current target — crashes or a scale-up still starting),
        ``overloaded`` / ``busy`` (admission queues rejecting / filling,
        from supervisor-visible signals: relayed 429s in the last second
        and outstanding dispatches vs. admission capacity), else ``ok``.
        Cheap by design — no worker round trips, so load balancers can
        poll it aggressively.
        """
        with self._handles_lock:
            handles = list(self._handles)
        states = [handle.state for handle in handles]
        alive = states.count(_READY)
        target = self._target_workers
        if alive == 0:
            status = "down"
        elif alive < target:
            status = "degraded"
        else:
            outstanding = sum(handle.outstanding for handle in handles
                              if handle.state == _READY)
            capacity = max(1, alive * self._queue_size)
            status = classify_load(outstanding / capacity,
                                   self.metrics.count_in("rejected", 1.0))
        return {
            "status": status,
            "artifact": self.artifact_path,
            "workers": target,
            "alive": alive,
            "worker_states": states,
            "guardrail": [handle.guardrail for handle in handles],
        }

    def _artifact_formats(self) -> dict:
        """Cached per-tensor format summary of the served artifact.

        Read once from the manifest header (no blob traffic) — every worker
        serves the same file, so the supervisor can answer the ``/stats``
        format-breakdown question without a worker round trip.
        """
        if self._format_summary is None:
            from .artifact import format_breakdown, read_manifest

            try:
                manifest = read_manifest(self.artifact_path)
            except (OSError, ValueError):
                self._format_summary = {}
            else:
                param_specs = {entry["format"]
                               for entry in manifest["tensors"]
                               if entry.get("kind") == "param"}
                self._format_summary = {
                    "format": manifest.get("format"),
                    "formats": format_breakdown(manifest),
                    "mixed_precision": len(param_specs) > 1,
                }
        return self._format_summary

    def stats(self, timeout: float = 10.0) -> dict:
        """Aggregate worker stats plus supervisor-side dispatch counters.

        Requests/batches/energy are sums over live workers; the latency
        percentiles are request-weighted means of the per-worker
        percentiles (exact merging would need the raw samples), with the
        per-worker rows included for anyone who wants the real thing.
        """
        per_worker = []
        for handle in self._live_handles():
            try:
                per_worker.append(self._request(handle, {"kind": "stats"},
                                                timeout))
            except (WorkerCrashed, FuturesTimeout, ClusterError):
                continue
        requests = sum(row["requests"] for row in per_worker)
        batches = sum(row["batches"] for row in per_worker)
        batched = sum(row["mean_batch_size"] * row["batches"]
                      for row in per_worker)

        def weighted(key: str) -> float:
            if not requests:
                return 0.0
            return sum(row[key] * row["requests"] for row in per_worker) / requests

        with self._handles_lock:
            handles = list(self._handles)
        return {
            "artifact": self.artifact_path,
            **self._artifact_formats(),
            "workers": self._target_workers,
            "alive": len(self._live_handles()),
            "load_state": self.healthz()["status"],
            "max_wait_ms": self._max_wait_ms,
            "restarts": sum(handle.restarts for handle in handles),
            "dispatched": [handle.dispatched for handle in handles],
            "requests": requests,
            "rejected": sum(row.get("rejected", 0) for row in per_worker),
            "batches": batches,
            "mean_batch_size": (batched / batches) if batches else 0.0,
            "latency_p50_ms": weighted("latency_p50_ms"),
            "latency_p99_ms": weighted("latency_p99_ms"),
            "energy_uj_total": sum(row["energy_uj_total"] for row in per_worker),
            "uptime_s": time.perf_counter() - self._started_at,
            "metrics": merge_snapshots([row["metrics"] for row in per_worker
                                        if "metrics" in row]),
            # The supervisor's ring holds the merged (cross-process) traces,
            # so its summary — not the per-worker ones — carries the
            # slow-request exemplars clients should start from.
            "tracing": self.tracer.summary(),
            "per_worker": per_worker,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ServeCluster({self.artifact_path!r}, "
                f"workers={self.config.workers}, "
                f"alive={len(self._live_handles())})")
