"""Dense n-bit packing of format codes into byte buffers.

Every :class:`~repro.formats.NumberFormat` exposes its storage patterns as
``int64`` codes in ``[0, 2**bits)`` (``to_bits``/``from_bits``).  Holding an
8-bit posit in an ``int64`` array forfeits the paper's memory win, so the
artifact layer packs codes into a dense little-endian-free bitstream: code
``i`` occupies bits ``[i*bits, (i+1)*bits)`` of the buffer, MSB first within
the code, with zero padding only in the final byte.  A posit(6,1) tensor of
1000 values therefore costs exactly ``ceil(6000 / 8) = 750`` bytes — the
4x/5.3x-vs-FP32 storage ratio the paper's §V accounting promises.

Packing is pure bit shuffling (``np.packbits``/``np.unpackbits``), so
``unpack_codes(pack_codes(codes, b), b, n)`` is the identity for any code
array and any width ``1 <= bits <= 32``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pack_codes", "unpack_codes", "packed_nbytes"]

#: Widest code the packer accepts; every registry format fits in 32 bits.
MAX_BITS = 32


def _check_bits(bits: int) -> int:
    bits = int(bits)
    if not 1 <= bits <= MAX_BITS:
        raise ValueError(f"code width must be in [1, {MAX_BITS}] bits, got {bits}")
    return bits


def packed_nbytes(count: int, bits: int) -> int:
    """Exact byte length of ``count`` packed ``bits``-wide codes."""
    return (count * _check_bits(bits) + 7) // 8


def pack_codes(codes, bits: int) -> bytes:
    """Pack integer codes into a dense ``bits``-per-code byte string.

    ``codes`` is any integer array; each element is masked to its low
    ``bits`` bits (the codecs already emit codes in ``[0, 2**bits)``, the
    mask just makes packing total).  The flattened order is C order.
    """
    bits = _check_bits(bits)
    arr = np.asarray(codes)
    if arr.dtype.kind not in "iu":
        raise TypeError(f"codes must be an integer array, got dtype {arr.dtype}")
    flat = arr.astype(np.uint64, copy=False).reshape(-1)
    flat = flat & np.uint64((1 << bits) - 1)
    if flat.size == 0:
        return b""
    shifts = np.arange(bits - 1, -1, -1, dtype=np.uint64)
    bitmat = ((flat[:, None] >> shifts) & np.uint64(1)).astype(np.uint8)
    return np.packbits(bitmat.reshape(-1)).tobytes()


def unpack_codes(data: bytes, bits: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_codes`: recover ``count`` codes as ``int64``.

    Raises ``ValueError`` when ``data`` is shorter than ``count`` codes
    require (a truncated blob must fail loudly, not zero-fill).
    """
    bits = _check_bits(bits)
    count = int(count)
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    needed = packed_nbytes(count, bits)
    if len(data) < needed:
        raise ValueError(
            f"packed buffer too short: {count} codes of {bits} bits need "
            f"{needed} bytes, got {len(data)}"
        )
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    flat = np.unpackbits(np.frombuffer(data, dtype=np.uint8, count=needed),
                         count=count * bits)
    bitmat = flat.reshape(count, bits)
    codes = np.zeros(count, dtype=np.uint64)
    for column in range(bits):
        codes = (codes << np.uint64(1)) | bitmat[:, column].astype(np.uint64)
    return codes.astype(np.int64)
