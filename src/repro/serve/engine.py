"""Batched inference engine over packed posit artifacts.

The serving counterpart of :func:`repro.core.inference.evaluate_quantized`:
an :class:`InferenceEngine` loads one packed artifact
(:mod:`repro.serve.artifact`), keeps the decoded weights and the activation
quantizer cached for its lifetime, and serves predictions through **dynamic
micro-batching** — single-sample requests are queued and coalesced into
batches of up to ``max_batch`` samples, waiting at most ``max_wait_ms``
after the first request arrives.  One forward pass then serves the whole
batch, which is where the throughput comes from: the NumPy forward pass and
the posit quantization kernels are vectorized, so a batch of 32 costs far
less than 32 single-sample passes.

Correctness invariant: the model runs in eval mode (BatchNorm uses frozen
running statistics, Dropout is identity), so every sample's logits are
independent of which batch it landed in — batched predictions are
bit-identical to single-sample ones, which the test suite and the CI smoke
job assert.

Accounting: each request records queue + compute latency; each coalesced
batch is priced through the hardware model
(:func:`repro.hardware.inference_step_report` — the artifact format's MAC
datapath and packed-weight memory traffic), giving the per-request energy
column of :meth:`InferenceEngine.stats`.

Startup guardrail (artifact v1.1): when the manifest carries a
``guardrail`` block (a held-out calibration batch with its expected
serving-path logits and reference accuracy), the engine replays it before
accepting any traffic.  A replay that is not bit-identical to the recorded
logits, or whose accuracy drifts beyond the recorded tolerance, raises
:class:`GuardrailError` from the constructor — a process that cannot
reproduce its training-time numbers refuses to serve rather than silently
returning wrong answers.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..core.policy import QuantizationPolicy, RoleFormats
from ..formats import NumberFormat, parse_format
from ..formats.kernels import kernels_enabled as _kernels_enabled
from ..nn import Module
from ..obs.profiler import profiler as _codec_profiler
from ..obs.tracing import TraceConfig, Tracer
from ..tensor import Tensor, no_grad
from .artifact import format_breakdown, load_model
from .control import load_state as classify_load
from .metrics import MetricsCollector

__all__ = ["AdmissionError", "BatchingConfig", "GuardrailError",
           "InferenceEngine"]


class GuardrailError(RuntimeError):
    """The artifact's startup guardrail was violated; the process must not serve.

    Raised when replaying the manifest's held-out calibration batch either
    produces logits that are not bit-identical to the recorded ones, or an
    accuracy outside ``reference_accuracy ± tolerance``.
    """


class AdmissionError(RuntimeError):
    """The bounded admission queue is full; the request was rejected.

    Backpressure, not failure: the transport maps this to HTTP **429** with
    a ``Retry-After`` header derived from :attr:`retry_after_s` (the
    measured time for the queue to drain back to half), so well-behaved
    clients pace themselves instead of stacking onto a blown tail.
    Subclasses ``RuntimeError`` so pre-control-plane callers that caught
    the old queue-full ``RuntimeError`` keep working.
    """

    def __init__(self, message: str, retry_after_s: float = 1.0):
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


@dataclass(frozen=True)
class BatchingConfig:
    """Micro-batching knobs.

    ``max_batch`` bounds the coalesced batch size; ``max_wait_ms`` bounds
    how long the first request of a batch waits for company (the
    latency/throughput trade-off); ``queue_size`` bounds admission
    (a full queue rejects instead of buffering unboundedly).
    """

    max_batch: int = 32
    max_wait_ms: float = 2.0
    queue_size: int = 4096

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {self.max_wait_ms}")


class _Request:
    """One queued sample: input array + future + enqueue timestamp.

    ``trace`` carries the request's root :class:`~repro.obs.tracing.ActiveSpan`
    (or ``None`` for untraced requests — the common case, so every trace
    touch downstream is a single ``is not None`` check); ``picked_at`` is
    the batcher's pickup timestamp, recorded only for traced requests so
    queue-wait and batch-assembly spans can be reconstructed after the
    fact.  Spans are recorded retroactively from these timestamps because
    submit and the batch loop run on different threads.
    """

    __slots__ = ("inputs", "future", "enqueued_at", "trace", "picked_at")

    def __init__(self, inputs: np.ndarray):
        self.inputs = inputs
        self.future: Future = Future()
        self.enqueued_at = time.perf_counter()
        self.trace = None
        self.picked_at: Optional[float] = None


_SHUTDOWN = object()

#: Latency samples retained for the percentile columns of ``stats()``.
_LATENCY_WINDOW = 65536


class InferenceEngine:
    """Serve predictions from a packed artifact with dynamic micro-batching.

    Parameters
    ----------
    artifact:
        Path to a packed artifact file (``save_model``/``export_experiment``
        output).
    batching:
        A :class:`BatchingConfig`; ``None`` uses the defaults.
    quantize_activations:
        Quantize layer activations in the artifact's format during the
        forward pass (the Fig. 3a inference path).  The stored weights are
        already on the format grid, so no weight re-quantization happens at
        serving time.
    input_hw:
        Spatial size assumed by the hardware energy model for conv layers.
    verify_guardrail:
        Replay the manifest's v1.1 ``guardrail`` block (when present)
        before the engine is usable; a violation raises
        :class:`GuardrailError`.  ``False`` skips the replay (debugging
        and the export path, which writes the block in the first place).

    Use as a context manager (or call :meth:`start`/:meth:`stop`)::

        with InferenceEngine("model.rpak") as engine:
            logits = engine.predict(sample)
    """

    def __init__(self, artifact: Union[str, os.PathLike],
                 batching: Optional[BatchingConfig] = None,
                 quantize_activations: bool = True,
                 input_hw: tuple[int, int] = (32, 32),
                 verify_guardrail: bool = True,
                 tracing: Optional[TraceConfig] = None):
        self.artifact_path = os.fspath(artifact)
        self.batching = batching or BatchingConfig()
        #: Request tracing (repro.obs): disabled by default, in which case
        #: the hot path pays one attribute check per submit and nothing else.
        self.tracer = Tracer(tracing)
        self._codec_profiling = False
        if self.tracer.enabled and self.tracer.config.profile_codec:
            # Enabled before the artifact loads so the weight-decode
            # (from_bits) cost of startup lands in the codec profile too.
            _codec_profiler.enable()
            self._codec_profiling = True
        self.model, self.manifest = load_model(self.artifact_path)
        #: The artifact's *default* format — the activation-quantization
        #: grid and the MAC datapath the energy model prices.  Weights are
        #: decoded per tensor onto each tensor's own format grid (v2 mixed
        #: precision); :attr:`tensor_formats` holds that assignment.
        self.format: NumberFormat = parse_format(self.manifest["format"])
        self.tensor_formats: dict[str, str] = {
            entry["name"]: entry["format"]
            for entry in self.manifest["tensors"]
            if entry.get("kind") == "param"}
        #: True when the artifact stores parameters in more than one format.
        self.mixed_precision = len(set(self.tensor_formats.values())) > 1
        self.quantize_activations = quantize_activations
        self._policy: Optional[QuantizationPolicy] = None
        if quantize_activations:
            self._attach_serving_policy()
        self.model.eval()

        self._queue: queue.Queue = queue.Queue(maxsize=self.batching.queue_size)
        #: Runtime-tunable coalescing wait (the control plane's AIMD knob);
        #: seeded from the immutable BatchingConfig.
        self._max_wait_ms = float(self.batching.max_wait_ms)
        #: Rolling-window signals the controller steers from (arrival and
        #: completion rates, queue depth, per-stage latency, rejects).
        self.metrics = MetricsCollector()
        self._stop_event = threading.Event()
        self._worker: Optional[threading.Thread] = None
        model_block = self.manifest.get("model") or {}
        shape = model_block.get("input_shape")
        self._input_shape = tuple(int(dim) for dim in shape) if shape else None
        self._started_at = time.perf_counter()
        self._lock = threading.Lock()
        self._latencies: list[float] = []
        self._requests = 0
        self._rejected = 0
        self._batches = 0
        self._batched_samples = 0
        self._max_observed_batch = 0
        self._energy_uj = 0.0
        self._compute_uj_per_sample, self._memory_uj_per_batch = (
            self._price_sample(input_hw))
        self.guardrail_status = "absent"
        #: Replay summary from the last successful :meth:`run_guardrail`;
        #: ``None`` when no replay has passed (absent block, skipped,
        #: or failed).
        self.guardrail_report: Optional[dict] = None
        if self.manifest.get("guardrail"):
            if verify_guardrail:
                self.run_guardrail()
            else:
                self.guardrail_status = "skipped"

    def _attach_serving_policy(self) -> None:
        """Attach batch-invariant activation quantization in the artifact format.

        Serving-side scales must be frozen constants: a dynamically computed
        Eq. (2) scale depends on the whole activation tensor, i.e. on which
        requests the micro-batcher happened to coalesce.  When the manifest
        carries export-time calibration centers they are installed into
        calibrated-mode estimators; otherwise activations quantize unscaled
        (pure element-wise), which is equally batch-invariant.
        """
        calibration = self.manifest.get("activation_calibration") or {}
        centers = calibration.get("centers") or {}
        formats = RoleFormats(weight=None, activation=self.format)
        # Rounding must be deterministic at serving time whatever the
        # artifact was encoded with — stochastic activation rounding would
        # break both repeatability and the batched == single invariant.
        rounding = self.manifest.get("rounding", "nearest")
        if rounding == "stochastic":
            rounding = "nearest"
        policy = QuantizationPolicy(
            conv_formats=formats, bn_formats=formats, linear_formats=formats,
            rounding=rounding,
            use_scaling=bool(centers),
            sigma=int(calibration.get("sigma", self.manifest.get("sigma", 2))),
            scale_mode="calibrated")
        contexts = policy.attach(self.model)
        for name, context in contexts.items():
            scaler = context.scalers.get("activation")
            if scaler is None:
                continue
            if name in centers:
                scaler.set_center(float(centers[name]))
            else:
                # No frozen center for this layer: unscaled beats dynamic
                # (dynamic would re-introduce batch dependence).
                scaler.enabled = False
        self._policy = policy

    # ------------------------------------------------------------------ #
    # Startup guardrail
    # ------------------------------------------------------------------ #
    def run_guardrail(self) -> dict:
        """Replay the manifest's guardrail batch; raise on any violation.

        Three independent checks — accuracy alone can survive numerics
        drift on an easy batch, and bit-identity alone says nothing about
        whether the recorded reference was any good:

        * **per-tensor formats** — when the block records ``tensor_formats``
          (v2 exports), the manifest's current per-tensor specs must match
          exactly; a mixed-precision artifact whose tensor table was
          rewritten to different widths is refused before any replay;
        * **bit-identity** — the serving-path forward pass over the
          recorded inputs must reproduce the recorded logits exactly;
        * **accuracy tolerance** — the replayed accuracy over the batch
          must lie within ``tolerance`` of ``reference_accuracy``.

        Returns a summary dict on success and records it as
        :attr:`guardrail_report`; raises :class:`GuardrailError` otherwise
        (and marks :attr:`guardrail_status` ``"failed"``).
        """
        block = self.manifest.get("guardrail")
        if not block:
            self.guardrail_status = "absent"
            return {"status": "absent"}
        recorded_formats = block.get("tensor_formats")
        if recorded_formats is not None and dict(recorded_formats) != self.tensor_formats:
            drifted = sorted(
                name for name in set(recorded_formats) | set(self.tensor_formats)
                if recorded_formats.get(name) != self.tensor_formats.get(name))
            self.guardrail_status = "failed"
            self.guardrail_report = None
            raise GuardrailError(
                f"guardrail violated for {self.artifact_path}: per-tensor "
                f"format specs drifted from the recorded export "
                f"({', '.join(drifted)}); refusing to serve")
        recorded_quant = bool(block.get("quantize_activations", True))
        if recorded_quant != self.quantize_activations:
            # The reference logits were recorded under a different
            # activation-quantization setting; a bit-identity comparison
            # would be meaningless, and refusing to serve would make the
            # explicit --no-activation-quant escape hatch unusable.
            self.guardrail_status = "skipped"
            return {"status": "skipped",
                    "reason": "activation-quantization setting differs from "
                              "the recorded guardrail"}
        inputs = np.asarray(block["inputs"], dtype=np.float64)
        expected = np.asarray(block["logits"], dtype=np.float64)
        labels = np.asarray(block.get("labels", ()), dtype=np.int64)
        tolerance = float(block.get("tolerance", 0.0))
        reference = block.get("reference_accuracy")
        logits = self._forward(inputs)
        bit_identical = (logits.shape == expected.shape
                         and np.array_equal(logits, expected))
        accuracy = None
        if labels.size:
            accuracy = float(np.mean(np.argmax(logits, axis=1) == labels))
        report = {
            "samples": int(inputs.shape[0]),
            "bit_identical": bool(bit_identical),
            "accuracy": accuracy,
            "reference_accuracy": reference,
            "tolerance": tolerance,
        }
        if not bit_identical:
            self.guardrail_status = "failed"
            self.guardrail_report = None
            mismatches = (int(np.sum(logits != expected))
                          if logits.shape == expected.shape else -1)
            raise GuardrailError(
                f"guardrail violated for {self.artifact_path}: replayed logits "
                f"are not bit-identical to the manifest's recorded logits "
                f"({mismatches} mismatched elements over "
                f"{int(inputs.shape[0])} samples); refusing to serve")
        if (accuracy is not None and reference is not None
                and abs(accuracy - float(reference)) > tolerance):
            self.guardrail_status = "failed"
            self.guardrail_report = None
            raise GuardrailError(
                f"guardrail violated for {self.artifact_path}: replayed "
                f"accuracy {accuracy:.4f} is outside the recorded reference "
                f"{float(reference):.4f} ± {tolerance}; refusing to serve")
        self.guardrail_status = "passed"
        self.guardrail_report = report
        return report

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "InferenceEngine":
        """Start the micro-batcher thread (idempotent)."""
        if (self.tracer.enabled and self.tracer.config.profile_codec
                and not self._codec_profiling):
            # Re-arm codec profiling after a stop()/start() cycle (the
            # constructor enabled it the first time, to cover weight decode).
            _codec_profiler.enable()
            self._codec_profiling = True
        if self._worker is None or not self._worker.is_alive():
            self._stop_event.clear()
            self._worker = threading.Thread(target=self._batch_loop,
                                            name="repro-serve-batcher", daemon=True)
            self._worker.start()
        return self

    def stop(self) -> None:
        """Drain already-queued requests, then stop the micro-batcher thread."""
        if self._codec_profiling:
            # Balance this engine's enable so profiling doesn't leak past
            # the engine's lifetime (the profiler refcounts).
            _codec_profiler.disable()
            self._codec_profiling = False
        if self._worker is not None and self._worker.is_alive():
            self._stop_event.set()
            try:
                # Best-effort wake-up for a batcher blocked on an empty
                # queue; a full queue needs no nudge (the batcher is busy
                # and polls the event between batches).
                self._queue.put_nowait(_SHUTDOWN)
            except queue.Full:
                pass
            self._worker.join(timeout=10.0)
        self._worker = None

    def __enter__(self) -> "InferenceEngine":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Prediction paths
    # ------------------------------------------------------------------ #
    def submit(self, inputs, trace: Optional[dict] = None) -> Future:
        """Enqueue one sample; returns a future resolving to its logits row.

        ``trace`` is an optional propagated trace context
        (``{"trace_id", "parent_id", "sampled"}`` — see
        :mod:`repro.obs.tracing`): when the engine's tracer is enabled the
        request becomes the ``engine`` root span (or a child of the
        propagated parent) and every pipeline stage it crosses —
        admission, queue wait, batch assembly, codec, forward, respond —
        is recorded into the trace.  An upstream ``sampled`` decision is
        honored verbatim; without a context the engine rolls its own
        sampling dice.

        Raises :class:`AdmissionError` (a ``RuntimeError``) when the
        bounded admission queue is full — carrying a measured
        ``retry_after_s`` so the transport can answer 429 + ``Retry-After``
        — and plain ``RuntimeError`` when the engine is not started.
        """
        if self._worker is None or not self._worker.is_alive():
            raise RuntimeError("engine is not started; use start() or a with-block")
        sample = np.asarray(inputs, dtype=np.float64)
        if self._input_shape is not None and sample.shape != self._input_shape:
            # Reject at admission: a malformed sample must fail its own
            # request, never the batch-mates it would be coalesced with.
            raise ValueError(
                f"sample shape {sample.shape} does not match the model's "
                f"input shape {self._input_shape}")
        request = _Request(sample)
        if self.tracer.enabled:
            request.trace = (
                self.tracer.adopt(trace, "engine", start_s=request.enqueued_at)
                if trace is not None
                else self.tracer.begin("engine", start_s=request.enqueued_at))
        self.metrics.count("arrivals")
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            with self._lock:
                self._rejected += 1
            self.metrics.count("rejected")
            if request.trace is not None:
                now = time.perf_counter()
                request.trace.record_child(
                    "admission", request.enqueued_at, now, rejected=True)
                request.trace.finish(now, error="admission-rejected")
            raise AdmissionError(
                f"request queue full ({self.batching.queue_size} in flight)",
                retry_after_s=self.retry_after_s()) from None
        self.metrics.gauge("queue_depth", self._queue.qsize())
        if request.trace is not None:
            request.trace.record_child(
                "admission", request.enqueued_at, time.perf_counter(),
                queue_depth=self._queue.qsize())
        return request.future

    def predict(self, inputs, timeout: Optional[float] = 30.0) -> np.ndarray:
        """Blocking single-sample prediction through the micro-batcher."""
        return self.submit(inputs).result(timeout=timeout)

    def predict_batch(self, inputs) -> np.ndarray:
        """Direct synchronous batch prediction, bypassing the queue.

        The reference path: the micro-batcher produces exactly these logits
        for each member row, whatever batch it coalesced.
        """
        batch = np.asarray(inputs, dtype=np.float64)
        return self._forward(batch)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _forward(self, batch: np.ndarray) -> np.ndarray:
        with no_grad():
            logits = self.model(Tensor(batch))
        return np.asarray(logits.data, dtype=np.float64)

    def _price_sample(self, input_hw: tuple[int, int]) -> tuple[float, float]:
        """Hardware-model energy split: (compute uJ/sample, memory uJ/batch).

        Compute energy scales with every sample in a batch; the packed
        weights are read from memory once per coalesced *batch* — which is
        exactly the energy argument for micro-batching, and why
        ``stats()['energy_uj_total']`` drops as the realized batch size
        grows.

        The hardware model prices the whole model at the default format;
        for a mixed-precision artifact the memory term is rescaled to the
        bytes the blob *actually* packs (each tensor at its own width), so
        exporting the fat BatchNorm tensors wider no longer reads like a
        uniform-width artifact's traffic.
        """
        from ..hardware import inference_step_report

        report = inference_step_report(self.model, self.format, batch_size=1,
                                       input_hw=input_hw)
        memory_uj = float(report["memory_energy_uj"])
        uniform_bytes = (sum(param.size for param in self.model.parameters())
                         * self.format.bits / 8.0)
        packed_bytes = sum(int(entry["nbytes"])
                           for entry in self.manifest["tensors"]
                           if entry.get("kind") == "param")
        if uniform_bytes > 0 and packed_bytes > 0:
            memory_uj *= packed_bytes / uniform_bytes
        return float(report["compute_energy_uj"]), memory_uj

    def _collect_batch(self) -> Optional[list]:
        """Block for the first request, then coalesce until size/deadline.

        Returns ``None`` when the engine is stopping and the queue has been
        drained — already-queued requests are always served before exit.
        The shutdown sentinel is only a wake-up nudge; the stop event is
        the source of truth (a sentinel re-queue could block forever on a
        saturated queue).
        """
        first = None
        while first is None:
            try:
                first = self._queue.get(timeout=0.05)
            except queue.Empty:
                if self._stop_event.is_set():
                    return None
                continue
            if first is _SHUTDOWN:
                first = None
        if first.trace is not None:
            first.picked_at = time.perf_counter()
        batch = [first]
        deadline = time.perf_counter() + self._max_wait_ms / 1000.0
        while len(batch) < self.batching.max_batch:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                # Deadline passed: still sweep anything already queued, so a
                # burst that landed during the forward pass coalesces even
                # with max_wait_ms=0.
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
            else:
                try:
                    item = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
            if item is _SHUTDOWN:
                continue
            if item.trace is not None:
                item.picked_at = time.perf_counter()
            batch.append(item)
        return batch

    def _serve_batch(self, batch: list) -> Optional[np.ndarray]:
        """Forward one coalesced batch; isolate a poisoned member on failure.

        Shapes are validated at admission, so the fallback only triggers on
        genuinely exceptional inputs — each request is then run alone and
        only the offending one receives the exception.
        """
        try:
            return self._forward(np.stack([request.inputs for request in batch]))
        except Exception:  # noqa: BLE001 - re-run individually to isolate
            rows = []
            for request in batch:
                try:
                    rows.append(self._forward(request.inputs[None])[0])
                except Exception as exc:  # noqa: BLE001 - this request's fault
                    request.future.set_exception(exc)
                    rows.append(None)
            return rows

    def _batch_loop(self) -> None:
        while True:
            batch = self._collect_batch()
            if batch is None:
                return
            traced = [r for r in batch if r.trace is not None]
            # Codec time is measured as the profiler's cumulative-ns delta
            # around the forward pass — the activation quantize/to_bits
            # calls are interleaved with the matmuls, so a batch-aggregated
            # child span is the honest granularity.
            codec_mark = (_codec_profiler.total_ns()
                          if traced and _codec_profiler.active else None)
            forward_start = time.perf_counter()
            logits = self._serve_batch(batch)
            if not isinstance(logits, np.ndarray):
                # Fallback path: drop requests whose future already failed.
                survivors = [(request, row)
                             for request, row in zip(batch, logits)
                             if row is not None]
                for request, row in zip(batch, logits):
                    if row is None and request.trace is not None:
                        request.trace.finish(error="forward-failed")
                if not survivors:
                    continue
                batch = [request for request, _ in survivors]
                logits = np.stack([row for _, row in survivors])
                traced = [r for r in batch if r.trace is not None]
            done = time.perf_counter()
            self.metrics.count("completed", len(batch))
            self.metrics.gauge("batch_size", len(batch))
            self.metrics.gauge("batch_occupancy",
                               len(batch) / self.batching.max_batch)
            self.metrics.gauge("queue_depth", self._queue.qsize())
            compute_s = done - forward_start
            for request in batch:
                self.metrics.observe("queue", forward_start - request.enqueued_at)
                self.metrics.observe("compute", compute_s)
                self.metrics.observe("total", done - request.enqueued_at)
            with self._lock:
                self._requests += len(batch)
                self._batches += 1
                self._batched_samples += len(batch)
                self._max_observed_batch = max(self._max_observed_batch, len(batch))
                self._energy_uj += (self._compute_uj_per_sample * len(batch)
                                    + self._memory_uj_per_batch)
                for request in batch:
                    self._latencies.append(done - request.enqueued_at)
                if len(self._latencies) > _LATENCY_WINDOW:
                    del self._latencies[:-_LATENCY_WINDOW]
            if traced:
                codec_ns = (None if codec_mark is None
                            else _codec_profiler.total_ns() - codec_mark)
                self._record_batch_spans(traced, len(batch), forward_start,
                                         done, codec_ns)
            for row, request in enumerate(batch):
                # Close the trace *before* resolving the future: a caller
                # collecting spans right after .result() (the cluster
                # worker reply path) must see a complete trace.
                if request.trace is not None:
                    now = time.perf_counter()
                    request.trace.record_child("respond", done, now)
                    request.trace.finish(now, batch_size=len(batch))
                request.future.set_result(logits[row])

    def _record_batch_spans(self, traced: list, batch_size: int,
                            forward_start: float, done: float,
                            codec_ns: Optional[int]) -> None:
        """Retroactively emit queue/batch/codec/forward spans for a batch.

        Stage boundaries come from timestamps the pipeline collected:
        enqueue -> pickup is queue wait, pickup -> forward start is batch
        assembly (waiting for company), then the shared forward pass with
        its batch-aggregated codec child.
        """
        for request in traced:
            root = request.trace
            picked = request.picked_at if request.picked_at is not None else forward_start
            root.record_child("queue", request.enqueued_at, picked)
            root.record_child("batch", picked, forward_start,
                              batch_size=batch_size)
            fwd = root.record_child("forward", forward_start, done,
                                    batch_size=batch_size)
            if codec_ns:
                self.tracer.record_span(
                    "codec", forward_start, forward_start + codec_ns / 1e9,
                    trace_id=root.trace_id, parent_id=fwd.span_id,
                    annotations={"scope": "batch", "codec_ns": int(codec_ns)})

    # ------------------------------------------------------------------ #
    # Control surface
    # ------------------------------------------------------------------ #
    @property
    def max_wait_ms(self) -> float:
        """The *current* coalescing wait (the controller may have moved it)."""
        return self._max_wait_ms

    def set_max_wait_ms(self, value: float) -> float:
        """Retune the coalescing wait online (clamped to >= 0).

        The AIMD actuator: longer waits buy batch occupancy (throughput),
        shorter waits buy tail latency; the batcher reads the new value on
        its next coalescing deadline, so no request in flight is disturbed.
        """
        self._max_wait_ms = max(0.0, float(value))
        return self._max_wait_ms

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for a batch (approximate, lock-free)."""
        return self._queue.qsize()

    def retry_after_s(self) -> float:
        """Measured backoff hint for rejected clients.

        Time for the queue to drain to half at the observed completion
        rate; clamped to [0.05 s, 5 s], defaulting to 1 s before any
        completions have been measured.
        """
        rate = self.metrics.rate("completed", 2.0)
        if rate <= 0:
            return 1.0
        return float(min(5.0, max(0.05, (self.batching.queue_size / 2) / rate)))

    def load_state(self) -> str:
        """``ok`` / ``busy`` / ``overloaded`` from queue depth and rejects.

        Rejections observed in the last second keep the state
        ``overloaded`` (clients are being turned away *now*); utilization
        alone grades ``ok`` -> ``busy`` -> ``overloaded``.
        """
        utilization = self._queue.qsize() / self.batching.queue_size
        return classify_load(utilization,
                             self.metrics.count_in("rejected", 1.0))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Counters + latency percentiles + hardware-model energy totals."""
        with self._lock:
            latencies = np.asarray(self._latencies, dtype=np.float64)
            requests, batches = self._requests, self._batches
            batched, rejected = self._batched_samples, self._rejected
            max_batch_seen = self._max_observed_batch
            energy = self._energy_uj
        percentile = (lambda q: float(np.percentile(latencies, q) * 1000.0)
                      if latencies.size else 0.0)
        payload = {
            "artifact": self.artifact_path,
            "format": self.format.spec(),
            "mixed_precision": self.mixed_precision,
            # The compact per-format summary only: the full per-parameter
            # assignment (engine.tensor_formats) is static after load and
            # would bloat every /stats poll O(params) for nothing.
            "formats": format_breakdown(self.manifest),
            "model": (self.manifest.get("model") or {}).get("model"),
            "guardrail": self.guardrail_status,
            "requests": requests,
            "rejected": rejected,
            "batches": batches,
            "mean_batch_size": (batched / batches) if batches else 0.0,
            "max_batch_seen": max_batch_seen,
            "max_batch": self.batching.max_batch,
            "max_wait_ms": self._max_wait_ms,
            "queue_depth": self._queue.qsize(),
            "queue_capacity": self.batching.queue_size,
            "load_state": self.load_state(),
            "metrics": self.metrics.snapshot(),
            "latency_p50_ms": percentile(50),
            "latency_p99_ms": percentile(99),
            "energy_uj_per_sample": (self._compute_uj_per_sample
                                     + self._memory_uj_per_batch),
            "energy_uj_compute_per_sample": self._compute_uj_per_sample,
            "energy_uj_memory_per_batch": self._memory_uj_per_batch,
            "energy_uj_total": energy,
            "energy_uj_per_request_observed": (energy / requests) if requests else 0.0,
            "uptime_s": time.perf_counter() - self._started_at,
            "tracing": self.tracer.summary(),
            "codec_kernels": _kernels_enabled(),
        }
        if self._codec_profiling:
            payload["codec_profile"] = _codec_profiler.snapshot()
        return payload

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"InferenceEngine({self.artifact_path!r}, "
                f"format={self.format.spec()}, "
                f"max_batch={self.batching.max_batch})")
