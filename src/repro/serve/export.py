"""Export trained experiments — and sweep winners — as packed artifacts.

Bridges the training stack to the serving stack:

* :func:`export_experiment` — snapshot a built/trained
  :class:`repro.api.Experiment` into a packed artifact, recording enough
  architecture metadata for :func:`repro.serve.artifact.load_model` to
  rebuild the model unaided;
* :func:`train_and_export` — one-call train-then-export from an
  :class:`~repro.api.ExperimentConfig` (the ``repro export --config`` path);
* :func:`serve_best` — pick the best ``"ok"`` record of a sweep
  :class:`~repro.sweeps.store.ResultStore` by accuracy or energy,
  deterministically re-train its config (run ids are content hashes, and
  experiments seed every RNG from the config, so the re-run reproduces the
  sweep cell), and export it — the "promote the sweep winner to a serving
  artifact" path behind ``repro export --store``.
"""

from __future__ import annotations

import os
from typing import Mapping, Optional, Union

import numpy as np

from ..core.policy import QuantizationPolicy, RoleFormats
from ..core.scaling import ScaleEstimator
from ..formats import NumberFormat, parse_format
from ..sweeps.store import STATUS_OK, ResultStore
from ..tensor import Tensor, no_grad
from .artifact import save_model

__all__ = ["export_experiment", "train_and_export", "serve_best",
           "default_export_format", "default_export_format_map",
           "calibrate_activation_centers", "build_guardrail", "OBJECTIVES"]

#: Objective name -> (record metric extractor, pick-max?).
OBJECTIVES = {
    "accuracy": (lambda record: (record.get("metrics") or {}).get("final_val_accuracy"),
                 True),
    "energy": (lambda record: (record.get("energy") or {}).get("total_energy_uj"),
               False),
}


def default_export_format(policy) -> str:
    """Storage format spec inferred from a policy's forward weight formats.

    Picks the first non-None weight format in conv -> linear -> bn order
    (the widest-coverage role first); an unquantized policy (or ``None``)
    exports as ``"fp32"``.
    """
    if policy is not None:
        for role_formats in (policy.conv_formats, policy.linear_formats,
                             policy.bn_formats):
            if role_formats.weight is not None:
                return role_formats.weight.spec()
    return "fp32"


def default_export_format_map(policy, model) -> dict[str, str]:
    """Per-parameter storage spec map mirroring a policy's weight roles.

    The artifact-v2 default: every parameter of a layer the policy covers
    is stored in that layer's *weight* role format
    (:meth:`~repro.core.policy.QuantizationPolicy.export_formats`), so a
    mixed-precision policy — ``cifar_paper``'s posit(8,1) CONV next to
    posit(16,1) BN — exports a genuinely mixed artifact without the caller
    enumerating tensors.  Full-precision roles map to ``"fp32"`` (the
    registry's 32-bit float codec); uncovered parameters are absent and
    fall back to the exporter's default format.  ``{}`` when ``policy`` is
    ``None``.
    """
    if policy is None:
        return {}
    return {name: ("fp32" if role_format is None else role_format.spec())
            for name, role_format in policy.export_formats(model).items()}


class _ObservingEstimator(ScaleEstimator):
    """Calibrated-mode estimator that observes every tensor it scales.

    Used only for the export-time calibration pass: the EMA center it
    accumulates becomes the frozen serving-side activation scale.
    """

    def scale_for(self, x: np.ndarray) -> float:
        self.observe(x)
        return super().scale_for(x)


def calibrate_activation_centers(model, fmt: Union[NumberFormat, str], loader,
                                 rounding: str = "nearest", sigma: int = 2,
                                 max_batches: int = 1) -> dict[str, float]:
    """Freeze per-layer activation log2 centers from a calibration pass.

    Runs up to ``max_batches`` batches of ``loader`` through ``model`` with
    activation quantization in ``fmt`` attached, recording each quantized
    layer's Eq. (2) center.  The paper's remark that "based on the warm-up
    trained model, the scaling factor of each layer can be calculated" is
    exactly this: at serving time the scale must be a frozen constant — a
    dynamically computed Eq. (2) scale would make predictions depend on
    which micro-batch a request landed in.
    """
    fmt = parse_format(fmt) if isinstance(fmt, str) else fmt
    formats = RoleFormats(weight=None, activation=fmt)
    policy = QuantizationPolicy(conv_formats=formats, bn_formats=formats,
                                linear_formats=formats, rounding=rounding,
                                use_scaling=True, sigma=sigma,
                                scale_mode="calibrated")
    # The model may belong to a live experiment whose trainer attached its
    # own policy contexts at construction time; snapshot them and restore
    # afterwards (a blanket detach would silently de-quantize any further
    # training/evaluation the caller does).
    previous_contexts = {name: module.quant
                         for name, module in model.named_modules()}
    was_training = model.training
    contexts = policy.attach(model)
    estimators: dict[str, _ObservingEstimator] = {}
    for name, context in contexts.items():
        if context.scalers.get("activation") is not None:
            observer = _ObservingEstimator(sigma=sigma, mode="calibrated")
            context.scalers["activation"] = observer
            estimators[name] = observer
    try:
        model.train(False)
        with no_grad():
            for index, (inputs, _labels) in enumerate(loader):
                model(Tensor(inputs))
                if index + 1 >= max_batches:
                    break
    finally:
        for name, module in model.named_modules():
            module.quant = previous_contexts.get(name)
        model.train(was_training)
    return {name: float(estimator.calibrated_center)
            for name, estimator in estimators.items()
            if estimator.calibrated_center is not None}


def build_guardrail(path: Union[str, os.PathLike], loader,
                    samples: int = 16, tolerance: float = 0.0,
                    quantize_activations: bool = True) -> dict:
    """Compute the v1.1 guardrail block for an already-written artifact.

    Loads ``path`` through the *serving* stack (an
    :class:`~repro.serve.engine.InferenceEngine` with the manifest's frozen
    activation calibration installed, guardrail verification off — the
    block does not exist yet) and runs the first ``samples`` held-out
    samples of ``loader`` through it.  The recorded logits are therefore
    exactly what a healthy serving process must reproduce, bit for bit, at
    startup; the recorded accuracy is the replay's accuracy over the same
    batch, so any drift beyond ``tolerance`` is a serving-side regression,
    not dataset noise.  The block also records the artifact's **per-tensor
    format specs** (``tensor_formats``), so a mixed-precision artifact
    whose manifest is later rewritten to different per-tensor widths is
    refused at startup even before the logits replay.
    """
    from .engine import InferenceEngine

    if samples < 1:
        raise ValueError(f"guardrail needs at least 1 sample, got {samples}")
    for inputs, labels in loader:
        batch = np.asarray(inputs, dtype=np.float64)[:samples]
        batch_labels = np.asarray(labels)[:samples]
        break
    else:
        raise ValueError("guardrail calibration loader yielded no batches")
    engine = InferenceEngine(path, quantize_activations=quantize_activations,
                             verify_guardrail=False)
    logits = engine.predict_batch(batch)
    accuracy = float(np.mean(np.argmax(logits, axis=1) == batch_labels))
    return {
        "samples": int(batch.shape[0]),
        "inputs": batch.tolist(),
        "labels": [int(label) for label in batch_labels],
        "logits": logits.tolist(),
        "reference_accuracy": accuracy,
        "tolerance": float(tolerance),
        "quantize_activations": bool(quantize_activations),
        "tensor_formats": dict(engine.tensor_formats),
    }


def _model_info(experiment) -> dict:
    """Architecture block stored in the manifest (see ``_rebuild_model``)."""
    config = experiment.config
    sample_shape = experiment.train_loader.inputs.shape[1:]
    return {
        "model": config.model,
        "model_kwargs": dict(config.model_kwargs),
        "num_classes": config.num_classes,
        "seed": config.seed,
        "in_features": int(np.prod(sample_shape)) if sample_shape else 1,
        "input_shape": [int(dim) for dim in sample_shape],
    }


def _tensor_format_specs(experiment, fmt, format_map) -> dict[str, str]:
    """Resolve the final per-parameter spec map for an experiment export.

    Three layers, later wins: the base format (``fmt`` or the policy's
    inferred default) covers everything; with ``fmt=None`` the policy's
    role assignment (:func:`default_export_format_map`) applies per layer
    — the mixed-precision default; explicit ``format_map`` entries (exact
    names or fnmatch patterns, the ``repro export --format-map`` surface)
    override both.
    """
    from .artifact import resolve_format_map

    names = [name for name, _ in experiment.model.named_parameters()]
    base = default_export_format(experiment.policy) if fmt is None else fmt
    base_spec = (parse_format(base) if isinstance(base, str) else base).spec()
    specs = {name: base_spec for name in names}
    if fmt is None:
        policy_map = default_export_format_map(experiment.policy,
                                               experiment.model)
        specs.update({name: spec for name, spec in policy_map.items()
                      if name in specs})
    overrides = resolve_format_map(names, None, format_map)
    specs.update({name: resolved.spec() for name, resolved in overrides.items()})
    return specs


def export_experiment(experiment, path: Union[str, os.PathLike],
                      fmt: Union[NumberFormat, str, None] = None,
                      rounding: str = "nearest",
                      use_scaling: bool = True, sigma: int = 2,
                      calibrate: bool = True,
                      calibration_batches: int = 1,
                      guardrail_samples: int = 16,
                      guardrail_tolerance: float = 0.0,
                      format_map: Optional[Mapping] = None,
                      metadata: Optional[Mapping] = None) -> dict:
    """Export a built (usually trained) experiment's model to ``path``.

    ``fmt=None`` infers the storage formats from the experiment's policy —
    the default format via :func:`default_export_format` plus the **per
    tensor** role assignment via :func:`default_export_format_map`, so a
    ``cifar_paper``-style mixed policy exports a mixed-precision v2
    artifact without the caller restating it (an explicit ``fmt`` forces a
    uniform export).  ``format_map`` adds per-tensor overrides on top of
    either (exact parameter names or fnmatch patterns -> registry specs).
    With ``calibrate=True`` (default) a calibration pass over the
    experiment's validation loader freezes per-layer activation scales into
    the manifest (:func:`calibrate_activation_centers`).  With
    ``guardrail_samples > 0`` (default 16) a held-out batch from the
    validation loader is replayed through the just-written artifact and
    recorded as the manifest's ``guardrail`` block
    (:func:`build_guardrail`, including the artifact's per-tensor specs) —
    the artifact is written twice, the second time with the recorded
    per-tensor scales, so the packed weights are byte-identical between
    the passes.  Returns the manifest.
    """
    if fmt is None:
        base_fmt = parse_format(default_export_format(experiment.policy))
    else:
        base_fmt = parse_format(fmt) if isinstance(fmt, str) else fmt
    tensor_specs = _tensor_format_specs(experiment, fmt, format_map)
    extra = {"experiment": experiment.config.name,
             "formats": experiment.format_specs()}
    if metadata:
        extra.update(metadata)
    calibration = None
    if calibrate:
        centers = calibrate_activation_centers(
            experiment.model, base_fmt, experiment.val_loader,
            rounding=rounding, sigma=sigma, max_batches=calibration_batches)
        calibration = {"sigma": sigma, "centers": centers}
    manifest = save_model(experiment.model, path, fmt=base_fmt,
                          rounding=rounding,
                          use_scaling=use_scaling, sigma=sigma,
                          model_info=_model_info(experiment), metadata=extra,
                          activation_calibration=calibration,
                          format_map=tensor_specs)
    if guardrail_samples > 0:
        guardrail = build_guardrail(path, experiment.val_loader,
                                    samples=guardrail_samples,
                                    tolerance=guardrail_tolerance)
        scales = {entry["name"]: entry["scale"]
                  for entry in manifest["tensors"] if entry["kind"] == "param"}
        manifest = save_model(experiment.model, path, fmt=base_fmt,
                              rounding=rounding, use_scaling=use_scaling,
                              sigma=sigma, model_info=_model_info(experiment),
                              metadata=extra,
                              activation_calibration=calibration,
                              scales=scales, guardrail=guardrail,
                              format_map=tensor_specs)
    return manifest


def train_and_export(config, path: Union[str, os.PathLike],
                     fmt: Union[NumberFormat, str, None] = None,
                     rounding: str = "nearest", use_scaling: bool = True,
                     sigma: int = 2, calibrate: bool = True,
                     guardrail_samples: int = 16,
                     guardrail_tolerance: float = 0.0,
                     format_map: Optional[Mapping] = None,
                     metadata: Optional[Mapping] = None) -> tuple[dict, object]:
    """Train the experiment described by ``config``, then export it.

    ``config`` is an :class:`~repro.api.ExperimentConfig` or its dict form.
    Returns ``(manifest, history)``.
    """
    from ..api import build_experiment

    experiment = build_experiment(config)
    history = experiment.run()
    extra = {"final_val_accuracy": history.final_val_accuracy,
             "best_val_accuracy": history.best_val_accuracy}
    if metadata:
        extra.update(metadata)
    manifest = export_experiment(experiment, path, fmt=fmt, rounding=rounding,
                                 use_scaling=use_scaling, sigma=sigma,
                                 calibrate=calibrate,
                                 guardrail_samples=guardrail_samples,
                                 guardrail_tolerance=guardrail_tolerance,
                                 format_map=format_map,
                                 metadata=extra)
    return manifest, history


def pick_best_record(store: Union[ResultStore, str],
                     objective: str = "accuracy") -> dict:
    """Best ``"ok"`` record of a result store under the given objective.

    ``"accuracy"`` maximizes ``final_val_accuracy``; ``"energy"`` minimizes
    the accelerator estimate ``energy.total_energy_uj`` (requires the sweep
    to have run with ``collect_energy``).  Ties break toward the record
    with the lower recorded ``index`` (sweep declaration order).
    """
    if objective not in OBJECTIVES:
        raise ValueError(
            f"unknown objective {objective!r}; expected one of {sorted(OBJECTIVES)}")
    metric_of, maximize = OBJECTIVES[objective]
    if not isinstance(store, ResultStore):
        store = ResultStore(store)
    candidates = []
    for record in store.records().values():
        if record.get("status") != STATUS_OK:
            continue
        value = metric_of(record)
        if isinstance(value, (int, float)):
            candidates.append((record, float(value)))
    if not candidates:
        raise ValueError(
            f"store {store.path!r} has no ok records with the "
            f"{objective!r} metric (did the sweep run with collect_energy "
            f"for objective='energy'?)")
    sign = -1.0 if maximize else 1.0
    candidates.sort(key=lambda pair: (sign * pair[1],
                                      pair[0].get("index", 0),
                                      pair[0].get("run_id", "")))
    return candidates[0][0]


def serve_best(store: Union[ResultStore, str], path: Union[str, os.PathLike],
               objective: str = "accuracy",
               fmt: Union[NumberFormat, str, None] = None,
               rounding: str = "nearest", use_scaling: bool = True,
               sigma: int = 2, calibrate: bool = True,
               guardrail_samples: int = 16,
               guardrail_tolerance: float = 0.0,
               format_map: Optional[Mapping] = None) -> tuple[dict, dict]:
    """Re-train and export the best run of a sweep store.

    Returns ``(manifest, record)`` — the written artifact's manifest and the
    winning store record.  The record's stored config is re-trained
    deterministically (config-seeded RNGs), so the exported weights realize
    the sweep cell the store reported.  The encoding knobs (``rounding``,
    ``use_scaling``, ``sigma``, ``calibrate``) mirror
    :func:`train_and_export`.
    """
    record = pick_best_record(store, objective=objective)
    metric_of, _ = OBJECTIVES[objective]
    manifest, _history = train_and_export(
        record["config"], path, fmt=fmt, rounding=rounding,
        use_scaling=use_scaling, sigma=sigma, calibrate=calibrate,
        guardrail_samples=guardrail_samples,
        guardrail_tolerance=guardrail_tolerance,
        format_map=format_map,
        metadata={"sweep_run_id": record.get("run_id"),
                  "sweep_run_name": record.get("name"),
                  "objective": objective,
                  "objective_value": metric_of(record)})
    return manifest, record
