"""Dependency-free JSON-over-HTTP transport for the inference engine.

A thin stdlib (:mod:`http.server`) shell around
:class:`~repro.serve.engine.InferenceEngine` — no web framework, so the
server runs anywhere the library does:

``POST /predict``
    Body ``{"inputs": [[...sample...], ...]}`` (always a *list of samples*;
    one sample is a one-element list).  Every sample is submitted to the
    engine individually, so concurrent HTTP clients coalesce in the
    micro-batcher exactly like in-process callers.  Response:
    ``{"predictions": [argmax...], "logits": [[...]...]}``.
``GET /healthz``
    ``{"status": "ok", "artifact": ..., "format": ...}`` — liveness.
``GET /stats``
    The engine's :meth:`~repro.serve.engine.InferenceEngine.stats` dict.

:class:`LocalClient` exposes the same request/response contract in process
(tests and the load generator run against either transport unchanged), and
:class:`HTTPClient` is the matching :mod:`urllib` client.

The HTTP shell is backend-agnostic: :class:`ModelServer` fronts one
in-process :class:`~repro.serve.engine.InferenceEngine`, and
:class:`ClusterServer` fronts a multi-worker
:class:`~repro.serve.cluster.ServeCluster` — same endpoints, same error
mapping, so clients cannot tell one worker from eight (except that
``/stats`` aggregates across workers and ``/predict`` responses carry the
serving worker's index).
"""

from __future__ import annotations

import json
import math
import threading
import urllib.error
import urllib.request
from concurrent.futures import TimeoutError as FuturesTimeout
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Sequence

import numpy as np

from ..obs.tracing import TRACE_HEADER
from .engine import AdmissionError, InferenceEngine
from .metrics import render_prometheus

__all__ = ["ModelServer", "ClusterServer", "LocalClient", "HTTPClient",
           "ServeClientError"]


def _controller_families(controller) -> Optional[list]:
    """Prometheus families for an attached controller's decision counters."""
    if controller is None:
        return None
    counts = getattr(controller, "decision_counts", None)
    if not counts:
        return None
    return [{
        "name": "repro_controller_decisions_total",
        "type": "counter",
        "help": "Control-loop decisions taken, by action "
                "(scale_up/scale_down/wait_increase/wait_backoff).",
        "samples": [({"action": action}, float(value))
                    for action, value in sorted(counts.items())],
    }]


class ServeClientError(RuntimeError):
    """A client-visible request failure (HTTP status + server message).

    ``retry_after`` carries the server's ``Retry-After`` hint in seconds
    when the failure was backpressure (HTTP 429), ``None`` otherwise — the
    load generator uses it to pace rejected clients.
    """

    def __init__(self, status: int, message: str,
                 retry_after: Optional[float] = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.retry_after = retry_after


def _predict_payload(engine: InferenceEngine, samples: Sequence,
                     trace_id: Optional[str] = None) -> dict:
    """Shared request semantics for both transports: fan out, gather, reply.

    When the engine's tracer is enabled (and this request is sampled) a
    ``request`` root span wraps the whole fan-out and its trace id is
    echoed in the payload, so HTTP clients can correlate a slow response
    with an exported trace.  ``trace_id`` lets the caller (the
    ``X-Repro-Trace-Id`` header path) supply the id.
    """
    if not isinstance(samples, (list, tuple)) or not samples:
        raise ValueError("'inputs' must be a non-empty list of samples")
    tracer = engine.tracer
    root = tracer.begin("request", trace_id=trace_id,
                        annotations={"samples": len(samples)})
    # An explicitly unsampled context keeps the engine from re-rolling the
    # sampling dice per sample: the transport's decision is the request's.
    ctx = (root.context() if root is not None
           else ({"sampled": False} if tracer.enabled else None))
    try:
        futures = [engine.submit(np.asarray(sample, dtype=np.float64),
                                 trace=ctx)
                   for sample in samples]
        logits = [future.result(timeout=60.0) for future in futures]
    except BaseException as exc:
        if root is not None:
            root.finish(error=repr(exc))
        raise
    payload = {
        "predictions": [int(np.argmax(row)) for row in logits],
        "logits": [np.asarray(row, dtype=np.float64).tolist() for row in logits],
    }
    if root is not None:
        root.finish()
        payload["trace_id"] = root.trace_id
    return payload


class _EngineBackend:
    """Serving backend over one in-process :class:`InferenceEngine`.

    ``controller`` (optional) is an attached control loop whose decision
    history rides along in ``/stats`` and whose decision counters become
    the ``repro_controller_decisions_total`` Prometheus family.
    """

    def __init__(self, engine: InferenceEngine, controller=None):
        self.engine = engine
        self.controller = controller

    @property
    def tracer(self):
        return self.engine.tracer

    def handle_predict(self, samples, trace_id: Optional[str] = None) -> dict:
        return _predict_payload(self.engine, samples, trace_id=trace_id)

    def healthz(self) -> tuple[int, dict]:
        # Load states for a single engine: ok / busy / overloaded from its
        # admission queue (the process answering at all proves liveness).
        return 200, {
            "status": self.engine.load_state(),
            "artifact": self.engine.artifact_path,
            "format": self.engine.format.spec(),
            "guardrail": self.engine.guardrail_status,
        }

    def stats(self) -> dict:
        payload = self.engine.stats()
        if self.controller is not None:
            payload["controller"] = self.controller.describe()
        return payload

    def traces(self) -> dict:
        tracer = self.engine.tracer
        return {"tracing": tracer.summary(),
                "spans": [span.to_dict() for span in tracer.spans()]}

    def metrics_text(self) -> str:
        return render_prometheus(
            self.engine.metrics.snapshot(),
            extra={"queue_depth_now": self.engine.queue_depth,
                   "max_wait_ms_now": self.engine.max_wait_ms,
                   "workers": 1},
            families=_controller_families(self.controller))

    def start(self) -> None:
        self.engine.start()

    def stop(self) -> None:
        self.engine.stop()


class _ClusterBackend:
    """Serving backend over a multi-worker ``ServeCluster``."""

    def __init__(self, cluster, controller=None):
        self.cluster = cluster
        self.controller = controller

    @property
    def tracer(self):
        return self.cluster.tracer

    def handle_predict(self, samples, trace_id: Optional[str] = None) -> dict:
        if not isinstance(samples, (list, tuple)) or not samples:
            raise ValueError("'inputs' must be a non-empty list of samples")
        return self.cluster.predict(list(samples), trace_id=trace_id)

    def healthz(self) -> tuple[int, dict]:
        payload = self.cluster.healthz()
        # A cluster with zero live workers is not a server, it is an outage;
        # every other state (busy/overloaded/degraded) still answers 200 so
        # load balancers keep it in rotation — overload is signalled per
        # request via 429, not by failing the health probe.
        return (503 if payload["status"] == "down" else 200), payload

    def stats(self) -> dict:
        payload = self.cluster.stats()
        if self.controller is not None:
            payload["controller"] = self.controller.describe()
        return payload

    def traces(self) -> dict:
        tracer = self.cluster.tracer
        return {"tracing": tracer.summary(),
                "spans": [span.to_dict() for span in tracer.spans()]}

    def metrics_text(self) -> str:
        health = self.cluster.healthz()
        return render_prometheus(
            self.cluster.metrics_snapshot(),
            extra={"workers": health["workers"],
                   "workers_alive": health["alive"],
                   "max_wait_ms_now": self.cluster.max_wait_ms},
            families=_controller_families(self.controller))

    def start(self) -> None:
        self.cluster.start()

    def stop(self) -> None:
        self.cluster.stop()


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    # Silence per-request stderr logging; stats live in /stats.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def _reply(self, status: int, payload: dict,
               headers: Optional[dict] = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _reply_text(self, status: int, text: str,
                    content_type: str = "text/plain; version=0.0.4") -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    @property
    def backend(self):
        return self.server.backend  # type: ignore[attr-defined]

    def do_GET(self) -> None:  # noqa: N802 - stdlib signature
        if self.path == "/healthz":
            status, payload = self.backend.healthz()
            self._reply(status, payload)
        elif self.path == "/stats":
            self._reply(200, self.backend.stats())
        elif self.path == "/traces":
            self._reply(200, self.backend.traces())
        elif self.path == "/metrics":
            try:
                self._reply_text(200, self.backend.metrics_text())
            except Exception as exc:  # noqa: BLE001 - a scrape must not kill
                # the listener thread; degrade to an empty exposition.
                self._reply_text(200, f"# metrics unavailable: {exc}\n")
        else:
            self._reply(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib signature
        if self.path != "/predict":
            self._reply(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            document = json.loads(self.rfile.read(length) or b"")
            if not isinstance(document, dict):
                raise ValueError("request body must be a JSON object")
            # Trace-context propagation: a client-supplied X-Repro-Trace-Id
            # names the request's trace; the response echoes the id (header
            # + payload) whenever the request was traced.
            trace_id = self.headers.get(TRACE_HEADER) or None
            payload = self.backend.handle_predict(document.get("inputs"),
                                                  trace_id=trace_id)
        except FuturesTimeout as exc:  # wedged/overloaded batcher
            self._reply(504, {"error": f"prediction timed out: {exc}"})
            return
        except (ValueError, TypeError, json.JSONDecodeError) as exc:
            self._reply(400, {"error": str(exc)})
            return
        except AdmissionError as exc:
            # Backpressure, not failure: the admission queue is full, so
            # tell the client *when* to come back.  Retry-After is integer
            # delta-seconds per RFC 9110 (rounded up, never 0).
            retry_after = max(0.05, float(exc.retry_after_s))
            self._reply(429, {"error": str(exc),
                              "retry_after_s": retry_after},
                        headers={"Retry-After":
                                 str(max(1, math.ceil(retry_after)))})
            return
        except RuntimeError as exc:  # engine stopped / no workers
            self._reply(503, {"error": str(exc)})
            return
        except Exception as exc:  # noqa: BLE001 - a JSON 500 beats a dropped
            # connection: unexpected engine failures must still honour the
            # transport's error contract.
            self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})
            return
        headers = ({TRACE_HEADER: payload["trace_id"]}
                   if payload.get("trace_id") else None)
        self._reply(200, payload, headers=headers)


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    # The socketserver default backlog (5) drops connections the moment a
    # few dozen closed-loop clients connect at once; size it for the
    # concurrency the micro-batcher is built to absorb.
    request_queue_size = 256


class _HTTPShell:
    """Shared threaded-HTTP lifecycle over one serving backend."""

    def __init__(self, backend, host: str = "127.0.0.1", port: int = 0):
        self._backend = backend
        self._httpd = _Server((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.backend = backend  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should target."""
        return f"http://{self.host}:{self.port}"

    def start(self):
        """Start the backend and serve requests on a background thread."""
        self._backend.start()
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(target=self._httpd.serve_forever,
                                            name="repro-serve-http", daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting requests, then stop the backend."""
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self._thread = None
        self._httpd.server_close()
        self._backend.stop()

    def serve_forever(self) -> None:
        """Blocking serve loop (the ``repro serve`` CLI path)."""
        self._backend.start()
        try:
            self._httpd.serve_forever()
        finally:
            self._httpd.server_close()
            self._backend.stop()

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class ModelServer(_HTTPShell):
    """Threaded HTTP server wrapping one :class:`InferenceEngine`.

    ``port=0`` binds an ephemeral port (read it back from :attr:`port`
    after construction) — the test- and CI-friendly default.  The server
    owns the engine lifecycle: :meth:`start` starts the micro-batcher,
    :meth:`stop` shuts both down.
    """

    def __init__(self, engine: InferenceEngine, host: str = "127.0.0.1",
                 port: int = 0, controller=None):
        super().__init__(_EngineBackend(engine, controller=controller),
                         host=host, port=port)
        self.engine = engine

    def attach_controller(self, controller) -> None:
        """Expose a control loop's decisions via /stats and /metrics."""
        self._backend.controller = controller


class ClusterServer(_HTTPShell):
    """One HTTP listener over a multi-worker :class:`ServeCluster`.

    The listener thread pool accepts and parses requests; the actual MAC
    work happens in the cluster's worker processes, so the GIL in this
    process only touches JSON framing.  ``/stats`` aggregates across
    workers; ``/healthz`` reports ``ok``/``degraded``/``down`` (the last
    with HTTP 503).
    """

    def __init__(self, cluster, host: str = "127.0.0.1", port: int = 0,
                 controller=None):
        super().__init__(_ClusterBackend(cluster, controller=controller),
                         host=host, port=port)
        self.cluster = cluster

    def attach_controller(self, controller) -> None:
        """Expose a control loop's decisions via /stats and /metrics."""
        self._backend.controller = controller


class LocalClient:
    """In-process client speaking the transport's request contract.

    Drives the engine's micro-batcher directly — the load generator and the
    tests use it to exercise batching without socket overhead.
    """

    def __init__(self, engine: InferenceEngine):
        self.engine = engine

    def predict(self, samples: Sequence,
                trace_id: Optional[str] = None) -> dict:
        try:
            return _predict_payload(self.engine, list(samples),
                                    trace_id=trace_id)
        except FuturesTimeout as exc:
            raise ServeClientError(504, f"prediction timed out: {exc}") from exc
        except (ValueError, TypeError) as exc:
            raise ServeClientError(400, str(exc)) from exc
        except AdmissionError as exc:
            raise ServeClientError(429, str(exc),
                                   retry_after=exc.retry_after_s) from exc
        except RuntimeError as exc:
            raise ServeClientError(503, str(exc)) from exc

    def healthz(self) -> dict:
        return {"status": self.engine.load_state(),
                "artifact": self.engine.artifact_path,
                "format": self.engine.format.spec(),
                "guardrail": self.engine.guardrail_status}

    def stats(self) -> dict:
        return self.engine.stats()

    def traces(self) -> dict:
        tracer = self.engine.tracer
        return {"tracing": tracer.summary(),
                "spans": [span.to_dict() for span in tracer.spans()]}

    def metrics(self) -> str:
        return render_prometheus(
            self.engine.metrics.snapshot(),
            extra={"queue_depth_now": self.engine.queue_depth,
                   "max_wait_ms_now": self.engine.max_wait_ms,
                   "workers": 1})


class HTTPClient:
    """Minimal :mod:`urllib` client for a running :class:`ModelServer`."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(self, path: str, payload: Optional[dict] = None,
                 headers: Optional[dict] = None) -> dict:
        url = f"{self.base_url}{path}"
        data = None if payload is None else json.dumps(payload).encode("utf-8")
        request_headers = dict(headers or {})
        if data:
            request_headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data,
                                         headers=request_headers)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read()).get("error", "")
            except Exception:  # noqa: BLE001 - best-effort error body
                message = exc.reason
            retry_after = None
            header = exc.headers.get("Retry-After") if exc.headers else None
            if header is not None:
                try:
                    retry_after = float(header)
                except ValueError:
                    retry_after = None
            raise ServeClientError(exc.code, str(message),
                                   retry_after=retry_after) from exc

    def predict(self, samples: Sequence,
                trace_id: Optional[str] = None) -> dict:
        samples = [np.asarray(sample, dtype=np.float64).tolist()
                   for sample in samples]
        headers = {TRACE_HEADER: trace_id} if trace_id else None
        return self._request("/predict", {"inputs": samples},
                             headers=headers)

    def healthz(self) -> dict:
        return self._request("/healthz")

    def stats(self) -> dict:
        return self._request("/stats")

    def traces(self) -> dict:
        return self._request("/traces")

    def metrics(self) -> str:
        url = f"{self.base_url}/metrics"
        request = urllib.request.Request(url)
        with urllib.request.urlopen(request, timeout=self.timeout) as response:
            return response.read().decode("utf-8")
