"""Lock-cheap rolling-window serving metrics.

The control plane (:mod:`repro.serve.control`) steers the serving tier
from *measured* signals: queue depth, arrival/completion rates, batch
occupancy, per-stage latency percentiles, and rejection counts.  Those
signals must be

* **rolling** — a controller reacting to lifetime averages never reacts
  at all; every query aggregates only the last ``window_s`` seconds;
* **cheap on the hot path** — every request records two or three samples,
  so recording must be O(1) appends under one uncontended lock (no
  sorting, no allocation churn, no percentile math until someone asks);
* **deterministic under test** — the clock is injectable, so unit tests
  drive time explicitly instead of sleeping.

Implementation: a ring of ``buckets`` time buckets, each ``window_s /
buckets`` seconds wide.  Recording hashes the current time to a bucket and
appends; a bucket whose epoch is stale (the ring has lapped it) is reset
in place, so old data ages out with zero background work.  Reads walk the
ring once, keeping only buckets inside the queried window.

:func:`render_prometheus` turns a snapshot into the Prometheus text
exposition format for the transport's ``GET /metrics`` endpoint.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Mapping, Optional

import numpy as np

__all__ = ["MetricsCollector", "render_prometheus"]


class _Bucket:
    """One time slot of the ring: counters, latency samples, gauge sums."""

    __slots__ = ("epoch", "counts", "observations", "gauges")

    def __init__(self):
        self.epoch = -1
        self.counts: dict[str, float] = {}
        self.observations: dict[str, list[float]] = {}
        self.gauges: dict[str, list[float]] = {}  # [sum, n, max]

    def reset(self, epoch: int) -> None:
        self.epoch = epoch
        self.counts.clear()
        self.observations.clear()
        self.gauges.clear()


class MetricsCollector:
    """Rolling-window counters, latency stages, and sampled gauges.

    Parameters
    ----------
    window_s:
        Default aggregation horizon; queries may narrow it (never widen).
    buckets:
        Ring granularity.  ``window_s / buckets`` is both the aging
        resolution and the smallest meaningful query window.
    clock:
        Monotonic-seconds callable; injectable for deterministic tests.
    reservoir:
        Per-bucket, per-stage cap on retained latency samples (the count
        is still exact; only the percentile sample set is bounded).
    """

    def __init__(self, window_s: float = 10.0, buckets: int = 40,
                 clock: Callable[[], float] = time.monotonic,
                 reservoir: int = 512):
        if window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {window_s}")
        if buckets < 2:
            raise ValueError(f"buckets must be >= 2, got {buckets}")
        self.window_s = float(window_s)
        self.buckets = int(buckets)
        self.width_s = self.window_s / self.buckets
        self.reservoir = int(reservoir)
        self._clock = clock
        self._ring = [_Bucket() for _ in range(self.buckets)]
        self._lock = threading.Lock()
        self._created = clock()
        self._gauge_last: dict[str, float] = {}
        self._lifetime: dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # Recording (hot path)
    # ------------------------------------------------------------------ #
    def _bucket(self, now: float) -> _Bucket:
        epoch = int(now / self.width_s)
        bucket = self._ring[epoch % self.buckets]
        if bucket.epoch != epoch:
            bucket.reset(epoch)
        return bucket

    def count(self, name: str, n: float = 1) -> None:
        """Increment a windowed counter (``arrivals``, ``rejected``, ...)."""
        now = self._clock()
        with self._lock:
            bucket = self._bucket(now)
            bucket.counts[name] = bucket.counts.get(name, 0) + n
            self._lifetime[name] = self._lifetime.get(name, 0) + n

    def observe(self, stage: str, seconds: float) -> None:
        """Record one latency sample for ``stage`` (seconds)."""
        now = self._clock()
        with self._lock:
            bucket = self._bucket(now)
            samples = bucket.observations.setdefault(stage, [])
            # Count every sample; cap the percentile reservoir per bucket.
            bucket.counts[f"_obs_{stage}"] = (
                bucket.counts.get(f"_obs_{stage}", 0) + 1)
            if len(samples) < self.reservoir:
                samples.append(float(seconds))

    def gauge(self, name: str, value: float) -> None:
        """Record one gauge sample (queue depth, batch occupancy, ...)."""
        now = self._clock()
        with self._lock:
            bucket = self._bucket(now)
            cell = bucket.gauges.get(name)
            if cell is None:
                bucket.gauges[name] = [float(value), 1.0, float(value)]
            else:
                cell[0] += value
                cell[1] += 1
                cell[2] = max(cell[2], float(value))
            self._gauge_last[name] = float(value)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def _live_buckets(self, now: float, window_s: float) -> list[_Bucket]:
        newest = int(now / self.width_s)
        # A bucket is inside the window when its epoch is recent enough;
        # the current (partial) bucket always qualifies.
        span = max(1, min(self.buckets, int(round(window_s / self.width_s))))
        oldest = newest - span + 1
        return [bucket for bucket in self._ring if oldest <= bucket.epoch <= newest]

    def _elapsed(self, now: float, window_s: float) -> float:
        """Denominator for rates: never longer than the collector has lived."""
        return max(self.width_s, min(window_s, now - self._created))

    def count_in(self, name: str, window_s: Optional[float] = None) -> float:
        """Total of ``name`` over the last ``window_s`` seconds."""
        window_s = self.window_s if window_s is None else float(window_s)
        now = self._clock()
        with self._lock:
            return sum(bucket.counts.get(name, 0)
                       for bucket in self._live_buckets(now, window_s))

    def rate(self, name: str, window_s: Optional[float] = None) -> float:
        """Per-second rate of ``name`` over the last ``window_s`` seconds."""
        window_s = self.window_s if window_s is None else float(window_s)
        now = self._clock()
        with self._lock:
            total = sum(bucket.counts.get(name, 0)
                        for bucket in self._live_buckets(now, window_s))
        return total / self._elapsed(now, window_s)

    def snapshot(self, window_s: Optional[float] = None) -> dict:
        """One structured view of the whole window (the ``/stats`` rows).

        ``counts``/``rates`` for every counter, ``latency_ms`` per stage
        (count/mean/p50/p99/max), ``gauges`` (last/mean/max), plus
        ``lifetime`` totals for the counters (never windowed out).
        """
        window_s = self.window_s if window_s is None else float(window_s)
        now = self._clock()
        with self._lock:
            live = self._live_buckets(now, window_s)
            counts: dict[str, float] = {}
            observations: dict[str, list[float]] = {}
            gauges: dict[str, list[float]] = {}
            for bucket in live:
                for name, value in bucket.counts.items():
                    counts[name] = counts.get(name, 0) + value
                for stage, samples in bucket.observations.items():
                    observations.setdefault(stage, []).extend(samples)
                for name, (total, n, peak) in bucket.gauges.items():
                    cell = gauges.setdefault(name, [0.0, 0.0, float("-inf")])
                    cell[0] += total
                    cell[1] += n
                    cell[2] = max(cell[2], peak)
            gauge_last = dict(self._gauge_last)
            lifetime = dict(self._lifetime)
        elapsed = self._elapsed(now, window_s)
        latency_ms = {}
        for stage, samples in observations.items():
            data = np.asarray(samples, dtype=np.float64) * 1000.0
            latency_ms[stage] = {
                "count": int(counts.pop(f"_obs_{stage}", data.size)),
                "mean": float(data.mean()) if data.size else 0.0,
                "p50": float(np.percentile(data, 50)) if data.size else 0.0,
                "p99": float(np.percentile(data, 99)) if data.size else 0.0,
                "max": float(data.max()) if data.size else 0.0,
            }
        # Stages with counted-but-aged-out reservoirs still report counts.
        for name in [key for key in counts if key.startswith("_obs_")]:
            stage = name[len("_obs_"):]
            latency_ms.setdefault(stage, {"count": int(counts[name]), "mean": 0.0,
                                          "p50": 0.0, "p99": 0.0, "max": 0.0})
            del counts[name]
        return {
            "window_s": elapsed,
            "counts": counts,
            "rates": {name: value / elapsed for name, value in counts.items()},
            "latency_ms": latency_ms,
            "gauges": {name: {"last": gauge_last.get(name, 0.0),
                              "mean": (total / n) if n else 0.0,
                              "max": peak if n else 0.0}
                       for name, (total, n, peak) in gauges.items()},
            "lifetime": {name: value for name, value in lifetime.items()
                         if not name.startswith("_obs_")},
        }


def _merge_latency(rows: list[dict]) -> dict:
    """Request-weighted merge of per-worker latency summaries."""
    merged: dict[str, dict] = {}
    stages = {stage for row in rows for stage in row}
    for stage in stages:
        cells = [row[stage] for row in rows if stage in row]
        total = sum(cell["count"] for cell in cells)
        weighted = (lambda key: (sum(cell[key] * cell["count"] for cell in cells)
                                 / total) if total else 0.0)
        merged[stage] = {
            "count": int(total),
            "mean": weighted("mean"),
            "p50": weighted("p50"),
            "p99": weighted("p99"),
            "max": max((cell["max"] for cell in cells), default=0.0),
        }
    return merged


def merge_snapshots(snapshots: list[dict]) -> dict:
    """Aggregate per-worker snapshots into one cluster-level view.

    Counts/rates/lifetimes sum; gauges sum ``last`` (cluster queue depth is
    the *total* queued work) and keep the max of ``max``; latency
    percentiles merge request-weighted (exact merging would need the raw
    samples, which never leave the worker).
    """
    if not snapshots:
        return {"window_s": 0.0, "counts": {}, "rates": {}, "latency_ms": {},
                "gauges": {}, "lifetime": {}}
    counts: dict[str, float] = {}
    rates: dict[str, float] = {}
    lifetime: dict[str, float] = {}
    gauges: dict[str, dict] = {}
    for snap in snapshots:
        for name, value in snap.get("counts", {}).items():
            counts[name] = counts.get(name, 0) + value
        for name, value in snap.get("rates", {}).items():
            rates[name] = rates.get(name, 0) + value
        for name, value in snap.get("lifetime", {}).items():
            lifetime[name] = lifetime.get(name, 0) + value
        for name, cell in snap.get("gauges", {}).items():
            merged = gauges.setdefault(
                name, {"last": 0.0, "mean": 0.0, "max": 0.0})
            merged["last"] += cell.get("last", 0.0)
            merged["mean"] += cell.get("mean", 0.0)
            merged["max"] = max(merged["max"], cell.get("max", 0.0))
    return {
        "window_s": max(snap.get("window_s", 0.0) for snap in snapshots),
        "counts": counts,
        "rates": rates,
        "latency_ms": _merge_latency([snap.get("latency_ms", {})
                                      for snap in snapshots]),
        "gauges": gauges,
        "lifetime": lifetime,
    }


#: Help strings for metric families whose meaning is not obvious from the
#: name alone; everything else gets a generated one-liner.
_FAMILY_HELP = {
    "latency_ms": "Rolling-window request latency per pipeline stage "
                  "(milliseconds; quantile label selects p50/p99/mean/max).",
    "latency_samples": "Latency samples observed per stage in the window.",
    "queue_depth": "Admission-queue depth sampled by the engine.",
    "batch_occupancy": "Realized batch size as a fraction of max_batch.",
    "max_wait_ms_now": "Current (possibly AIMD-tuned) coalescing wait.",
}


def render_prometheus(snapshot: Mapping, prefix: str = "repro_serve",
                      extra: Optional[Mapping] = None,
                      families: Optional[list] = None) -> str:
    """Render one snapshot in the Prometheus text exposition format.

    ``lifetime`` counters become ``*_total``, windowed rates ``*_per_s``,
    latency stages ``{prefix}_latency_ms{stage=...,quantile=...}``, gauges
    plain gauges.  ``extra`` appends scalar gauges (load state flags, the
    current ``max_wait_ms``, worker counts) without touching the collector.

    Every series is preceded by ``# HELP``/``# TYPE`` comment lines (one
    block per metric family, samples grouped under it) so a real
    Prometheus scraper ingests the page cleanly; serve it with
    ``Content-Type: text/plain; version=0.0.4``.  Names ending in
    ``_total`` are typed ``counter``, everything else ``gauge``.

    ``families`` appends fully-named extra families (each a dict with
    ``name``, ``type``, ``help``, and ``samples`` — a list of
    ``(labels_dict, value)``) for producers outside the collector, e.g.
    the controller's ``repro_controller_decisions_total{action=...}``.
    """
    # (family, labels, value) triples in emission order; HELP/TYPE blocks
    # are written per family with its samples grouped beneath.
    samples: list[tuple[str, str, float]] = []

    def emit(name: str, value, labels: str = "") -> None:
        if isinstance(value, bool):
            value = int(value)
        if not isinstance(value, (int, float)):
            return
        samples.append((f"{prefix}_{name}", labels, float(value)))

    for name, value in sorted((snapshot.get("lifetime") or {}).items()):
        emit(f"{name}_total", value)
    for name, value in sorted((snapshot.get("rates") or {}).items()):
        emit(f"{name}_per_s", value)
    for stage, cell in sorted((snapshot.get("latency_ms") or {}).items()):
        for quantile in ("p50", "p99", "mean", "max"):
            emit("latency_ms",
                 cell.get(quantile, 0.0),
                 f'{{stage="{stage}",quantile="{quantile}"}}')
        emit("latency_samples", cell.get("count", 0), f'{{stage="{stage}"}}')
    for name, cell in sorted((snapshot.get("gauges") or {}).items()):
        emit(name, cell.get("last", 0.0))
        emit(f"{name}_mean", cell.get("mean", 0.0))
        emit(f"{name}_max", cell.get("max", 0.0))
    for name, value in sorted((extra or {}).items()):
        emit(name, value)

    grouped: dict[str, list[tuple[str, float]]] = {}
    for family, labels, value in samples:
        grouped.setdefault(family, []).append((labels, value))

    lines: list[str] = []
    for family, rows in grouped.items():
        bare = family[len(prefix) + 1:] if family.startswith(f"{prefix}_") else family
        kind = "counter" if family.endswith("_total") else "gauge"
        help_text = _FAMILY_HELP.get(bare, f"repro serving metric '{bare}'.")
        lines.append(f"# HELP {family} {help_text}")
        lines.append(f"# TYPE {family} {kind}")
        for labels, value in rows:
            lines.append(f"{family}{labels} {value:g}")

    for family in families or ():
        name = family["name"]
        lines.append(f"# HELP {name} {family.get('help', name)}")
        lines.append(f"# TYPE {name} {family.get('type', 'gauge')}")
        for labels, value in family.get("samples", ()):
            if isinstance(labels, Mapping):
                labels = ("{" + ",".join(f'{key}="{val}"'
                                         for key, val in sorted(labels.items()))
                          + "}") if labels else ""
            lines.append(f"{name}{labels} {float(value):g}")
    return "\n".join(lines) + "\n"
