"""repro.serve — packed posit model artifacts + batched inference serving.

The deployment subsystem the paper's §V outlook points at: a model trained
in posit is *served* in posit.  Four layers, composable separately:

* :mod:`repro.serve.packing` / :mod:`repro.serve.artifact` — the storage
  format: every parameter packed through its
  :class:`~repro.formats.NumberFormat` ``to_bits`` into dense n-bit buffers
  (sub-byte widths included) behind a checksummed JSON manifest;
  bit-identical round trips, and the paper's 4x-vs-FP32 memory claim made
  measurable on real checkpoints (:func:`~repro.serve.artifact.save_model`,
  :func:`~repro.serve.artifact.load_model`).  Since artifact **v2.0** the
  format is per tensor — mixed-precision exports mirror the training
  policy's :class:`~repro.core.policy.RoleFormats` assignment — and every
  tensor lives in its own SHA-256-checksummed segment, so loads stream one
  tensor at a time (:func:`~repro.serve.artifact.iter_tensors`,
  :func:`~repro.serve.artifact.segment_table`) with peak extra memory
  bounded by the largest segment; v1.0/v1.1 artifacts load bit-identically
  (golden fixtures under ``tests/serve/fixtures/`` pin this).
* :mod:`repro.serve.engine` — :class:`InferenceEngine`: loads one artifact,
  caches decoded weights + activation quantizers, and serves through
  dynamic micro-batching (coalesce up to ``max_batch`` requests within
  ``max_wait_ms``) with per-request latency and hardware-model energy
  accounting.
* :mod:`repro.serve.transport` — a stdlib JSON-over-HTTP server
  (``/predict``, ``/healthz``, ``/stats``) plus in-process and urllib
  clients sharing one request contract.
* :mod:`repro.serve.cluster` — :class:`ServeCluster`: N engine worker
  *processes* (the single process is GIL-bound) behind one dispatcher with
  round-robin + least-outstanding routing, crash detection/restart, and
  aggregated stats; each worker independently replays the artifact's v1.1
  startup **guardrail** (a held-out calibration batch with its expected
  logits and reference accuracy) and refuses to serve on any drift
  (:class:`GuardrailError`).
* :mod:`repro.serve.control` / :mod:`repro.serve.metrics` — the adaptive
  control plane: a lock-cheap rolling-window metrics collector sampled by
  every engine (arrivals, rejects, batch occupancy, per-stage p50/p99)
  feeds a periodic :class:`Controller` that autoscales the cluster between
  ``min_workers``/``max_workers`` (capped at ``os.cpu_count()`` — two
  workers on one core is slower than one), AIMD-tunes ``max_wait_ms``
  against a p99 SLO, and grades load as ok/busy/overloaded.  Overflowing
  the bounded admission queue is backpressure, not failure:
  :class:`AdmissionError` maps to HTTP 429 + ``Retry-After``.
* :mod:`repro.obs` (cross-cutting) — optional request tracing: pass a
  :class:`~repro.obs.TraceConfig` as ``tracing=`` to
  :class:`InferenceEngine` or :class:`ServeCluster` and every sampled
  request is recorded as one span tree (admission → queue → batch → codec
  → forward → respond), exposed at ``/traces``, echoed via
  ``X-Repro-Trace-Id``, and exportable as Chrome trace-event JSON.
* :mod:`repro.serve.export` — training-stack integration:
  :func:`export_experiment`, :func:`train_and_export`, and
  :func:`serve_best` (promote a sweep store's winner to an artifact);
  :mod:`repro.serve.loadgen` closes the loop with a concurrent
  load-generator for benchmarks and CI.

Quickstart::

    from repro.api import ExperimentConfig
    from repro.serve import train_and_export, InferenceEngine

    config = ExperimentConfig(dataset="blobs", model="mlp", policy="posit(8,1)")
    train_and_export(config, "model.rpak")
    with InferenceEngine("model.rpak") as engine:
        logits = engine.predict(sample)

or, from the shell: ``repro export --config exp.json --output model.rpak``
then ``repro serve model.rpak --port 8000``.
"""

from .artifact import (
    ARTIFACT_MINOR_VERSION,
    ARTIFACT_VERSION,
    SUPPORTED_VERSIONS,
    ArtifactError,
    artifact_info,
    format_breakdown,
    fp32_state_nbytes,
    iter_tensors,
    load_model,
    load_state,
    read_manifest,
    resolve_format_map,
    save_model,
    segment_table,
)
from .cluster import ClusterConfig, ClusterError, ServeCluster
# The load classifier is exported as ``classify_load``: ``load_state`` at
# package level is the artifact state loader above.
from .control import (
    ClusterPlant,
    ControlConfig,
    Controller,
    EnginePlant,
)
from .control import load_state as classify_load
from .engine import AdmissionError, BatchingConfig, GuardrailError, InferenceEngine
from .export import (
    build_guardrail,
    calibrate_activation_centers,
    default_export_format,
    default_export_format_map,
    export_experiment,
    pick_best_record,
    serve_best,
    train_and_export,
)
from .loadgen import LoadReport, run_load
from .metrics import MetricsCollector, merge_snapshots, render_prometheus
from .packing import pack_codes, packed_nbytes, unpack_codes
from .transport import (
    ClusterServer,
    HTTPClient,
    LocalClient,
    ModelServer,
    ServeClientError,
)

__all__ = [
    "ARTIFACT_VERSION",
    "ARTIFACT_MINOR_VERSION",
    "SUPPORTED_VERSIONS",
    "ArtifactError",
    "GuardrailError",
    "ClusterConfig",
    "ClusterError",
    "ServeCluster",
    "ClusterServer",
    "build_guardrail",
    "save_model",
    "load_model",
    "load_state",
    "iter_tensors",
    "artifact_info",
    "read_manifest",
    "segment_table",
    "format_breakdown",
    "resolve_format_map",
    "fp32_state_nbytes",
    "pack_codes",
    "unpack_codes",
    "packed_nbytes",
    "AdmissionError",
    "BatchingConfig",
    "InferenceEngine",
    "Controller",
    "ControlConfig",
    "EnginePlant",
    "ClusterPlant",
    "classify_load",
    "MetricsCollector",
    "merge_snapshots",
    "render_prometheus",
    "ModelServer",
    "LocalClient",
    "HTTPClient",
    "ServeClientError",
    "export_experiment",
    "train_and_export",
    "serve_best",
    "pick_best_record",
    "default_export_format",
    "default_export_format_map",
    "calibrate_activation_centers",
    "run_load",
    "LoadReport",
]
