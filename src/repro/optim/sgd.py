"""Stochastic gradient descent with momentum (the paper's optimizer).

Table III specifies "SGD with Moment" (momentum 0.9) for both the Cifar-10
and ImageNet runs.  The optimizer here additionally supports weight decay and
Nesterov momentum for the ablation benchmarks, and exposes the two hooks the
posit training flow needs (Fig. 3b/3c):

* ``grad_transform`` — applied to each parameter gradient before it is used
  (quantization of ``ΔW`` to posit),
* ``param_transform`` — applied to each parameter value after the update
  (quantization of the stored weights ``W_p``).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

import numpy as np

from ..nn.module import Parameter

__all__ = ["SGD", "Optimizer"]

TensorTransform = Callable[[np.ndarray, Parameter], np.ndarray]


class Optimizer:
    """Base class holding a parameter list and the shared transform hooks."""

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)
        self.grad_transform: Optional[TensorTransform] = None
        self.param_transform: Optional[TensorTransform] = None

    def zero_grad(self) -> None:
        """Clear gradients of all managed parameters."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update step; implemented by subclasses."""
        raise NotImplementedError


class SGD(Optimizer):
    """SGD with momentum, optional Nesterov momentum and weight decay.

    The update rule matches PyTorch's implementation so that the training
    recipes of the paper transfer directly:

    .. code-block:: text

        g   = grad + weight_decay * w
        v   = momentum * v + g
        w  -= lr * (g + momentum * v)      # if nesterov
        w  -= lr * v                        # otherwise

    Parameters
    ----------
    parameters:
        Parameters to optimize.
    lr:
        Learning rate (Table III uses 0.1 initially).
    momentum:
        Momentum coefficient (Table III uses 0.9).
    weight_decay:
        L2 penalty coefficient.
    nesterov:
        Whether to use Nesterov momentum.
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float,
                 momentum: float = 0.0, weight_decay: float = 0.0,
                 nesterov: bool = False):
        super().__init__(parameters, lr)
        if momentum < 0:
            raise ValueError(f"momentum must be non-negative, got {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight decay must be non-negative, got {weight_decay}")
        if nesterov and momentum == 0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocities: dict[int, np.ndarray] = {}

    def step(self) -> None:
        """Apply one SGD update to every parameter that has a gradient."""
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            if self.grad_transform is not None:
                grad = self.grad_transform(grad, param)
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data

            if self.momentum:
                velocity = self._velocities.get(id(param))
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                velocity = self.momentum * velocity + grad
                self._velocities[id(param)] = velocity
                update = grad + self.momentum * velocity if self.nesterov else velocity
            else:
                update = grad

            param.data = param.data - self.lr * update
            if self.param_transform is not None:
                param.data = self.param_transform(param.data, param)

    def state_dict(self) -> dict:
        """Return optimizer state (velocities keyed by parameter index)."""
        return {
            "lr": self.lr,
            "momentum": self.momentum,
            "weight_decay": self.weight_decay,
            "nesterov": self.nesterov,
            "velocities": {
                i: self._velocities[id(p)].copy()
                for i, p in enumerate(self.parameters)
                if id(p) in self._velocities
            },
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore optimizer state produced by :meth:`state_dict`."""
        self.lr = state["lr"]
        self.momentum = state["momentum"]
        self.weight_decay = state["weight_decay"]
        self.nesterov = state["nesterov"]
        self._velocities = {
            id(self.parameters[i]): np.array(v, copy=True)
            for i, v in state["velocities"].items()
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SGD(lr={self.lr}, momentum={self.momentum}, "
            f"weight_decay={self.weight_decay}, nesterov={self.nesterov})"
        )
