"""Optimizers and learning-rate schedulers."""

from .schedulers import CosineAnnealingLR, LinearWarmupLR, LRScheduler, MultiStepLR, StepLR
from .sgd import SGD, Optimizer

__all__ = [
    "Optimizer",
    "SGD",
    "LRScheduler",
    "MultiStepLR",
    "StepLR",
    "CosineAnnealingLR",
    "LinearWarmupLR",
]
