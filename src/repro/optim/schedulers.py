"""Learning-rate schedulers.

The paper's recipes (Table III) use step decay: divide the learning rate by
10 at fixed epochs (60/150/250 for Cifar-10; every 30 epochs for ImageNet).
:class:`MultiStepLR` and :class:`StepLR` implement exactly those shapes;
:class:`CosineAnnealingLR` and :class:`LinearWarmupLR` are provided for the
extension experiments.
"""

from __future__ import annotations

import math
from typing import Sequence

from .sgd import Optimizer

__all__ = ["LRScheduler", "MultiStepLR", "StepLR", "CosineAnnealingLR", "LinearWarmupLR"]


class LRScheduler:
    """Base class: adjusts ``optimizer.lr`` as a function of the epoch index."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.last_epoch = -1

    def get_lr(self, epoch: int) -> float:
        """Return the learning rate to use for ``epoch``; overridden by subclasses."""
        raise NotImplementedError

    def step(self, epoch: int | None = None) -> float:
        """Advance to ``epoch`` (or the next epoch) and update the optimizer."""
        if epoch is None:
            epoch = self.last_epoch + 1
        self.last_epoch = epoch
        lr = self.get_lr(epoch)
        self.optimizer.lr = lr
        return lr


class MultiStepLR(LRScheduler):
    """Divide the learning rate by ``gamma`` at each epoch in ``milestones``.

    This is the Cifar-10 recipe of Table III with
    ``milestones=(60, 150, 250), gamma=0.1``.
    """

    def __init__(self, optimizer: Optimizer, milestones: Sequence[int], gamma: float = 0.1):
        super().__init__(optimizer)
        self.milestones = sorted(int(m) for m in milestones)
        self.gamma = gamma

    def get_lr(self, epoch: int) -> float:
        passed = sum(1 for m in self.milestones if epoch >= m)
        return self.base_lr * (self.gamma**passed)


class StepLR(LRScheduler):
    """Divide the learning rate by ``gamma`` every ``step_size`` epochs.

    This is the ImageNet recipe of Table III with ``step_size=30, gamma=0.1``.
    """

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self, epoch: int) -> float:
        return self.base_lr * (self.gamma ** (epoch // self.step_size))


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base learning rate to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError(f"t_max must be positive, got {t_max}")
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self, epoch: int) -> float:
        epoch = min(epoch, self.t_max)
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (
            1.0 + math.cos(math.pi * epoch / self.t_max)
        )


class LinearWarmupLR(LRScheduler):
    """Linearly ramp the learning rate for ``warmup_epochs`` then delegate.

    Useful in combination with the paper's FP32 warm-up phase when training
    from scratch with large batch sizes.
    """

    def __init__(self, optimizer: Optimizer, warmup_epochs: int, after: LRScheduler | None = None):
        super().__init__(optimizer)
        if warmup_epochs < 0:
            raise ValueError(f"warmup_epochs must be non-negative, got {warmup_epochs}")
        self.warmup_epochs = warmup_epochs
        self.after = after

    def get_lr(self, epoch: int) -> float:
        if self.warmup_epochs > 0 and epoch < self.warmup_epochs:
            return self.base_lr * (epoch + 1) / self.warmup_epochs
        if self.after is not None:
            return self.after.get_lr(epoch)
        return self.base_lr
