"""Simple multi-layer perceptron models.

Used by the quickstart example, the toy-dataset experiments (spirals/blobs),
and as a fast stand-in model in unit tests of the training pipeline.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..nn import Dropout, Linear, Module, ReLU, Sequential
from ..tensor import Tensor

__all__ = ["MLP"]


class MLP(Module):
    """Fully-connected classifier with ReLU activations.

    Parameters
    ----------
    in_features:
        Input dimensionality (flattened).
    hidden:
        Sizes of the hidden layers.
    num_classes:
        Output dimensionality.
    dropout:
        Optional dropout probability applied after each hidden layer.
    rng:
        Random generator for initialization.
    """

    def __init__(self, in_features: int, hidden: Sequence[int] = (128, 64),
                 num_classes: int = 10, dropout: float = 0.0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        layers: list[Module] = []
        previous = in_features
        for width in hidden:
            layers.append(Linear(previous, width, rng=rng))
            layers.append(ReLU())
            if dropout > 0:
                layers.append(Dropout(dropout, rng=rng))
            previous = width
        layers.append(Linear(previous, num_classes, rng=rng))
        self.body = Sequential(*layers)
        self.in_features = in_features
        self.num_classes = num_classes

    def forward(self, x: Tensor) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        if x.ndim > 2:
            x = x.flatten(start_dim=1)
        return self.body(x)
