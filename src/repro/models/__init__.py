"""Model zoo: ResNets (the paper's models) plus small reference models."""

from .lenet import LeNet
from .mlp import MLP
from .resnet import (
    BasicBlock,
    ResNet,
    cifar_resnet8,
    cifar_resnet18,
    resnet18,
    tiny_resnet,
)

__all__ = [
    "BasicBlock",
    "ResNet",
    "cifar_resnet18",
    "cifar_resnet8",
    "resnet18",
    "tiny_resnet",
    "MLP",
    "LeNet",
]
