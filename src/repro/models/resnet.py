"""Residual networks (He et al. [1]) — the models evaluated in the paper.

The paper trains two variants (Table III):

* **Cifar-ResNet-18** on Cifar-10 — the Cifar-style ResNet with a 3x3 stem
  and three or four stages of BasicBlocks on 32x32 inputs.
* **ResNet-18** on ImageNet — the standard ImageNet ResNet-18 with a 7x7
  stride-2 stem, max pooling, and four stages on 224x224 inputs.

Both are provided here in fully-parameterized form (depth per stage, base
width, number of classes, input resolution) so that the benchmark harness can
run faithful-but-scaled-down versions on CPU: the *structure* (conv/BN
ordering, residual connections, downsampling projections) is identical to the
paper's models, which is what the distribution phenomena of Fig. 2 and the
layer-wise quantization policy depend on.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..nn import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
)
from ..tensor import Tensor

__all__ = [
    "BasicBlock",
    "ResNet",
    "cifar_resnet18",
    "cifar_resnet8",
    "resnet18",
    "tiny_resnet",
]


def _conv3x3(in_channels: int, out_channels: int, stride: int = 1,
             rng: Optional[np.random.Generator] = None) -> Conv2d:
    return Conv2d(in_channels, out_channels, 3, stride=stride, padding=1, bias=False, rng=rng)


def _conv1x1(in_channels: int, out_channels: int, stride: int = 1,
             rng: Optional[np.random.Generator] = None) -> Conv2d:
    return Conv2d(in_channels, out_channels, 1, stride=stride, padding=0, bias=False, rng=rng)


class BasicBlock(Module):
    """The two-convolution residual block used by ResNet-18/34.

    ``conv3x3 -> BN -> ReLU -> conv3x3 -> BN -> (+ shortcut) -> ReLU``

    A 1x1 projection shortcut is used whenever the spatial resolution or the
    channel count changes.
    """

    expansion = 1

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.conv1 = _conv3x3(in_channels, out_channels, stride, rng)
        self.bn1 = BatchNorm2d(out_channels)
        self.relu = ReLU()
        self.conv2 = _conv3x3(out_channels, out_channels, 1, rng)
        self.bn2 = BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels * self.expansion:
            self.downsample = Sequential(
                _conv1x1(in_channels, out_channels * self.expansion, stride, rng),
                BatchNorm2d(out_channels * self.expansion),
            )
        else:
            self.downsample = Identity()

    def forward(self, x: Tensor) -> Tensor:
        identity = self.downsample(x)
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        return self.relu(out + identity)


class ResNet(Module):
    """Parameterized residual network.

    Parameters
    ----------
    stage_blocks:
        Number of BasicBlocks in each stage, e.g. ``(2, 2, 2, 2)`` for
        ResNet-18.
    num_classes:
        Size of the classification head.
    base_width:
        Channel count of the first stage; each subsequent stage doubles it.
        The paper's models use 64; the scaled-down benchmark variants use 8
        or 16 to stay trainable on CPU.
    stem:
        ``"cifar"`` (3x3 stride-1 conv, no max pool — for 32x32 inputs) or
        ``"imagenet"`` (7x7 stride-2 conv followed by 3x3 max pooling — for
        larger inputs).
    in_channels:
        Number of input image channels.
    rng:
        Random generator used for weight initialization, making model
        construction fully deterministic given a seed.
    """

    def __init__(self, stage_blocks: Sequence[int] = (2, 2, 2, 2),
                 num_classes: int = 10, base_width: int = 64,
                 stem: str = "cifar", in_channels: int = 3,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        if stem not in ("cifar", "imagenet"):
            raise ValueError(f"stem must be 'cifar' or 'imagenet', got {stem!r}")
        self.stem_kind = stem
        self.stage_blocks = tuple(stage_blocks)
        self.base_width = base_width
        self.num_classes = num_classes

        if stem == "cifar":
            self.conv1 = _conv3x3(in_channels, base_width, 1, rng)
            self.maxpool = Identity()
        else:
            self.conv1 = Conv2d(in_channels, base_width, 7, stride=2, padding=3,
                                bias=False, rng=rng)
            self.maxpool = MaxPool2d(3, stride=2, padding=1)
        self.bn1 = BatchNorm2d(base_width)
        self.relu = ReLU()

        stages = []
        channels = base_width
        in_ch = base_width
        for stage_index, num_blocks in enumerate(self.stage_blocks):
            stride = 1 if stage_index == 0 else 2
            blocks = []
            for block_index in range(num_blocks):
                blocks.append(
                    BasicBlock(in_ch, channels, stride if block_index == 0 else 1, rng)
                )
                in_ch = channels * BasicBlock.expansion
            stages.append(Sequential(*blocks))
            if stage_index != len(self.stage_blocks) - 1:
                channels *= 2
        # Register stages as layer1..layerN to match torchvision naming.
        for i, stage in enumerate(stages, start=1):
            setattr(self, f"layer{i}", stage)
        self._stages = stages

        self.avgpool = GlobalAvgPool2d()
        self.flatten = Flatten()
        self.fc = Linear(in_ch, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.maxpool(out)
        for stage in self._stages:
            out = stage(out)
        out = self.avgpool(out)
        return self.fc(out)

    def describe(self) -> dict:
        """Return a structural summary (parameter count, stages, widths)."""
        return {
            "stem": self.stem_kind,
            "stage_blocks": self.stage_blocks,
            "base_width": self.base_width,
            "num_classes": self.num_classes,
            "num_parameters": self.num_parameters(),
            "num_conv_layers": sum(1 for m in self.modules() if isinstance(m, Conv2d)),
            "num_bn_layers": sum(1 for m in self.modules() if isinstance(m, BatchNorm2d)),
        }


def cifar_resnet18(num_classes: int = 10, base_width: int = 64,
                   rng: Optional[np.random.Generator] = None) -> ResNet:
    """The Cifar-ResNet-18 of Table III: 4 stages of 2 BasicBlocks, 3x3 stem."""
    return ResNet((2, 2, 2, 2), num_classes=num_classes, base_width=base_width,
                  stem="cifar", rng=rng)


def cifar_resnet8(num_classes: int = 10, base_width: int = 16,
                  rng: Optional[np.random.Generator] = None) -> ResNet:
    """A 3-stage, 1-block-per-stage Cifar ResNet (8 weighted layers)."""
    return ResNet((1, 1, 1), num_classes=num_classes, base_width=base_width,
                  stem="cifar", rng=rng)


def resnet18(num_classes: int = 1000, base_width: int = 64,
             rng: Optional[np.random.Generator] = None) -> ResNet:
    """The ImageNet ResNet-18 of Table III: 7x7 stem, max pool, 4 stages."""
    return ResNet((2, 2, 2, 2), num_classes=num_classes, base_width=base_width,
                  stem="imagenet", rng=rng)


def tiny_resnet(num_classes: int = 10, base_width: int = 8,
                stem: str = "cifar",
                rng: Optional[np.random.Generator] = None) -> ResNet:
    """A deliberately small ResNet ((1, 1) stages) for unit tests and CI."""
    return ResNet((1, 1), num_classes=num_classes, base_width=base_width,
                  stem=stem, rng=rng)
