"""LeNet-style small convolutional network.

A compact conv/pool/linear model in the spirit of LeCun's LeNet-5, used by
the examples and by the Deep-Positron-style low-bit inference comparisons on
small datasets (the paper's related work, [12]).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
)
from ..tensor import Tensor

__all__ = ["LeNet"]


class LeNet(Module):
    """Small convolutional classifier for ~32x32 inputs.

    Parameters
    ----------
    in_channels:
        Number of image channels.
    num_classes:
        Output classes.
    image_size:
        Spatial size of the (square) input images; used to size the first
        fully-connected layer.
    batch_norm:
        Whether to insert BatchNorm after each convolution (the paper's
        models are BN-heavy, so the default is True to exercise the same
        per-layer quantization paths).
    """

    def __init__(self, in_channels: int = 3, num_classes: int = 10,
                 image_size: int = 32, batch_norm: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        if image_size % 4 != 0:
            raise ValueError(f"image_size must be divisible by 4, got {image_size}")

        def block(cin: int, cout: int) -> list[Module]:
            layers: list[Module] = [Conv2d(cin, cout, 5, padding=2, bias=not batch_norm, rng=rng)]
            if batch_norm:
                layers.append(BatchNorm2d(cout))
            layers.append(ReLU())
            layers.append(MaxPool2d(2))
            return layers

        feature_size = (image_size // 4) ** 2 * 16
        self.features = Sequential(*(block(in_channels, 6) + block(6, 16)))
        self.classifier = Sequential(
            Flatten(),
            Linear(feature_size, 120, rng=rng),
            ReLU(),
            Linear(120, 84, rng=rng),
            ReLU(),
            Linear(84, num_classes, rng=rng),
        )

    def forward(self, x: Tensor) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        return self.classifier(self.features(x))
