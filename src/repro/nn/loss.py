"""Loss modules.

Wraps the functional losses from :mod:`repro.tensor.functional` in Module
classes so they compose with the rest of the layer API, and adds the loss
scaling helper used by mixed-precision baselines (Micikevicius et al. [9]).
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, cross_entropy, mse_loss
from .module import Module

__all__ = ["CrossEntropyLoss", "MSELoss", "LossScaler"]


class CrossEntropyLoss(Module):
    """Softmax cross-entropy over integer class labels.

    Parameters
    ----------
    label_smoothing:
        Optional label-smoothing factor in ``[0, 1)``.
    """

    def __init__(self, label_smoothing: float = 0.0):
        super().__init__()
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError(f"label_smoothing must be in [0, 1), got {label_smoothing}")
        self.label_smoothing = label_smoothing

    def forward(self, logits: Tensor, labels: np.ndarray) -> Tensor:
        return cross_entropy(logits, labels, label_smoothing=self.label_smoothing)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CrossEntropyLoss(label_smoothing={self.label_smoothing})"


class MSELoss(Module):
    """Mean squared error loss."""

    def forward(self, prediction: Tensor, target) -> Tensor:
        return mse_loss(prediction, target)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "MSELoss()"


class LossScaler:
    """Static or dynamic loss scaling for low-precision gradient propagation.

    Reduced-precision formats with limited dynamic range (FP16/FP8) need the
    loss to be scaled up before backward so that small gradients do not
    underflow; the gradients are unscaled again before the optimizer step.
    Posit with its tapered precision largely avoids the need for this (one of
    the paper's motivations), but the baseline comparisons use it.

    Parameters
    ----------
    scale:
        Initial multiplicative scale applied to the loss.
    dynamic:
        When true, the scale is doubled every ``growth_interval`` successful
        steps and halved whenever a non-finite gradient is observed.
    """

    def __init__(self, scale: float = 1024.0, dynamic: bool = False,
                 growth_interval: int = 200, min_scale: float = 1.0,
                 max_scale: float = 2.0**24):
        if scale <= 0:
            raise ValueError(f"loss scale must be positive, got {scale}")
        self.scale = float(scale)
        self.dynamic = dynamic
        self.growth_interval = growth_interval
        self.min_scale = min_scale
        self.max_scale = max_scale
        self._good_steps = 0

    def scale_loss(self, loss: Tensor) -> Tensor:
        """Return ``loss * scale`` (graph-connected)."""
        return loss * self.scale

    def unscale_gradients(self, parameters) -> bool:
        """Divide parameter gradients by the scale in place.

        Returns ``False`` (and skips the update bookkeeping) if any gradient
        is non-finite, which signals the caller to skip the optimizer step.
        """
        finite = True
        for param in parameters:
            if param.grad is None:
                continue
            if not np.all(np.isfinite(param.grad)):
                finite = False
            param.grad = param.grad / self.scale
        if self.dynamic:
            if finite:
                self._good_steps += 1
                if self._good_steps >= self.growth_interval:
                    self.scale = min(self.scale * 2.0, self.max_scale)
                    self._good_steps = 0
            else:
                self.scale = max(self.scale / 2.0, self.min_scale)
                self._good_steps = 0
        return finite

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LossScaler(scale={self.scale}, dynamic={self.dynamic})"
