"""Neural-network layers built on the autograd tensor substrate.

Each compute layer (``Conv2d``, ``Linear``, ``BatchNorm2d``) honours an
optional per-layer quantization context (``self.quant``), which is how the
posit transformation P(.) of the paper (Fig. 3) is inserted into the forward,
backward, and activation paths:

* the layer *input* is wrapped so that the error gradient flowing back to the
  previous layer is quantized (backward path, Fig. 3b),
* the *weights* (and biases) are fake-quantized before use (forward path,
  Fig. 3a),
* the *output activation* is quantized after the layer's computation
  (forward path, Fig. 3a).

Weight-gradient quantization (``ΔW``) and post-update weight quantization
(Fig. 3b/3c) are handled by the trainer and the optimizer, because they act
on tensors that only exist between backward and the parameter update.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..tensor import Tensor, avg_pool2d, batch_norm, conv2d, dropout, linear, max_pool2d
from . import init
from .module import Module, Parameter

__all__ = [
    "Identity",
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "ReLU",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
    "Sequential",
]


def _apply_quant_input(module: Module, x: Tensor) -> Tensor:
    """Quantize the error gradient flowing to the previous layer (Fig. 3b)."""
    q = module.quant
    if q is not None and q.enabled:
        return q.error(x)
    return x


def _apply_quant_weight(module: Module, w: Tensor) -> Tensor:
    """Fake-quantize a weight tensor for the forward computation (Fig. 3a)."""
    q = module.quant
    if q is not None and q.enabled:
        return q.weight(w)
    return w


def _apply_quant_activation(module: Module, a: Tensor) -> Tensor:
    """Quantize the output activation of a layer (Fig. 3a)."""
    q = module.quant
    if q is not None and q.enabled:
        return q.activation(a)
    return a


class Identity(Module):
    """Pass-through layer."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Linear(Module):
    """Fully-connected layer ``y = x W^T + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output dimensionality.
    bias:
        Whether to learn an additive bias.
    rng:
        Random generator for initialization (defaults to a fresh generator).
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.kaiming_uniform((out_features, in_features), rng, mode="fan_in")
        )
        if bias:
            bound = 1.0 / np.sqrt(in_features)
            self.bias = Parameter(rng.uniform(-bound, bound, size=out_features))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        x = _apply_quant_input(self, x)
        w = _apply_quant_weight(self, self.weight)
        b = _apply_quant_weight(self, self.bias) if self.bias is not None else None
        out = linear(x, w, b)
        return _apply_quant_activation(self, out)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Linear(in_features={self.in_features}, out_features={self.out_features}, "
            f"bias={self.bias is not None})"
        )


class Conv2d(Module):
    """2-D convolution layer over NCHW inputs.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts.
    kernel_size, stride, padding:
        Spatial hyperparameters (int or pair).
    bias:
        Whether to learn a bias (ResNets use ``bias=False`` before BatchNorm).
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size,
                 stride=1, padding=0, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        kh, kw = (kernel_size, kernel_size) if isinstance(kernel_size, int) else kernel_size
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kh, kw)
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            init.kaiming_normal((out_channels, in_channels, kh, kw), rng, mode="fan_out")
        )
        if bias:
            fan_in = in_channels * kh * kw
            bound = 1.0 / np.sqrt(fan_in)
            self.bias = Parameter(rng.uniform(-bound, bound, size=out_channels))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        x = _apply_quant_input(self, x)
        w = _apply_quant_weight(self, self.weight)
        b = _apply_quant_weight(self, self.bias) if self.bias is not None else None
        out = conv2d(x, w, b, stride=self.stride, padding=self.padding)
        return _apply_quant_activation(self, out)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, "
            f"padding={self.padding}, bias={self.bias is not None})"
        )


class BatchNorm2d(Module):
    """Batch normalization over the channel dimension of NCHW inputs.

    Keeps running mean/variance buffers updated with exponential moving
    averages during training and uses them at evaluation time.  The paper's
    Table III footnote assigns BN layers wider posit formats (16 bits) than
    conv layers (8 bits) on Cifar-10; that distinction is expressed through
    the per-layer quantization policy, not through this class.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(init.ones_(num_features))
        self.bias = Parameter(init.zeros_(num_features))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        x = _apply_quant_input(self, x)
        gamma = _apply_quant_weight(self, self.weight)
        beta = _apply_quant_weight(self, self.bias)
        out = batch_norm(
            x,
            gamma,
            beta,
            self.running_mean,
            self.running_var,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )
        return _apply_quant_activation(self, out)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BatchNorm2d({self.num_features}, eps={self.eps}, momentum={self.momentum})"


class ReLU(Module):
    """Rectified linear unit layer."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "ReLU()"


class MaxPool2d(Module):
    """Max pooling layer."""

    def __init__(self, kernel_size, stride=None, padding=0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return max_pool2d(x, self.kernel_size, self.stride, self.padding)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MaxPool2d(kernel_size={self.kernel_size}, stride={self.stride}, padding={self.padding})"


class AvgPool2d(Module):
    """Average pooling layer."""

    def __init__(self, kernel_size, stride=None, padding=0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return avg_pool2d(x, self.kernel_size, self.stride, self.padding)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AvgPool2d(kernel_size={self.kernel_size}, stride={self.stride}, padding={self.padding})"


class GlobalAvgPool2d(Module):
    """Average over the entire spatial extent, yielding ``(N, C)``."""

    def forward(self, x: Tensor) -> Tensor:
        return x.mean(axis=(2, 3))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "GlobalAvgPool2d()"


class Flatten(Module):
    """Flatten all dimensions after the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(start_dim=1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Flatten()"


class Dropout(Module):
    """Inverted dropout layer."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.p = p
        self.rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return dropout(x, self.p, self.training, rng=self.rng)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dropout(p={self.p})"


class Sequential(Module):
    """Container applying child modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        if len(modules) == 1 and isinstance(modules[0], Sequence):
            modules = tuple(modules[0])
        self._ordered: list[Module] = []
        for i, module in enumerate(modules):
            setattr(self, str(i), module)
            self._ordered.append(module)

    def forward(self, x: Tensor) -> Tensor:
        for module in self._ordered:
            x = module(x)
        return x

    def __iter__(self):
        return iter(self._ordered)

    def __len__(self) -> int:
        return len(self._ordered)

    def __getitem__(self, index: int) -> Module:
        return self._ordered[index]
