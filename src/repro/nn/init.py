"""Weight initialization schemes (Kaiming / Xavier / constants).

The paper trains ResNets with the standard He ("Kaiming") initialization used
by the original ResNet work; the observation in Fig. 2 — that BatchNorm weight
distributions shift sharply during early epochs because of their
initialization — depends on initializing BN scale parameters to one, which is
what :func:`ones_` provides.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "kaiming_normal",
    "kaiming_uniform",
    "xavier_normal",
    "xavier_uniform",
    "zeros_",
    "ones_",
    "normal_",
    "compute_fans",
]


def compute_fans(shape: tuple[int, ...]) -> tuple[int, int]:
    """Return ``(fan_in, fan_out)`` for a weight tensor shape.

    For convolution weights of shape ``(out, in, kh, kw)`` the receptive field
    size multiplies both fans, matching PyTorch's convention.
    """
    if len(shape) < 1:
        raise ValueError("weight shape must have at least one dimension")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def kaiming_normal(shape, rng: np.random.Generator, mode: str = "fan_out",
                   nonlinearity: str = "relu") -> np.ndarray:
    """He-normal initialization, the ResNet default."""
    fan_in, fan_out = compute_fans(tuple(shape))
    fan = fan_out if mode == "fan_out" else fan_in
    gain = math.sqrt(2.0) if nonlinearity == "relu" else 1.0
    std = gain / math.sqrt(fan)
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape, rng: np.random.Generator, mode: str = "fan_in",
                    nonlinearity: str = "relu") -> np.ndarray:
    """He-uniform initialization."""
    fan_in, fan_out = compute_fans(tuple(shape))
    fan = fan_out if mode == "fan_out" else fan_in
    gain = math.sqrt(2.0) if nonlinearity == "relu" else 1.0
    bound = gain * math.sqrt(3.0 / fan)
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape, rng: np.random.Generator) -> np.ndarray:
    """Glorot-normal initialization."""
    fan_in, fan_out = compute_fans(tuple(shape))
    std = math.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(shape, rng: np.random.Generator) -> np.ndarray:
    """Glorot-uniform initialization."""
    fan_in, fan_out = compute_fans(tuple(shape))
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def zeros_(shape) -> np.ndarray:
    """All-zeros initialization (biases, BN shift)."""
    return np.zeros(shape, dtype=np.float64)


def ones_(shape) -> np.ndarray:
    """All-ones initialization (BN scale)."""
    return np.ones(shape, dtype=np.float64)


def normal_(shape, rng: np.random.Generator, mean: float = 0.0, std: float = 0.01) -> np.ndarray:
    """Plain normal initialization (classifier heads)."""
    return rng.normal(mean, std, size=shape)
