"""Module / Parameter system (the substrate replacing ``torch.nn.Module``).

A :class:`Module` owns named :class:`Parameter` tensors and named child
modules, supports recursive traversal (``parameters()``, ``named_modules()``),
train/eval mode switching, and state-dict style serialization to plain NumPy
arrays.

The quantized-training machinery of :mod:`repro.core` attaches per-layer
quantization contexts to modules through the ``quant`` attribute defined
here; layers consult it in their ``forward`` implementations, which is how
the posit transformation P(.) of Fig. 3 is inserted into the computation
flow without modifying the model definitions.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Optional

import numpy as np

from ..tensor import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A trainable tensor: ``requires_grad=True`` by default."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural-network layers and models.

    Subclasses define parameters and sub-modules as attributes in
    ``__init__`` and implement :meth:`forward`.  Attribute assignment is
    intercepted so that parameters and children are registered automatically,
    mirroring the PyTorch API that the paper's training code relies on.
    """

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)
        # Per-layer quantization context attached by repro.core; None means
        # the layer computes in full precision.
        object.__setattr__(self, "quant", None)

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            value.name = value.name or name
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable array that is part of the module state.

        Buffers (e.g. BatchNorm running statistics) are included in
        :meth:`state_dict` but not in :meth:`parameters`.
        """
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------ #
    # Traversal
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs recursively."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> list[Parameter]:
        """Return all parameters of this module and its children."""
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        """Yield ``(qualified_name, module)`` pairs, including ``self`` as ``""``."""
        yield (prefix.rstrip("."), self)
        for child_name, child in self._modules.items():
            yield from child.named_modules(prefix=f"{prefix}{child_name}.")

    def modules(self) -> list["Module"]:
        """Return all modules in the tree, including ``self``."""
        return [m for _, m in self.named_modules()]

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        """Yield ``(qualified_name, buffer)`` pairs recursively."""
        for name in self._buffers:
            yield (f"{prefix}{name}", getattr(self, name))
        for child_name, child in self._modules.items():
            yield from child.named_buffers(prefix=f"{prefix}{child_name}.")

    # ------------------------------------------------------------------ #
    # Mode switching
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects BatchNorm, Dropout)."""
        object.__setattr__(self, "training", mode)
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear gradients of all parameters."""
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------ #
    # State dict
    # ------------------------------------------------------------------ #
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        """Return a flat mapping of parameter and buffer names to array copies."""
        state: "OrderedDict[str, np.ndarray]" = OrderedDict()
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            state[name] = np.array(buf, copy=True)
        return state

    def load_state_dict(self, state: dict) -> None:
        """Load parameters and buffers from a mapping produced by :meth:`state_dict`."""
        params = dict(self.named_parameters())
        buffers = dict(self.named_buffers())
        missing = (set(params) | set(buffers)) - set(state)
        unexpected = set(state) - (set(params) | set(buffers))
        if missing:
            raise KeyError(f"missing keys in state dict: {sorted(missing)}")
        if unexpected:
            raise KeyError(f"unexpected keys in state dict: {sorted(unexpected)}")
        for name, param in params.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {param.data.shape}, got {value.shape}"
                )
            param.data[...] = value
        for name, buf in buffers.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != np.asarray(buf).shape:
                raise ValueError(
                    f"shape mismatch for buffer {name}: expected {np.asarray(buf).shape}, "
                    f"got {value.shape}"
                )
            np.asarray(buf)[...] = value

    def num_parameters(self) -> int:
        """Total number of trainable scalar parameters."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------ #
    # Forward
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        """Compute the module's output; must be overridden by subclasses."""
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        child_lines = [f"  ({name}): {module!r}" for name, module in self._modules.items()]
        if not child_lines:
            return f"{type(self).__name__}()"
        body = "\n".join(child_lines)
        return f"{type(self).__name__}(\n{body}\n)"
