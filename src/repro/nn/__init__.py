"""Neural-network layer substrate (Module/Parameter system and layers)."""

from . import init
from .layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)
from .loss import CrossEntropyLoss, LossScaler, MSELoss
from .module import Module, Parameter

__all__ = [
    "init",
    "Module",
    "Parameter",
    "Identity",
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "ReLU",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
    "Sequential",
    "CrossEntropyLoss",
    "MSELoss",
    "LossScaler",
]
