"""Span-based tracing with monotonic clocks and a bounded ring recorder.

Design constraints, in order:

1. **Zero overhead when off.**  Serving code guards every trace touch with
   ``if tracer.enabled`` (one attribute read) or carries ``None`` where a
   span would be; a disabled tracer never allocates.
2. **Negligible overhead when on.**  Head-based sampling: the *root* of a
   request decides once (one ``random()``) whether the request is traced;
   everything downstream either receives an :class:`ActiveSpan` / context
   dict (traced) or ``None`` (not).  Unsampled requests pay nothing past
   the root check.
3. **Cross-thread and cross-process assembly.**  The engine's stages run
   on different threads (submit on the request thread, batching on the
   batcher thread) and — under :class:`~repro.serve.cluster.ServeCluster`
   — in different *processes*.  Thread-local context cannot flow there,
   so spans carry explicit ``trace_id``/``parent_id`` strings and may be
   recorded *retroactively* from timestamps the pipeline already collects
   (:meth:`ActiveSpan.record_child`).  Clocks are ``time.perf_counter``,
   which on Linux is ``CLOCK_MONOTONIC`` — a machine-wide timebase, so
   spans recorded in forked worker processes land on the same axis as the
   supervisor's when merged into one Chrome trace.

Trace context is a plain dict — ``{"trace_id", "parent_id", "sampled"}``
— so it rides HTTP headers and worker-pipe payloads without a codec.  The
HTTP header carrying the trace id in both directions is
:data:`TRACE_HEADER` (``X-Repro-Trace-Id``).
"""

from __future__ import annotations

import os
import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional

__all__ = [
    "TRACE_HEADER",
    "TraceConfig",
    "Span",
    "ActiveSpan",
    "Tracer",
    "new_trace_id",
    "new_span_id",
]

# Header used to accept an incoming trace id on /predict and to echo the
# request's trace id back on the response (both HTTP transports).
TRACE_HEADER = "X-Repro-Trace-Id"

# Fork-aware RNG: cluster workers are forked with the supervisor's RNG
# state, so a module-level Random would deal *identical* id streams in
# every process — colliding span ids inside one merged trace.  Reseed on
# first use in each new pid.
_rand = random.Random()
_rand_pid = os.getpid()


def _rng() -> random.Random:
    global _rand, _rand_pid
    pid = os.getpid()
    if pid != _rand_pid:
        _rand = random.Random()
        _rand_pid = pid
    return _rand


def new_trace_id() -> str:
    """A 32-hex-char trace id (128 random bits)."""

    return f"{_rng().getrandbits(128):032x}"


def new_span_id() -> str:
    """A 16-hex-char span id (64 random bits)."""

    return f"{_rng().getrandbits(64):016x}"


@dataclass
class TraceConfig:
    """Tracer settings.

    ``enabled=False`` is the hard off switch: no sampling roll, no spans,
    no ring.  ``sample_rate`` is the head-based probability that a given
    request is traced (``1.0`` = every request, ``0.0`` = armed but
    recording nothing).  ``capacity`` bounds the in-memory span ring;
    ``slow_ms``/``slow_keep`` control the top-K slow-request exemplars
    kept alongside it; ``profile_codec`` additionally enables the
    per-format codec profiler for the lifetime of the traced engine so
    traces carry a codec span.
    """

    enabled: bool = False
    sample_rate: float = 1.0
    capacity: int = 4096
    slow_ms: float = 250.0
    slow_keep: int = 8
    profile_codec: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= float(self.sample_rate) <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1], got {self.sample_rate}"
            )
        if int(self.capacity) < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")
        if int(self.slow_keep) < 1:
            raise ValueError(f"slow_keep must be >= 1, got {self.slow_keep}")
        if float(self.slow_ms) < 0:
            raise ValueError(f"slow_ms must be >= 0, got {self.slow_ms}")
        self.sample_rate = float(self.sample_rate)
        self.capacity = int(self.capacity)
        self.slow_ms = float(self.slow_ms)
        self.slow_keep = int(self.slow_keep)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "enabled": bool(self.enabled),
            "sample_rate": self.sample_rate,
            "capacity": self.capacity,
            "slow_ms": self.slow_ms,
            "slow_keep": self.slow_keep,
            "profile_codec": bool(self.profile_codec),
        }

    @classmethod
    def from_dict(cls, payload: Optional[Mapping[str, Any]]) -> "TraceConfig":
        if payload is None:
            return cls()
        known = {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        return cls(**{k: v for k, v in payload.items() if k in known})


@dataclass
class Span:
    """A finished span: a named interval on the shared monotonic clock."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    start_s: float
    end_s: float
    pid: int = field(default_factory=os.getpid)
    annotations: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_ms(self) -> float:
        return (self.end_s - self.start_s) * 1e3

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "pid": self.pid,
            "annotations": dict(self.annotations),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Span":
        return cls(
            trace_id=str(payload["trace_id"]),
            span_id=str(payload["span_id"]),
            parent_id=payload.get("parent_id"),
            name=str(payload["name"]),
            start_s=float(payload["start_s"]),
            end_s=float(payload["end_s"]),
            pid=int(payload.get("pid", 0)),
            annotations=dict(payload.get("annotations") or {}),
        )


class ActiveSpan:
    """An in-flight span.  Finish it (or record children) to emit.

    Not a context manager by accident of the serving pipeline: engine
    stages start and end on different threads, so spans are closed
    explicitly with :meth:`finish` or recorded after the fact with
    :meth:`record_child`.  For straight-line code, ``with`` works too.
    """

    __slots__ = (
        "tracer",
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start_s",
        "annotations",
        "_done",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        parent_id: Optional[str] = None,
        start_s: Optional[float] = None,
        annotations: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = new_span_id()
        self.parent_id = parent_id
        self.start_s = tracer.clock() if start_s is None else start_s
        self.annotations: Dict[str, Any] = dict(annotations or {})
        self._done = False

    def annotate(self, **annotations: Any) -> "ActiveSpan":
        self.annotations.update(annotations)
        return self

    def context(self) -> Dict[str, Any]:
        """Propagation context: ship this dict; the receiver adopts it."""

        return {"trace_id": self.trace_id, "parent_id": self.span_id, "sampled": True}

    def child(
        self,
        name: str,
        start_s: Optional[float] = None,
        annotations: Optional[Dict[str, Any]] = None,
    ) -> "ActiveSpan":
        return ActiveSpan(
            self.tracer,
            name,
            trace_id=self.trace_id,
            parent_id=self.span_id,
            start_s=start_s,
            annotations=annotations,
        )

    def record_child(
        self,
        name: str,
        start_s: float,
        end_s: float,
        parent_id: Optional[str] = None,
        **annotations: Any,
    ) -> Span:
        """Retroactively record a finished child from collected timestamps."""

        return self.tracer.record_span(
            name,
            start_s,
            end_s,
            trace_id=self.trace_id,
            parent_id=self.span_id if parent_id is None else parent_id,
            annotations=annotations or None,
        )

    def finish(self, end_s: Optional[float] = None, **annotations: Any) -> Optional[Span]:
        """Close the span and record it.  Idempotent: repeats are no-ops."""

        if self._done:
            return None
        self._done = True
        if annotations:
            self.annotations.update(annotations)
        span = Span(
            trace_id=self.trace_id,
            span_id=self.span_id,
            parent_id=self.parent_id,
            name=self.name,
            start_s=self.start_s,
            end_s=self.tracer.clock() if end_s is None else end_s,
            annotations=self.annotations,
        )
        self.tracer.record(span)
        return span

    def __enter__(self) -> "ActiveSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None and "error" not in self.annotations:
            self.annotations["error"] = repr(exc)
        self.finish()


class Tracer:
    """Bounded-ring span recorder with head-based probabilistic sampling.

    Thread-safe; every engine/cluster owns one.  ``enabled`` mirrors the
    config and is the only thing the hot path reads when tracing is off.
    """

    def __init__(
        self,
        config: Optional[TraceConfig] = None,
        clock: Callable[[], float] = time.perf_counter,
        sampler: Optional[Callable[[], float]] = None,
    ) -> None:
        self.config = config or TraceConfig()
        self.clock = clock
        self._sampler = sampler or (lambda: _rng().random())
        self._lock = threading.Lock()
        self._ring: deque = deque(maxlen=self.config.capacity)
        self._slow: List[Dict[str, Any]] = []
        self.spans_total = 0
        self.traces_total = 0
        self.dropped_unsampled = 0

    # -- properties -------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    @property
    def sample_rate(self) -> float:
        return self.config.sample_rate

    # -- span creation ----------------------------------------------------

    def begin(
        self,
        name: str,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        sampled: Optional[bool] = None,
        annotations: Optional[Dict[str, Any]] = None,
        start_s: Optional[float] = None,
    ) -> Optional[ActiveSpan]:
        """Start a root (or explicitly-parented) span, or ``None``.

        ``None`` means "this request is not traced" and is what the whole
        pipeline passes around for the unsampled/disabled case.  When
        ``sampled`` is not forced by an upstream decision, the sampling
        roll happens here — once per request.
        """

        if not self.config.enabled:
            return None
        if sampled is None:
            rate = self.config.sample_rate
            sampled = rate >= 1.0 or (rate > 0.0 and self._sampler() < rate)
        if not sampled:
            self.dropped_unsampled += 1
            return None
        return ActiveSpan(
            self,
            name,
            trace_id=trace_id or new_trace_id(),
            parent_id=parent_id,
            start_s=start_s,
            annotations=annotations,
        )

    def adopt(
        self,
        context: Optional[Mapping[str, Any]],
        name: str,
        annotations: Optional[Dict[str, Any]] = None,
        start_s: Optional[float] = None,
    ) -> Optional[ActiveSpan]:
        """Continue a propagated trace context (from a header or a pipe).

        An upstream sampling decision is authoritative: a context with
        ``sampled=True`` records here even if this tracer's own rate would
        have skipped it, so one request yields one *complete* trace.
        """

        if not self.config.enabled or not context:
            return None
        if not context.get("sampled", True):
            return None
        return ActiveSpan(
            self,
            name,
            trace_id=str(context.get("trace_id") or new_trace_id()),
            parent_id=context.get("parent_id"),
            start_s=start_s,
            annotations=annotations,
        )

    # -- recording --------------------------------------------------------

    def record(self, span: Span) -> None:
        with self._lock:
            self._ring.append(span)
            self.spans_total += 1
            if span.parent_id is None:
                self.traces_total += 1
                self._note_slow(span)

    def record_span(
        self,
        name: str,
        start_s: float,
        end_s: float,
        trace_id: str,
        parent_id: Optional[str] = None,
        annotations: Optional[Mapping[str, Any]] = None,
    ) -> Span:
        span = Span(
            trace_id=trace_id,
            span_id=new_span_id(),
            parent_id=parent_id,
            name=name,
            start_s=start_s,
            end_s=end_s,
            annotations=dict(annotations or {}),
        )
        self.record(span)
        return span

    def ingest(self, payloads: Iterable[Mapping[str, Any]]) -> int:
        """Merge serialized spans (e.g. returned over a worker pipe)."""

        count = 0
        for payload in payloads:
            self.record(Span.from_dict(payload))
            count += 1
        return count

    def _note_slow(self, span: Span) -> None:
        # Caller holds the lock.  Top-K root spans over the SLO threshold,
        # kept sorted slowest-first.
        if span.duration_ms < self.config.slow_ms:
            return
        exemplar = {
            "trace_id": span.trace_id,
            "name": span.name,
            "duration_ms": round(span.duration_ms, 3),
            "annotations": dict(span.annotations),
        }
        self._slow.append(exemplar)
        self._slow.sort(key=lambda e: e["duration_ms"], reverse=True)
        del self._slow[self.config.slow_keep :]

    # -- inspection -------------------------------------------------------

    def spans(self, trace_id: Optional[str] = None) -> List[Span]:
        with self._lock:
            if trace_id is None:
                return list(self._ring)
            return [s for s in self._ring if s.trace_id == trace_id]

    def traces(self) -> Dict[str, List[Span]]:
        """Spans in the ring grouped by trace id, each sorted by start."""

        grouped: Dict[str, List[Span]] = {}
        for span in self.spans():
            grouped.setdefault(span.trace_id, []).append(span)
        for spans in grouped.values():
            spans.sort(key=lambda s: s.start_s)
        return grouped

    def slow_traces(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [dict(e) for e in self._slow]

    def summary(self) -> Dict[str, Any]:
        with self._lock:
            in_ring = len(self._ring)
            slow = [dict(e) for e in self._slow]
        return {
            "enabled": self.config.enabled,
            "sample_rate": self.config.sample_rate,
            "spans_total": self.spans_total,
            "traces_total": self.traces_total,
            "dropped_unsampled": self.dropped_unsampled,
            "spans_in_ring": in_ring,
            "slow_ms": self.config.slow_ms,
            "slow_traces": slow,
        }

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._slow.clear()
            self.spans_total = 0
            self.traces_total = 0
            self.dropped_unsampled = 0
