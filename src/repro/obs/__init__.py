"""repro.obs — end-to-end request tracing and codec hot-path profiling.

The serving tier's aggregate metrics (:mod:`repro.serve.metrics`) answer
"how is the fleet doing"; this package answers the two questions aggregates
cannot: *where did this one slow request spend its time*, and *which codec
path is hot enough to be worth rewriting*.

Three layers, usable independently:

* :mod:`repro.obs.tracing` — a span-based tracer: :class:`Tracer` records
  :class:`Span` trees (monotonic ``time.perf_counter`` clocks, explicit
  parent ids so spans recorded from different threads and processes still
  nest) into a bounded in-memory ring, with head-based probabilistic
  sampling so the hot path pays one ``random()`` per request when tracing
  is on and a single attribute check when it is off.  Trace context is a
  plain JSON-able dict, so it survives HTTP headers
  (``X-Repro-Trace-Id``) and cluster worker pipes unchanged.
* :mod:`repro.obs.profiler` — the codec hot-path profiler: per-format,
  per-op (``quantize`` / ``to_bits`` / ``from_bits``) call counts, element
  counts, and cumulative nanoseconds, collected by instrumenting the
  format classes and the quantizer factory's cached callables.  Its
  :func:`~repro.obs.profiler.format_table` is the measured baseline the
  ROADMAP's vectorized/LUT kernel rewrite will be judged against.
* :mod:`repro.obs.export` — exporters: spans serialize to JSONL (one span
  per line, the ``repro trace`` CLI's interchange format) and to the
  Chrome trace-event format, which loads directly in Perfetto /
  ``chrome://tracing``; :func:`~repro.obs.export.validate_chrome_trace`
  schema-checks an exported document (required keys, monotonic
  timestamps, matched B/E pairs) so CI can gate on well-formedness.

The serving integration lives in :mod:`repro.serve`: engines stamp
admission → queue → batch → codec → forward → respond spans, clusters
carry trace context across worker pipes (one client trace covers a
transparent failover retry, both attempts annotated), and ``/predict``
responses echo the trace id so load generators can link slow requests to
exported traces.
"""

from .export import (
    read_jsonl,
    span_to_chrome_event,
    summarize_traces,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from .profiler import (
    CodecProfiler,
    disable_profiling,
    enable_profiling,
    format_table,
    profiler,
    profile_snapshot,
    reset_profile,
)
from .tracing import (
    TRACE_HEADER,
    ActiveSpan,
    Span,
    TraceConfig,
    Tracer,
    new_span_id,
    new_trace_id,
)

__all__ = [
    "TRACE_HEADER",
    "ActiveSpan",
    "Span",
    "TraceConfig",
    "Tracer",
    "new_span_id",
    "new_trace_id",
    "CodecProfiler",
    "profiler",
    "enable_profiling",
    "disable_profiling",
    "reset_profile",
    "profile_snapshot",
    "format_table",
    "span_to_chrome_event",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "read_jsonl",
    "summarize_traces",
]
