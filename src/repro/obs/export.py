"""Trace exporters: JSONL interchange and Chrome trace-event format.

JSONL (one serialized :class:`~repro.obs.tracing.Span` per line) is the
interchange format the ``repro trace`` CLI reads back.  The Chrome
trace-event document (``{"traceEvents": [...]}`` with complete ``"X"``
events) loads directly in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``.

The exporter maps span fields onto trace-event fields as:

* ``ts``/``dur`` — microseconds on the span's monotonic clock (shared
  machine-wide, so supervisor and worker-process spans align);
* ``pid`` — the recording process, so cluster hops render as lanes;
* ``tid`` — a small integer per trace id, so concurrent requests stack
  into separate rows instead of overlapping;
* ``args`` — the span's annotations plus its trace/span/parent ids.

:func:`validate_chrome_trace` is the schema gate used by tests and CI:
required keys per event, non-negative monotonic-sane timestamps, and
matched ``B``/``E`` pairs for any duration events (ours are all ``X``,
but hand-edited traces are checked too).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from .tracing import Span

__all__ = [
    "write_jsonl",
    "read_jsonl",
    "span_to_chrome_event",
    "to_chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "summarize_traces",
]

SpanLike = Union[Span, Mapping[str, Any]]

_REQUIRED_EVENT_KEYS = ("name", "ph", "ts", "pid", "tid")


def _as_span(item: SpanLike) -> Span:
    return item if isinstance(item, Span) else Span.from_dict(item)


# -- JSONL ----------------------------------------------------------------

def write_jsonl(spans: Iterable[SpanLike], path: str) -> int:
    """Write one span per line; returns the number written."""

    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for item in spans:
            span = _as_span(item)
            fh.write(json.dumps(span.to_dict(), sort_keys=True))
            fh.write("\n")
            count += 1
    return count


def read_jsonl(path: str) -> List[Span]:
    spans: List[Span] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(Span.from_dict(json.loads(line)))
    return spans


# -- Chrome trace-event ---------------------------------------------------

def span_to_chrome_event(span: SpanLike, tid: int = 0) -> Dict[str, Any]:
    """One complete ("X") trace event for a finished span."""

    s = _as_span(span)
    args = dict(s.annotations)
    args["trace_id"] = s.trace_id
    args["span_id"] = s.span_id
    if s.parent_id:
        args["parent_id"] = s.parent_id
    return {
        "name": s.name,
        "ph": "X",
        "cat": "repro",
        "ts": s.start_s * 1e6,
        "dur": max(0.0, (s.end_s - s.start_s) * 1e6),
        "pid": s.pid,
        "tid": tid,
        "args": args,
    }


def to_chrome_trace(spans: Iterable[SpanLike]) -> Dict[str, Any]:
    """A Perfetto-loadable trace-event document for a batch of spans."""

    events: List[Dict[str, Any]] = []
    tids: Dict[str, int] = {}
    for item in spans:
        span = _as_span(item)
        tid = tids.setdefault(span.trace_id, len(tids) + 1)
        events.append(span_to_chrome_event(span, tid=tid))
    events.sort(key=lambda e: e["ts"])
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs", "span_count": len(events)},
    }


def write_chrome_trace(spans: Iterable[SpanLike], path: str) -> Dict[str, Any]:
    doc = to_chrome_trace(spans)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
    return doc


def validate_chrome_trace(doc: Any) -> List[str]:
    """Schema-check a trace-event document; returns problems ([] = valid).

    Checks: top-level shape, required keys per event, numeric
    non-negative ``ts`` (and ``dur`` for ``X`` events), events sorted by
    ``ts`` (monotonic within the document), and matched ``B``/``E``
    nesting per ``(pid, tid)`` stack.
    """

    problems: List[str] = []
    if not isinstance(doc, Mapping):
        return [f"document is {type(doc).__name__}, expected a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, Sequence) or isinstance(events, (str, bytes)):
        return ["traceEvents missing or not an array"]

    last_ts = None
    stacks: Dict[tuple, List[str]] = {}
    for i, event in enumerate(events):
        where = f"event[{i}]"
        if not isinstance(event, Mapping):
            problems.append(f"{where}: not an object")
            continue
        missing = [k for k in _REQUIRED_EVENT_KEYS if k not in event]
        if missing:
            problems.append(f"{where}: missing keys {missing}")
            continue
        ph = event["ph"]
        ts = event["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: ts must be a non-negative number, got {ts!r}")
            continue
        if last_ts is not None and ts < last_ts:
            problems.append(
                f"{where}: ts {ts} is before previous event ts {last_ts}"
                " (events must be sorted)"
            )
        last_ts = ts
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(
                    f"{where}: complete event needs non-negative dur, got {dur!r}"
                )
        elif ph == "B":
            stacks.setdefault((event["pid"], event["tid"]), []).append(event["name"])
        elif ph == "E":
            stack = stacks.setdefault((event["pid"], event["tid"]), [])
            if not stack:
                problems.append(f"{where}: E event with no matching B")
            else:
                stack.pop()
    for (pid, tid), stack in stacks.items():
        if stack:
            problems.append(
                f"unclosed B events on pid={pid} tid={tid}: {stack}"
            )
    return problems


# -- summaries ------------------------------------------------------------

def summarize_traces(spans: Iterable[SpanLike],
                     slow_ms: Optional[float] = None) -> Dict[str, Any]:
    """Aggregate spans into per-trace and per-stage views for the CLI.

    Returns ``{"traces": [...], "stages": {...}, "span_count", ...}`` with
    one row per trace (root name, duration, per-stage ms) and per-stage
    aggregate count / total / mean / max across all traces.
    """

    by_trace: Dict[str, List[Span]] = {}
    for item in spans:
        span = _as_span(item)
        by_trace.setdefault(span.trace_id, []).append(span)

    traces: List[Dict[str, Any]] = []
    stages: Dict[str, Dict[str, float]] = {}
    for trace_id, members in by_trace.items():
        members.sort(key=lambda s: s.start_s)
        roots = [s for s in members if s.parent_id is None]
        root = roots[0] if roots else min(members, key=lambda s: s.start_s)
        stage_ms: Dict[str, float] = {}
        for span in members:
            stage_ms[span.name] = stage_ms.get(span.name, 0.0) + span.duration_ms
            agg = stages.setdefault(
                span.name, {"count": 0, "total_ms": 0.0, "max_ms": 0.0}
            )
            agg["count"] += 1
            agg["total_ms"] += span.duration_ms
            agg["max_ms"] = max(agg["max_ms"], span.duration_ms)
        duration = (max(s.end_s for s in members) - min(s.start_s for s in members)) * 1e3
        traces.append({
            "trace_id": trace_id,
            "root": root.name,
            "spans": len(members),
            "duration_ms": round(duration, 3),
            "stage_ms": {k: round(v, 3) for k, v in stage_ms.items()},
        })
    traces.sort(key=lambda t: t["duration_ms"], reverse=True)

    for agg in stages.values():
        agg["mean_ms"] = agg["total_ms"] / agg["count"] if agg["count"] else 0.0
        agg["total_ms"] = round(agg["total_ms"], 3)
        agg["mean_ms"] = round(agg["mean_ms"], 3)
        agg["max_ms"] = round(agg["max_ms"], 3)

    summary: Dict[str, Any] = {
        "span_count": sum(t["spans"] for t in traces),
        "trace_count": len(traces),
        "traces": traces,
        "stages": stages,
    }
    if slow_ms is not None:
        summary["slow_ms"] = float(slow_ms)
        summary["slow_traces"] = [t for t in traces if t["duration_ms"] >= slow_ms]
    return summary
