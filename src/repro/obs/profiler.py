"""Codec hot-path profiler: per-format, per-op call counts and time.

The ROADMAP's top open item — vectorized/LUT codec kernels — needs a
measured baseline: for each number format, how many times do we call
``quantize`` / ``to_bits`` / ``from_bits`` and how many nanoseconds do
they cost?  This module collects exactly that, from two hook points:

* the **quantizer factory** (:func:`repro.formats.get_quantizer`) wraps
  every quantizer it hands out in a cached :class:`_ProfiledQuantizer`
  proxy — identity semantics are preserved (same ``(format, rounding)``
  → the *same* proxy object, attribute access delegates), so the policy
  layer's memoization contract is untouched and the proxy costs one flag
  check per call while profiling is off;
* :meth:`CodecProfiler.enable` additionally patches the ``quantize`` /
  ``to_bits`` / ``from_bits`` methods of the concrete format classes
  (posit, float, fixed-point), which is what catches the artifact
  save/load weight codec (``fmt.to_bits(...)`` / ``fmt.from_bits(...)``)
  without touching the artifact code.

The two hooks never double-count: the quantizer objects call the
module-level kernels directly, not the format methods.

``enable``/``disable`` are refcounted so nested scopes (a traced engine
inside a profiled benchmark) compose; stats survive disable until
:func:`reset_profile`.  All counters live in one process — cluster
workers each profile their own engine and report through their own
``/stats``.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Optional

import numpy as np

__all__ = [
    "CodecProfiler",
    "profiler",
    "enable_profiling",
    "disable_profiling",
    "reset_profile",
    "profile_snapshot",
    "format_table",
]

#: The codec entry points we account, in scoreboard column order.
OPS = ("quantize", "to_bits", "from_bits")


class CodecProfiler:
    """Aggregates ``(format spec, op) -> calls / elements / nanoseconds``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stats: Dict[tuple, Dict[str, int]] = {}
        self._refcount = 0
        self._patched: list = []  # (cls, op, original) for restore
        self._total_ns = 0

    # -- lifecycle --------------------------------------------------------

    @property
    def active(self) -> bool:
        return self._refcount > 0

    def enable(self) -> "CodecProfiler":
        """Turn accounting on (refcounted); patches format classes once."""

        with self._lock:
            self._refcount += 1
            if self._refcount == 1:
                self._patch_formats()
        return self

    def disable(self) -> None:
        """Undo one :meth:`enable`; restores format classes at zero."""

        with self._lock:
            if self._refcount == 0:
                return
            self._refcount -= 1
            if self._refcount == 0:
                for cls, op, original in self._patched:
                    setattr(cls, op, original)
                self._patched.clear()

    def __enter__(self) -> "CodecProfiler":
        return self.enable()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.disable()

    # -- accounting -------------------------------------------------------

    def record(self, spec: str, op: str, ns: int, elements: int) -> None:
        with self._lock:
            entry = self._stats.get((spec, op))
            if entry is None:
                entry = {"calls": 0, "elements": 0, "ns": 0}
                self._stats[(spec, op)] = entry
            entry["calls"] += 1
            entry["elements"] += elements
            entry["ns"] += ns
            self._total_ns += ns

    def total_ns(self) -> int:
        """Cumulative profiled nanoseconds — cheap, for per-batch deltas."""

        return self._total_ns

    def reset(self) -> None:
        with self._lock:
            self._stats.clear()
            self._total_ns = 0

    # -- reporting --------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """``{"active", "total_ns", "formats": {spec: {op: {...}}}}``."""

        with self._lock:
            formats: Dict[str, Dict[str, Dict[str, int]]] = {}
            for (spec, op), entry in self._stats.items():
                formats.setdefault(spec, {})[op] = dict(entry)
            return {
                "active": self._refcount > 0,
                "total_ns": self._total_ns,
                "formats": formats,
            }

    def format_table(self, snapshot: Optional[Dict[str, Any]] = None) -> str:
        """The baseline scoreboard: one row per (format, op), aligned text."""

        snap = snapshot if snapshot is not None else self.snapshot()
        rows = [("format", "op", "calls", "elements", "total_ms", "ns/elem")]
        for spec in sorted(snap["formats"]):
            ops = snap["formats"][spec]
            for op in OPS:
                entry = ops.get(op)
                if entry is None:
                    continue
                per_elem = entry["ns"] / entry["elements"] if entry["elements"] else 0.0
                rows.append((
                    spec,
                    op,
                    str(entry["calls"]),
                    str(entry["elements"]),
                    f"{entry['ns'] / 1e6:.3f}",
                    f"{per_elem:.1f}",
                ))
        widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
        lines = ["  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
                 for row in rows]
        lines.insert(1, "  ".join("-" * w for w in widths))
        return "\n".join(lines)

    # -- format-class patching -------------------------------------------

    def _patch_formats(self) -> None:
        # Caller holds the lock.  Imported here (not at module top) so the
        # obs package never participates in formats' import cycle.
        from repro.formats.fixedpoint import FixedPointFormat
        from repro.posit.config import PositConfig
        from repro.posit.floatformats import FloatFormat

        for cls in (PositConfig, FloatFormat, FixedPointFormat):
            for op in OPS:
                original = cls.__dict__.get(op)
                if original is None or getattr(original, "_repro_profiled", False):
                    continue
                wrapper = _profiled_method(self, op, original)
                setattr(cls, op, wrapper)
                self._patched.append((cls, op, original))


def _profiled_method(prof: CodecProfiler, op: str, original):
    def wrapper(self, values, *args, **kwargs):
        if not prof.active:
            return original(self, values, *args, **kwargs)
        t0 = time.perf_counter_ns()
        out = original(self, values, *args, **kwargs)
        ns = time.perf_counter_ns() - t0
        prof.record(self.spec(), op, ns, int(np.size(values)))
        return out

    wrapper._repro_profiled = True
    wrapper.__name__ = getattr(original, "__name__", op)
    wrapper.__doc__ = getattr(original, "__doc__", None)
    wrapper.__wrapped__ = original
    return wrapper


class _ProfiledQuantizer:
    """Transparent callable proxy accounting ``quantize`` calls.

    Cached by the factory exactly like the bare quantizer it wraps, so
    ``get_quantizer(f, r) is get_quantizer(f, r)`` still holds; every
    other attribute (``rng``, ``format``, ``rounding``, ...) delegates.
    """

    __slots__ = ("_inner", "_spec")

    def __init__(self, inner, spec: str) -> None:
        object.__setattr__(self, "_inner", inner)
        object.__setattr__(self, "_spec", spec)

    def __call__(self, values, *args, **kwargs):
        prof = profiler
        if not prof.active:
            return self._inner(values, *args, **kwargs)
        t0 = time.perf_counter_ns()
        out = self._inner(values, *args, **kwargs)
        ns = time.perf_counter_ns() - t0
        prof.record(self._spec, "quantize", ns, int(np.size(values)))
        return out

    def __getattr__(self, name):
        return getattr(object.__getattribute__(self, "_inner"), name)

    def __repr__(self) -> str:
        return f"profiled({self._inner!r})"


def wrap_quantizer(quantizer, fmt) -> _ProfiledQuantizer:
    """Factory hook: wrap a freshly built quantizer for accounting."""

    return _ProfiledQuantizer(quantizer, fmt.spec())


#: Process-wide profiler instance; the module-level helpers below and the
#: serving/CLI layers all talk to this one.
profiler = CodecProfiler()


def enable_profiling() -> CodecProfiler:
    return profiler.enable()


def disable_profiling() -> None:
    profiler.disable()


def reset_profile() -> None:
    profiler.reset()


def profile_snapshot() -> Dict[str, Any]:
    return profiler.snapshot()


def format_table(snapshot: Optional[Dict[str, Any]] = None) -> str:
    return profiler.format_table(snapshot)
