"""Append-only JSONL result store keyed by content-hashed run ids.

One sweep maps to one ``.jsonl`` file: each completed (or failed) run
appends exactly one JSON object line.  Append-only is the whole design —
the store never rewrites history, so

* a killed sweep loses at most the line being written (a truncated final
  line is detected and ignored on load);
* re-invoking a sweep *resumes*: runs whose ``run_id`` already has an
  ``"ok"`` record are skipped, failed runs are retried, and the retry's
  record simply supersedes the old one (latest record per run id wins);
* two sweeps over overlapping grids can share a store — run ids are
  content hashes of the resolved config, not positions in a grid.

Only the parent (runner) process writes; workers hand records back over
the pool, which keeps appends single-writer and atomic enough without
file locking.
"""

from __future__ import annotations

import io
import json
import os
import tempfile
from typing import Iterator, Optional, Union

__all__ = ["ResultStore"]

#: Record status values: a run either produced metrics or an error.
STATUS_OK = "ok"
STATUS_FAILED = "failed"


class ResultStore:
    """Append-only JSONL store of per-run sweep records.

    Each record is a JSON object with at least ``run_id`` and ``status``
    (``"ok"`` or ``"failed"``); ``"ok"`` records carry ``metrics``, failed
    ones carry ``error``.  The store keeps the *latest* record per run id
    in memory and appends every record it is given to disk.
    """

    def __init__(self, path: Union[str, os.PathLike]):
        self.path = os.fspath(path)
        self._records: dict[str, dict] = {}
        self._skipped_lines = 0
        self._loaded = False

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def load(self) -> dict[str, dict]:
        """Read the file (if any); returns ``{run_id: latest record}``.

        Unparseable lines — a truncated tail from a killed writer, or
        manual editing damage — are counted in :attr:`skipped_lines` and
        skipped, never fatal: losing one record only means recomputing one
        cell.
        """
        self._records = {}
        self._skipped_lines = 0
        if os.path.exists(self.path):
            with open(self.path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        self._skipped_lines += 1
                        continue
                    run_id = record.get("run_id")
                    if not isinstance(record, dict) or not run_id:
                        self._skipped_lines += 1
                        continue
                    self._records[run_id] = record
        self._loaded = True
        return dict(self._records)

    @property
    def skipped_lines(self) -> int:
        """Number of malformed lines ignored by the last :meth:`load`."""
        return self._skipped_lines

    def _ensure_loaded(self) -> None:
        if not self._loaded:
            self.load()

    def records(self) -> dict[str, dict]:
        """Latest record per run id (loads lazily)."""
        self._ensure_loaded()
        return dict(self._records)

    def completed_ids(self) -> set[str]:
        """Run ids with an ``"ok"`` record (these are never recomputed)."""
        self._ensure_loaded()
        return {run_id for run_id, record in self._records.items()
                if record.get("status") == STATUS_OK}

    def failed_ids(self) -> set[str]:
        """Run ids whose latest record is a failure (retried on re-run)."""
        self._ensure_loaded()
        return {run_id for run_id, record in self._records.items()
                if record.get("status") == STATUS_FAILED}

    def get(self, run_id: str) -> Optional[dict]:
        """Latest record for ``run_id``, or None."""
        self._ensure_loaded()
        return self._records.get(run_id)

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._records)

    def __iter__(self) -> Iterator[dict]:
        self._ensure_loaded()
        return iter(list(self._records.values()))

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def append(self, record: dict) -> None:
        """Append one record line and fold it into the in-memory view.

        The line is written with an explicit flush + fsync so a crash
        immediately after return cannot lose it.  A torn tail left by a
        killed writer (a final line with no newline) is healed first:
        without the terminator, the new record would glue onto the
        fragment and *both* would be lost as one malformed line.
        """
        if "run_id" not in record or "status" not in record:
            raise ValueError("store records require 'run_id' and 'status' fields")
        self._ensure_loaded()
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        needs_newline = False
        if os.path.exists(self.path):
            with open(self.path, "rb") as probe:
                probe.seek(0, os.SEEK_END)
                if probe.tell() > 0:
                    probe.seek(-1, os.SEEK_END)
                    needs_newline = probe.read(1) != b"\n"
        line = json.dumps(record, sort_keys=True, default=str)
        with open(self.path, "a", encoding="utf-8") as handle:
            if needs_newline:
                handle.write("\n")
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._records[record["run_id"]] = json.loads(line)

    def compact(self) -> int:
        """Rewrite the file keeping only the latest record per run id.

        Returns the number of superseded/malformed lines dropped.  Uses an
        atomic replace so a crash mid-compaction leaves the original file
        intact.
        """
        self._ensure_loaded()
        kept = list(self._records.values())
        dropped = 0
        if os.path.exists(self.path):
            with open(self.path, "r", encoding="utf-8") as handle:
                total_lines = sum(1 for line in handle if line.strip())
            dropped = total_lines - len(kept)
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".jsonl.tmp")
        try:
            with io.open(fd, "w", encoding="utf-8") as handle:
                for record in kept:
                    handle.write(json.dumps(record, sort_keys=True, default=str) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_path, self.path)
        except BaseException:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            raise
        self._skipped_lines = 0
        return dropped

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultStore({self.path!r}, {len(self)} records)"
