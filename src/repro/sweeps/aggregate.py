"""Aggregation and reporting over sweep result stores.

Turns the flat JSONL records of a :class:`~repro.sweeps.store.ResultStore`
into the tables the paper reports: per-run rows, group-by-axis summaries,
and two-axis pivots (e.g. format x model -> accuracy, mirroring Table III's
"FP32 baseline vs posit, per dataset" layout).  Everything here is plain
data in, plain data (or formatted text) out — the CLI and the examples are
thin shells over these functions.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from .spec import SweepConfig
from .store import STATUS_OK, ResultStore

__all__ = ["result_rows", "group_by", "pivot", "format_table", "format_pivot",
           "sweep_report", "pareto_front", "format_csv"]

#: Metric keys promoted to report columns, in display order.
DEFAULT_METRICS = ("final_val_accuracy", "best_val_accuracy", "final_train_loss")


def _flatten(record: dict) -> dict:
    """One store record -> one flat row (axis values + metrics + energy)."""
    row = {
        "run_id": record.get("run_id"),
        "name": record.get("name"),
        "status": record.get("status"),
    }
    row.update(record.get("overrides") or {})
    row.update(record.get("metrics") or {})
    energy = record.get("energy") or {}
    if energy:
        row["total_energy_uj"] = energy.get("total_energy_uj")
        row["energy_saving_vs_fp32"] = energy.get("energy_saving_vs_fp32")
    if record.get("formats"):
        row["formats"] = ",".join(record["formats"])
    row["duration_s"] = record.get("duration_s")
    return row


def result_rows(store: Union[ResultStore, str],
                sweep: Optional[SweepConfig] = None,
                include_failed: bool = False) -> list[dict]:
    """Flatten a store into report rows, in deterministic sweep order.

    With a ``sweep`` given, rows follow its expansion order and are
    restricted to its cells; without one, every record in the store is
    returned sorted by its recorded ``index`` then name.
    """
    if not isinstance(store, ResultStore):
        store = ResultStore(store)
    records = store.records()
    if sweep is not None:
        ordered = [records[run.run_id] for run in sweep.expand()
                   if run.run_id in records]
    else:
        ordered = sorted(records.values(),
                         key=lambda r: (r.get("index", 0), r.get("name", "")))
    return [_flatten(record) for record in ordered
            if include_failed or record.get("status") == STATUS_OK]


def _mean(values: Sequence[float]) -> Optional[float]:
    cleaned = [v for v in values if isinstance(v, (int, float))]
    return sum(cleaned) / len(cleaned) if cleaned else None


def group_by(rows: Sequence[dict], axis: str,
             metrics: Sequence[str] = DEFAULT_METRICS) -> list[dict]:
    """Aggregate rows sharing an axis value: mean of each metric + count.

    Group order follows first appearance in ``rows``, so a sweep's axis
    declaration order carries through to the report.
    """
    groups: dict = {}
    for row in rows:
        key = row.get(axis, "<unset>")
        groups.setdefault(key, []).append(row)
    table = []
    for key, members in groups.items():
        entry = {axis: key, "runs": len(members)}
        for metric in metrics:
            entry[metric] = _mean([member.get(metric) for member in members])
        table.append(entry)
    return table


def pivot(rows: Sequence[dict], row_axis: str, col_axis: str,
          metric: str = "final_val_accuracy") -> dict:
    """Two-axis pivot: ``{row_value: {col_value: mean(metric)}}`` plus order.

    This is the Table III shape — e.g. ``row_axis="policy"``,
    ``col_axis="model"``, cells holding validation accuracy.
    """
    row_order: list = []
    col_order: list = []
    cells: dict = {}
    for row in rows:
        r_val, c_val = row.get(row_axis, "<unset>"), row.get(col_axis, "<unset>")
        if r_val not in row_order:
            row_order.append(r_val)
        if c_val not in col_order:
            col_order.append(c_val)
        cells.setdefault(r_val, {}).setdefault(c_val, []).append(row.get(metric))
    table = {r: {c: _mean(vals) for c, vals in cols.items()}
             for r, cols in cells.items()}
    return {"rows": row_order, "cols": col_order, "metric": metric, "cells": table}


def _union_columns(rows: Sequence[dict]) -> list:
    """Column order shared by the table and CSV renderers: first appearance."""
    columns: list = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    return columns


def _format_cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}" if abs(value) >= 1000 or 0 < abs(value) < 0.01 else f"{value:.3f}"
    return str(value)


def format_table(rows: Sequence[dict], columns: Optional[Sequence[str]] = None) -> str:
    """Render dict rows as an aligned plain-text table."""
    if not rows:
        return "(no results)"
    if columns is None:
        columns = _union_columns(rows)
    rendered = [[_format_cell(row.get(col)) for col in columns] for row in rows]
    widths = [max(len(str(col)), *(len(line[i]) for line in rendered))
              for i, col in enumerate(columns)]
    header = "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    rule = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join("  ".join(line[i].ljust(widths[i]) for i in range(len(columns)))
                     for line in rendered)
    return f"{header}\n{rule}\n{body}"


def format_pivot(pivoted: dict) -> str:
    """Render a :func:`pivot` result as an aligned grid."""
    rows = [dict({"": r}, **{str(c): pivoted["cells"].get(r, {}).get(c)
                             for c in pivoted["cols"]})
            for r in pivoted["rows"]]
    return format_table(rows, columns=[""] + [str(c) for c in pivoted["cols"]])


def pareto_front(rows: Sequence[dict],
                 cost: str = "total_energy_uj",
                 benefit: str = "final_val_accuracy",
                 keep_dominated: bool = False) -> list[dict]:
    """Energy/accuracy Pareto front over flattened result rows.

    A row is *dominated* when another row is at least as good on both axes
    (``cost`` lower-or-equal, ``benefit`` higher-or-equal) and strictly
    better on at least one.  Returns copies of the surviving rows sorted by
    ascending cost, each annotated with ``"pareto": True``; with
    ``keep_dominated=True`` every comparable row is returned (dominated ones
    flagged ``"pareto": False``) — the shape the CLI table and CSV print.

    Rows missing either metric are excluded (e.g. a sweep run without
    ``collect_energy`` has no energy column — rerun it with the flag).
    """
    comparable = [row for row in rows
                  if isinstance(row.get(cost), (int, float))
                  and isinstance(row.get(benefit), (int, float))]
    annotated = []
    for row in comparable:
        dominated = any(
            other is not row
            and other[cost] <= row[cost] and other[benefit] >= row[benefit]
            and (other[cost] < row[cost] or other[benefit] > row[benefit])
            for other in comparable
        )
        entry = dict(row)
        entry["pareto"] = not dominated
        annotated.append(entry)
    annotated.sort(key=lambda entry: (entry[cost], -entry[benefit]))
    if keep_dominated:
        return annotated
    return [entry for entry in annotated if entry["pareto"]]


def format_csv(rows: Sequence[dict], columns: Optional[Sequence[str]] = None) -> str:
    """Render dict rows as CSV text (stdlib :mod:`csv`, RFC-4180 quoting)."""
    import csv
    import io

    if not rows:
        return ""
    if columns is None:
        columns = _union_columns(rows)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(columns), extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow({col: row.get(col, "") for col in columns})
    return buffer.getvalue()


def sweep_report(sweep: SweepConfig,
                 store: Union[ResultStore, str, None] = None,
                 group: Optional[str] = None,
                 metric: str = "final_val_accuracy",
                 include_failed: bool = False) -> dict:
    """Full report for a sweep: rows, optional grouping, optional pivot.

    ``group`` may be one axis label (grouped means) or ``"rowxcol"`` with
    two labels (a pivot) — e.g. ``"policy"`` or ``"policy x model"``.
    """
    if store is None:
        store = sweep.store or f"sweeps/{sweep.name}.jsonl"
    rows = result_rows(store, sweep=sweep, include_failed=include_failed)
    report = {"sweep": sweep.name, "rows": rows}
    if group:
        parts = [part.strip() for part in group.replace("*", "x").split("x")]
        parts = [part for part in parts if part]
        labels = [axis.label for axis in sweep.axes]
        for part in parts:
            if part not in labels and not any(part in row for row in rows):
                raise ValueError(
                    f"unknown group axis {part!r}; sweep axes are {labels}")
        if len(parts) == 1:
            report["grouped"] = group_by(rows, parts[0],
                                         metrics=(metric,) if metric else DEFAULT_METRICS)
        elif len(parts) == 2:
            report["pivot"] = pivot(rows, parts[0], parts[1], metric=metric)
        else:
            raise ValueError(f"group spec {group!r} must name one or two axes")
    return report
