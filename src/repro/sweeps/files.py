"""Sweep-file loading: committed experiment files -> plain dicts.

Sweeps live as files under version control (``examples/sweeps/``), so a
study is reviewable and re-runnable like code.  ``.json`` files parse with
the standard library; ``.yaml``/``.yml`` files parse with the dependency-
free :mod:`repro.sweeps.yamlite` subset parser (the container ships no
YAML library).  Anything else falls back to trying JSON first, then
YAML-lite, so extensionless files still load.
"""

from __future__ import annotations

import json
import os
from typing import Union

from . import yamlite

__all__ = ["SweepFileError", "load_sweep_file"]


class SweepFileError(ValueError):
    """Raised when a sweep file cannot be parsed into a mapping."""


def load_sweep_file(path: Union[str, os.PathLike]) -> dict:
    """Read and parse a sweep file into the plain-dict sweep form."""
    path = os.fspath(path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise SweepFileError(f"cannot read sweep file {path!r}: {exc}") from exc

    extension = os.path.splitext(path)[1].lower()
    if extension == ".json":
        data = _parse_json(text, path)
    elif extension in (".yaml", ".yml"):
        data = _parse_yamlite(text, path)
    else:
        try:
            data = _parse_json(text, path)
        except SweepFileError:
            data = _parse_yamlite(text, path)

    if not isinstance(data, dict):
        raise SweepFileError(
            f"sweep file {path!r} must contain a mapping at the top level, "
            f"got {type(data).__name__}"
        )
    return data


def _parse_json(text: str, path: str) -> dict:
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise SweepFileError(f"invalid JSON in sweep file {path!r}: {exc}") from exc


def _parse_yamlite(text: str, path: str) -> dict:
    try:
        return yamlite.loads(text)
    except yamlite.YamliteError as exc:
        raise SweepFileError(f"invalid YAML-lite in sweep file {path!r}: {exc}") from exc
