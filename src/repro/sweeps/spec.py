"""Declarative sweep specifications: a base config plus axes -> named runs.

The paper's headline results are all *sweeps*: the same training pipeline
executed across a grid of number formats, rounding modes, and models
(Tables III-V, Figs. 2-6).  A :class:`SweepConfig` captures one such study
as plain data — a base :class:`~repro.api.ExperimentConfig` plus a list of
:class:`SweepAxis` entries — and expands it deterministically into
:class:`SweepRun` cells.

Axes come in two combination modes:

* ``grid`` axes form a cartesian product (every combination is a run);
* ``zip`` axes advance together, like :func:`zip` — all zipped axes must
  have the same length, and together they contribute one dimension to the
  product.  This expresses coupled settings (e.g. each policy with its own
  warm-up length) without a quadratic blow-up.

An axis targets a **dotted config field** — any :class:`ExperimentConfig`
field name, with ``.`` descending into dict-valued fields
(``"model_kwargs.base_width"``, ``"data_kwargs.noise_std"``).  Values are
whatever the field accepts; the ``policy`` field in particular takes format
spec strings (``"posit(8,1)"``, ``"fixed(16,13)"``), preset names, or
policy dicts, all resolved later by :func:`repro.api.build_policy`.

Every expanded run gets a **content-keyed run id**: a short SHA-256 digest
of the canonical JSON form of its resolved config (minus cosmetic fields).
The id is a pure function of *what the run computes*, so the result store
can recognise completed cells across invocations, renamed sweep files, and
reordered axes — re-running a sweep never recomputes a finished cell.
"""

from __future__ import annotations

import copy
import hashlib
import itertools
import json
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Optional, Sequence, Union

from ..api import ExperimentConfig

__all__ = ["SweepAxis", "SweepRun", "SweepConfig", "run_key", "apply_override"]

#: Config fields that do not change what a run computes; excluded from the
#: content hash so relabelled or re-described sweeps still resume.
_COSMETIC_FIELDS = ("name", "verbose")


def run_key(config: Union[ExperimentConfig, Mapping]) -> str:
    """Content hash identifying one run's work (stable across relabelling).

    The key is the first 16 hex digits of the SHA-256 of the config's
    canonical JSON form with cosmetic fields (``name``, ``verbose``)
    removed.  Two configs with the same key train the same model on the
    same data with the same policy.
    """
    data = config.to_dict() if isinstance(config, ExperimentConfig) else dict(config)
    for cosmetic in _COSMETIC_FIELDS:
        data.pop(cosmetic, None)
    canonical = json.dumps(data, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def apply_override(data: dict, dotted_field: str, value: Any) -> None:
    """Set ``dotted_field`` to ``value`` inside a config dict, in place.

    ``"lr"`` assigns a top-level field; ``"model_kwargs.base_width"``
    descends into the dict-valued field, creating intermediate dicts as
    needed.  Only the *first* segment must be an existing config field —
    the nested segments address free-form kwargs.
    """
    head, _, rest = dotted_field.partition(".")
    if head not in data:
        known = ", ".join(sorted(data))
        raise KeyError(
            f"axis field {dotted_field!r} does not name an ExperimentConfig "
            f"field (known fields: {known})"
        )
    if not rest:
        data[head] = value
        return
    node = data[head]
    if not isinstance(node, dict):
        raise TypeError(
            f"axis field {dotted_field!r} descends into {head!r}, "
            f"which is {type(node).__name__}, not a dict"
        )
    parts = rest.split(".")
    for part in parts[:-1]:
        node = node.setdefault(part, {})
        if not isinstance(node, dict):
            raise TypeError(f"axis field {dotted_field!r} crosses non-dict value at {part!r}")
    node[parts[-1]] = value


def _short_value(value: Any) -> str:
    """Compact, filename-safe rendering of an axis value for run names."""
    if isinstance(value, str):
        text = value
    elif isinstance(value, bool) or value is None:
        text = str(value).lower()
    elif isinstance(value, (int, float)):
        text = repr(value)
    elif isinstance(value, Mapping):
        # Dict-valued axis points (e.g. whole policy dicts) get a stable
        # short digest unless they carry a "name" of their own.
        name = value.get("name")
        if name:
            text = str(name)
        else:
            canonical = json.dumps(value, sort_keys=True, default=str)
            text = "dict" + hashlib.sha256(canonical.encode()).hexdigest()[:6]
    else:
        text = str(value)
    return text.replace(" ", "").replace("/", "_")


@dataclass(frozen=True)
class SweepAxis:
    """One swept dimension: a dotted config field and its values.

    Parameters
    ----------
    field:
        Dotted :class:`~repro.api.ExperimentConfig` field name
        (``"policy"``, ``"lr"``, ``"model_kwargs.base_width"``).
    values:
        The values the field takes, in sweep order.
    label:
        Short name used in run names and report columns; defaults to the
        last dotted segment of ``field``.
    """

    field: str
    values: tuple
    label: str = ""

    def __post_init__(self):
        if not self.values:
            raise ValueError(f"axis {self.field!r} has no values")
        if not self.label:
            object.__setattr__(self, "label", self.field.rsplit(".", 1)[-1])

    @classmethod
    def of(cls, field: str, values: Iterable, label: str = "") -> "SweepAxis":
        """Build an axis, coercing ``values`` to a tuple."""
        return cls(field=field, values=tuple(values), label=label)


@dataclass(frozen=True)
class SweepRun:
    """One expanded sweep cell: a concrete config plus its provenance."""

    run_id: str
    name: str
    index: int
    overrides: dict
    config: ExperimentConfig

    def to_dict(self) -> dict:
        """JSON-able record form (the shape stored per result row)."""
        return {
            "run_id": self.run_id,
            "name": self.name,
            "index": self.index,
            "overrides": dict(self.overrides),
            "config": self.config.to_dict(),
        }


class SweepConfig:
    """A declarative sweep: base experiment config plus grid/zip axes.

    Parameters
    ----------
    name:
        Sweep name; becomes the run-name prefix and the default store stem.
    base:
        The :class:`~repro.api.ExperimentConfig` every cell starts from
        (also accepts its dict form).
    grid:
        Axes combined as a cartesian product, in declaration order (the
        last axis varies fastest, like nested loops).
    zipped:
        Axes advanced together; all must share one length.  The zipped
        block contributes a single trailing dimension to the product.
    collect_energy:
        Whether the runner attaches the accelerator energy estimate
        (:func:`repro.hardware.training_step_report`) to each result row.
    store:
        Default result-store path (used by the CLI when ``--store`` is not
        given); ``None`` derives ``sweeps/<name>.jsonl``.
    workers:
        Default worker count for the CLI.
    """

    def __init__(self, name: str, base: Union[ExperimentConfig, Mapping],
                 grid: Sequence[SweepAxis] = (), zipped: Sequence[SweepAxis] = (),
                 collect_energy: bool = False, store: Optional[str] = None,
                 workers: int = 1):
        if isinstance(base, Mapping):
            base = ExperimentConfig.from_dict(base)
        self.name = name
        self.base = base
        self.grid = tuple(grid)
        self.zipped = tuple(zipped)
        self.collect_energy = collect_energy
        self.store = store
        self.workers = workers
        if self.zipped:
            lengths = {len(axis.values) for axis in self.zipped}
            if len(lengths) != 1:
                detail = ", ".join(f"{a.label}={len(a.values)}" for a in self.zipped)
                raise ValueError(f"zip axes must have equal lengths; got {detail}")
        if not self.grid and not self.zipped:
            raise ValueError(f"sweep {name!r} declares no axes")
        labels = [a.label for a in self.grid + self.zipped]
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate axis labels in sweep {name!r}: {labels}")

    # ------------------------------------------------------------------ #
    # Expansion
    # ------------------------------------------------------------------ #
    @property
    def axes(self) -> tuple:
        """All axes, grid first then zipped (report/label order)."""
        return self.grid + self.zipped

    def __len__(self) -> int:
        total = 1
        for axis in self.grid:
            total *= len(axis.values)
        if self.zipped:
            total *= len(self.zipped[0].values)
        return total

    def expand(self) -> list[SweepRun]:
        """Expand into the full, deterministically ordered run list.

        Order is the nested-loop order of the grid axes (last declared
        varies fastest) with the zipped block as the innermost dimension.
        Expansion is a pure function of the spec: the same file yields the
        same run ids in the same order on every invocation.
        """
        grid_choices = [[(axis, value) for value in axis.values] for axis in self.grid]
        if self.zipped:
            zip_block = [
                [(axis, axis.values[i]) for axis in self.zipped]
                for i in range(len(self.zipped[0].values))
            ]
        else:
            zip_block = [[]]

        runs: list[SweepRun] = []
        for combo in itertools.product(*grid_choices, zip_block):
            assignments = []
            for entry in combo:
                if isinstance(entry, list):  # the zipped block
                    assignments.extend(entry)
                else:
                    assignments.append(entry)
            overrides = {axis.label: value for axis, value in assignments}
            # Deep copy: to_dict() only shallow-copies dict-valued fields, and
            # nested dotted overrides must not alias state across cells (or
            # mutate the caller's base config).
            data = copy.deepcopy(self.base.to_dict())
            for axis, value in assignments:
                apply_override(data, axis.field, value)
            cell = ",".join(f"{axis.label}={_short_value(value)}"
                            for axis, value in assignments)
            data["name"] = f"{self.name}/{cell}" if cell else self.name
            config = ExperimentConfig.from_dict(data)
            runs.append(SweepRun(run_id=run_key(config), name=data["name"],
                                 index=len(runs), overrides=overrides, config=config))

        ids = [run.run_id for run in runs]
        if len(set(ids)) != len(ids):
            dupes = sorted({i for i in ids if ids.count(i) > 1})
            raise ValueError(
                f"sweep {self.name!r} expands to duplicate run configs "
                f"(ids {dupes}); two cells would compute identical work"
            )
        return runs

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """JSON-able form; inverse of :meth:`from_dict`."""
        data = {
            "name": self.name,
            "base": self.base.to_dict(),
            "grid": {axis.field: list(axis.values) for axis in self.grid},
            "zip": {axis.field: list(axis.values) for axis in self.zipped},
            "collect_energy": self.collect_energy,
            "workers": self.workers,
        }
        if self.store:
            data["store"] = self.store
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "SweepConfig":
        """Build a sweep from its plain-dict (file) form.

        Expected shape::

            {"name": ..., "base": {...ExperimentConfig fields...},
             "grid": {"policy": ["posit(8,1)", "fixed(16,13)"], ...},
             "zip": {"lr": [...], "warmup_epochs": [...]},
             "collect_energy": false, "workers": 2, "store": "..."}

        ``grid``/``zip`` map dotted field names to value lists (declaration
        order is sweep order).  Unknown top-level keys are rejected so
        typos fail loudly instead of silently not sweeping.
        """
        options = dict(data)
        name = options.pop("name", None)
        base = options.pop("base", None)
        if not name or base is None:
            raise ValueError("sweep dict requires 'name' and 'base' entries")
        grid = [SweepAxis.of(fld, values)
                for fld, values in dict(options.pop("grid", {})).items()]
        zipped = [SweepAxis.of(fld, values)
                  for fld, values in dict(options.pop("zip", {})).items()]
        known = {"collect_energy", "workers", "store"}
        unknown = set(options) - known
        if unknown:
            raise ValueError(
                f"unknown sweep keys {sorted(unknown)}; expected "
                f"'name', 'base', 'grid', 'zip', {sorted(known)}"
            )
        return cls(name=name, base=base, grid=grid, zipped=zipped,
                   collect_energy=bool(options.get("collect_energy", False)),
                   store=options.get("store"),
                   workers=int(options.get("workers", 1)))

    @classmethod
    def from_file(cls, path) -> "SweepConfig":
        """Load a sweep spec from a JSON or YAML-lite file (by extension)."""
        from .files import load_sweep_file

        return cls.from_dict(load_sweep_file(path))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        dims = "x".join(str(len(a.values)) for a in self.grid)
        if self.zipped:
            dims = f"{dims}x{len(self.zipped[0].values)}(zip)" if dims else f"{len(self.zipped[0].values)}(zip)"
        return f"SweepConfig({self.name!r}, {dims or '1'} = {len(self)} runs)"
