"""Declarative sweep engine: spec -> sharded parallel runs -> JSONL results.

The paper's experimental surface (Tables III-V, Figs. 2-6) is a family of
*sweeps* over number formats, rounding modes, and models.  This package is
the scaling substrate that runs them:

* :class:`SweepConfig` / :class:`SweepAxis` — a base
  :class:`~repro.api.ExperimentConfig` plus ``grid``/``zip`` axes over
  dotted config fields, expanded deterministically into content-addressed
  :class:`SweepRun` cells (:mod:`repro.sweeps.spec`);
* :func:`SweepConfig.from_file <repro.sweeps.spec.SweepConfig.from_file>`
  — committed JSON / YAML-lite sweep files (:mod:`repro.sweeps.files`,
  :mod:`repro.sweeps.yamlite`);
* :func:`run_sweep` — multiprocessing sharded execution with per-run
  seeding, failure isolation, and resume (:mod:`repro.sweeps.runner`);
* :class:`ResultStore` — the append-only JSONL store keyed by config
  content hashes (:mod:`repro.sweeps.store`);
* :func:`sweep_report` / :func:`group_by` / :func:`pivot` — the
  aggregation layer feeding the CLI, examples, and benchmarks
  (:mod:`repro.sweeps.aggregate`).

Quickstart::

    from repro.sweeps import SweepConfig, run_sweep, sweep_report

    sweep = SweepConfig.from_file("examples/sweeps/precision_grid.json")
    run_sweep(sweep, workers=2, progress=print)
    print(sweep_report(sweep, group="policy x model"))

or, from the shell: ``python -m repro sweep run examples/sweeps/precision_grid.json``.
"""

from .aggregate import (
    format_csv,
    format_pivot,
    format_table,
    group_by,
    pareto_front,
    pivot,
    result_rows,
    sweep_report,
)
from .files import SweepFileError, load_sweep_file
from .runner import RunOutcome, SweepSummary, execute_run, run_sweep, sweep_status
from .spec import SweepAxis, SweepConfig, SweepRun, run_key
from .store import ResultStore

__all__ = [
    "SweepAxis",
    "SweepConfig",
    "SweepRun",
    "run_key",
    "ResultStore",
    "run_sweep",
    "sweep_status",
    "execute_run",
    "RunOutcome",
    "SweepSummary",
    "result_rows",
    "group_by",
    "pivot",
    "format_table",
    "format_pivot",
    "format_csv",
    "pareto_front",
    "sweep_report",
    "load_sweep_file",
    "SweepFileError",
]
