"""Parallel sharded sweep execution over :func:`repro.api.build_experiment`.

The runner turns an expanded :class:`~repro.sweeps.spec.SweepConfig` into
completed result records:

* **Sharding** — pending cells are distributed over a ``multiprocessing``
  pool; each worker builds and trains one experiment per task.  Configs and
  formats are plain picklable data (PR 1), so the pool start method does
  not matter.
* **Resume** — cells whose content-hashed run id already has an ``"ok"``
  record in the :class:`~repro.sweeps.store.ResultStore` are skipped before
  any process is spawned; a re-invoked sweep executes only missing (and
  previously failed) cells.
* **Failure isolation** — the worker traps any exception and returns a
  ``"failed"`` record with the traceback instead of raising, so one
  diverging or crashing cell cannot poison the pool or lose the other
  shards' results.  Failed cells are retried on the next invocation.
* **Per-run seeding** — each worker reseeds the legacy global NumPy RNG
  from the run id before training, so anything that still draws from
  ``np.random`` is decorrelated across cells and reproducible per cell.
  (The experiment's own RNGs are seeded from the config, independent of
  worker assignment or completion order.)
* **Worker-level dataset caching** — ``build_experiment`` memoizes dataset
  construction per process, keyed by the dataset-determining config fields
  (:func:`repro.api.dataset_cache_info`).  A grid that sweeps policies or
  learning rates over one dataset therefore generates the data once per
  worker, not once per cell; datasets are deterministic in the key and
  treated as read-only, so cells sharing a worker cannot observe each
  other through the cache.

Only the parent process appends to the store, in completion order; the
*content* of the store is order-independent because records are keyed by
run id.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Optional, Union

import numpy as np

from .spec import SweepConfig, SweepRun
from .store import STATUS_FAILED, STATUS_OK, ResultStore

__all__ = ["RunOutcome", "SweepSummary", "execute_run", "run_sweep", "sweep_status"]


@dataclass(frozen=True)
class RunOutcome:
    """What happened to one cell in one invocation."""

    run_id: str
    name: str
    status: str  # "ok" | "failed" | "skipped"
    duration_s: float = 0.0
    error: str = ""


@dataclass
class SweepSummary:
    """Aggregate result of one :func:`run_sweep` invocation."""

    sweep: str
    store_path: str
    total: int
    executed: int = 0
    skipped: int = 0
    failed: int = 0
    outcomes: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every cell in the sweep has an ``"ok"`` record."""
        return self.failed == 0 and self.skipped + self.executed == self.total

    def as_dict(self) -> dict:
        return {
            "sweep": self.sweep,
            "store": self.store_path,
            "total": self.total,
            "executed": self.executed,
            "skipped": self.skipped,
            "failed": self.failed,
        }


def _run_seed(run_id: str) -> int:
    """Deterministic 32-bit seed derived from a run's content hash."""
    return int(hashlib.sha256(run_id.encode()).hexdigest()[:8], 16)


def execute_run(payload: dict) -> dict:
    """Execute one sweep cell; always returns a record, never raises.

    ``payload`` is the :meth:`SweepRun.to_dict` form plus a
    ``"collect_energy"`` flag.  Runs in a worker process (or inline for
    ``workers <= 1``); imports stay inside the function so a spawned
    interpreter pays them once per worker, not per module import graph.
    """
    start = time.perf_counter()
    base = {
        "run_id": payload["run_id"],
        "name": payload["name"],
        "index": payload["index"],
        "overrides": payload["overrides"],
        "config": payload["config"],
    }
    try:
        from ..api import build_experiment

        np.random.seed(_run_seed(payload["run_id"]))
        experiment = build_experiment(payload["config"])
        history = experiment.run()
        record = dict(base)
        record["status"] = STATUS_OK
        record["formats"] = experiment.format_specs()
        record["metrics"] = {
            "final_val_accuracy": history.final_val_accuracy,
            "best_val_accuracy": history.best_val_accuracy,
            "final_train_loss": history.final_train_loss,
            "epochs": len(history),
        }
        if payload.get("collect_energy"):
            record["energy"] = _energy_metrics(experiment)
        record["duration_s"] = round(time.perf_counter() - start, 3)
        return record
    except Exception as exc:  # noqa: BLE001 - isolation is the contract
        record = dict(base)
        record["status"] = STATUS_FAILED
        record["error"] = f"{type(exc).__name__}: {exc}"
        record["traceback"] = traceback.format_exc(limit=20)
        record["duration_s"] = round(time.perf_counter() - start, 3)
        return record


def _energy_metrics(experiment) -> dict:
    """Accelerator energy estimate for the run's model + policy (vs FP32)."""
    from ..hardware import training_step_report
    from ..hardware.synthesis import calibrate_to_reference

    calibration = calibrate_to_reference()
    quantized = training_step_report(
        experiment.model, experiment.policy,
        batch_size=experiment.config.batch_size, calibration=calibration)
    fp32 = training_step_report(
        experiment.model, None,
        batch_size=experiment.config.batch_size, calibration=calibration)
    total_ratio = (fp32["total_energy_uj"] / quantized["total_energy_uj"]
                   if quantized["total_energy_uj"] else 1.0)
    return {
        "total_energy_uj": quantized["total_energy_uj"],
        "compute_energy_uj": quantized["compute_energy_uj"],
        "memory_energy_uj": quantized["memory_energy_uj"],
        "fp32_total_energy_uj": fp32["total_energy_uj"],
        "energy_saving_vs_fp32": total_ratio,
    }


def run_sweep(sweep: SweepConfig,
              store: Union[ResultStore, str, None] = None,
              workers: Optional[int] = None,
              progress: Optional[Callable[[str], None]] = None,
              mp_context: Optional[str] = None) -> SweepSummary:
    """Run all missing cells of ``sweep``, sharded over worker processes.

    Parameters
    ----------
    store:
        A :class:`ResultStore` or path; defaults to the sweep's declared
        store or ``sweeps/<name>.jsonl``.
    workers:
        Process count; ``None`` uses the sweep's default, ``<= 1`` runs
        inline in this process (no pool — simplest to debug).
    progress:
        Optional callable receiving one human-readable line per event.
    mp_context:
        Multiprocessing start method (``"fork"``/``"spawn"``); ``None``
        uses the platform default.
    """
    say = progress or (lambda message: None)
    if store is None:
        store = sweep.store or f"sweeps/{sweep.name}.jsonl"
    if not isinstance(store, ResultStore):
        store = ResultStore(store)
    workers = sweep.workers if workers is None else workers

    runs = sweep.expand()
    completed = store.completed_ids()
    pending = [run for run in runs if run.run_id not in completed]
    summary = SweepSummary(sweep=sweep.name, store_path=store.path, total=len(runs))

    for run in runs:
        if run.run_id in completed:
            summary.skipped += 1
            summary.outcomes.append(RunOutcome(run.run_id, run.name, "skipped"))
    say(f"sweep {sweep.name}: {len(runs)} cells, {summary.skipped} already done, "
        f"{len(pending)} to run ({max(workers, 1)} worker(s)) -> {store.path}")

    if not pending:
        return summary

    payloads = [dict(run.to_dict(), collect_energy=sweep.collect_energy)
                for run in pending]

    def _absorb(record: dict) -> None:
        store.append(record)
        outcome = RunOutcome(record["run_id"], record["name"], record["status"],
                             duration_s=record.get("duration_s", 0.0),
                             error=record.get("error", ""))
        summary.outcomes.append(outcome)
        if record["status"] == STATUS_OK:
            summary.executed += 1
            accuracy = (record.get("metrics") or {}).get("final_val_accuracy")
            shown = f"{accuracy:.3f}" if isinstance(accuracy, float) else "n/a"
            say(f"  ok     {record['name']}  val_acc={shown}  "
                f"({record.get('duration_s', 0):.1f}s)")
        else:
            summary.failed += 1
            say(f"  FAILED {record['name']}: {record.get('error', 'unknown error')}")

    if workers <= 1:
        for payload in payloads:
            _absorb(execute_run(payload))
        return summary

    context = multiprocessing.get_context(mp_context)
    pool_size = min(workers, len(payloads))
    with context.Pool(processes=pool_size) as pool:
        for record in pool.imap_unordered(execute_run, payloads):
            _absorb(record)
    return summary


def sweep_status(sweep: SweepConfig,
                 store: Union[ResultStore, str, None] = None) -> dict:
    """Summarize store coverage of ``sweep`` without executing anything."""
    if store is None:
        store = sweep.store or f"sweeps/{sweep.name}.jsonl"
    if not isinstance(store, ResultStore):
        store = ResultStore(store)
    runs = sweep.expand()
    completed = store.completed_ids()
    failed = store.failed_ids()
    rows = []
    for run in runs:
        if run.run_id in completed:
            state = STATUS_OK
        elif run.run_id in failed:
            state = STATUS_FAILED
        else:
            state = "pending"
        rows.append({"run_id": run.run_id, "name": run.name, "status": state})
    return {
        "sweep": sweep.name,
        "store": store.path,
        "total": len(runs),
        "ok": sum(1 for row in rows if row["status"] == STATUS_OK),
        "failed": sum(1 for row in rows if row["status"] == STATUS_FAILED),
        "pending": sum(1 for row in rows if row["status"] == "pending"),
        "skipped_lines": store.skipped_lines,
        "runs": rows,
    }
