"""A dependency-free loader for the YAML subset sweep files actually use.

The container image deliberately ships no YAML library, and a full YAML
implementation is wildly out of scope for experiment files that are 90 %
mappings of scalars.  This module parses the pragmatic subset:

* nested **mappings** via 2+-space indentation (``key: value`` / ``key:``);
* **block lists** (``- item``) and **flow lists** (``[a, b, c]``);
* scalars: integers, floats (incl. ``1e-3``), ``true``/``false``,
  ``null``/``~``, and strings (bare, ``'single'``- or ``"double"``-quoted —
  quoting is how you keep ``posit(8,1)`` or ``"8"`` a string);
* full-line and trailing ``#`` comments, blank lines.

Anchors, aliases, multi-line strings, flow mappings, and tabs are rejected
with a :class:`YamliteError` naming the offending line, so files that need
real YAML fail loudly instead of being half-parsed.
"""

from __future__ import annotations

import re
from typing import Any

__all__ = ["YamliteError", "loads"]


class YamliteError(ValueError):
    """Raised for input outside the supported YAML subset."""

    def __init__(self, message: str, line_no: int, line: str = ""):
        detail = f"line {line_no}: {message}"
        if line:
            detail += f"  [{line.strip()!r}]"
        super().__init__(detail)
        self.line_no = line_no


_INT = re.compile(r"^[+-]?\d+$")
_FLOAT = re.compile(r"^[+-]?(\d+\.\d*|\.\d+|\d+)([eE][+-]?\d+)?$")
_NAMED = {"true": True, "false": False, "null": None, "~": None}


def _parse_scalar(token: str, line_no: int) -> Any:
    token = token.strip()
    if token.startswith(("'", '"')):
        if len(token) < 2 or token[-1] != token[0]:
            raise YamliteError("unterminated quoted string", line_no, token)
        return token[1:-1]
    if token.startswith("[") :
        if not token.endswith("]"):
            raise YamliteError("unterminated flow list", line_no, token)
        body = token[1:-1].strip()
        if not body:
            return []
        return [_parse_scalar(part, line_no) for part in _split_flow(body, line_no)]
    if token.startswith(("&", "*", "{", "|", ">")):
        raise YamliteError(
            f"unsupported YAML feature {token[0]!r} (yamlite handles plain "
            f"mappings, lists, and scalars only)", line_no, token)
    lowered = token.lower()
    if lowered in _NAMED:
        return _NAMED[lowered]
    if _INT.match(token):
        return int(token)
    if _FLOAT.match(token):
        return float(token)
    return token


def _split_flow(body: str, line_no: int) -> list[str]:
    """Split a flow-list body on top-level commas (respecting quotes/parens)."""
    parts, depth, quote, current = [], 0, "", []
    for char in body:
        if quote:
            current.append(char)
            if char == quote:
                quote = ""
            continue
        if char in "'\"":
            quote = char
            current.append(char)
        elif char in "([":
            depth += 1
            current.append(char)
        elif char in ")]":
            depth -= 1
            current.append(char)
        elif char == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    if quote:
        raise YamliteError("unterminated quoted string in flow list", line_no, body)
    parts.append("".join(current))
    return [part for part in (p.strip() for p in parts) if part]


def _strip_comment(line: str) -> str:
    """Drop a trailing ``#`` comment that is not inside quotes."""
    quote = ""
    for index, char in enumerate(line):
        if quote:
            if char == quote:
                quote = ""
        elif char in "'\"":
            quote = char
        elif char == "#" and (index == 0 or line[index - 1] in " \t"):
            return line[:index]
    return line


_KEY = re.compile(r"^([A-Za-z0-9_.\-]+|'[^']*'|\"[^\"]*\")\s*:(\s|$)")


def loads(text: str) -> Any:
    """Parse YAML-lite ``text`` into plain Python data."""
    lines = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        if "\t" in raw[:len(raw) - len(raw.lstrip())]:
            raise YamliteError("tabs are not allowed in indentation", line_no, raw)
        stripped = _strip_comment(raw).rstrip()
        if not stripped.strip():
            continue
        indent = len(stripped) - len(stripped.lstrip(" "))
        lines.append((line_no, indent, stripped.strip()))
    if not lines:
        return {}
    value, next_index = _parse_block(lines, 0, lines[0][1])
    if next_index != len(lines):
        line_no, _, content = lines[next_index]
        raise YamliteError("unexpected de-indented content", line_no, content)
    return value


def _parse_block(lines: list, index: int, indent: int) -> tuple[Any, int]:
    """Parse one block (mapping or list) at the given indentation level."""
    line_no, line_indent, content = lines[index]
    if line_indent != indent:
        raise YamliteError(f"unexpected indent {line_indent} (expected {indent})",
                           line_no, content)
    if content.startswith("- "):
        return _parse_list(lines, index, indent)
    return _parse_mapping(lines, index, indent)


def _parse_list(lines: list, index: int, indent: int) -> tuple[list, int]:
    items: list[Any] = []
    while index < len(lines):
        line_no, line_indent, content = lines[index]
        if line_indent < indent:
            break
        if line_indent > indent:
            raise YamliteError("unexpected indent inside list", line_no, content)
        if not content.startswith("- ") and content != "-":
            break
        body = content[1:].strip()
        if not body:
            # A bare "-" introduces a nested block on the following lines.
            if index + 1 >= len(lines) or lines[index + 1][1] <= indent:
                raise YamliteError("empty list item", line_no, content)
            value, index = _parse_block(lines, index + 1, lines[index + 1][1])
            items.append(value)
        elif _KEY.match(body):
            raise YamliteError(
                "mappings inside list items are not supported by yamlite; "
                "use a nested mapping under a named key instead", line_no, content)
        else:
            items.append(_parse_scalar(body, line_no))
            index += 1
    return items, index


def _parse_mapping(lines: list, index: int, indent: int) -> tuple[dict, int]:
    mapping: dict[str, Any] = {}
    while index < len(lines):
        line_no, line_indent, content = lines[index]
        if line_indent < indent:
            break
        if line_indent > indent:
            raise YamliteError("unexpected indent (missing parent key?)", line_no, content)
        match = _KEY.match(content)
        if match is None:
            if content.startswith("- "):
                break  # parent list continues
            raise YamliteError("expected 'key: value'", line_no, content)
        key_token = match.group(1)
        key = key_token[1:-1] if key_token[0] in "'\"" else key_token
        if key in mapping:
            raise YamliteError(f"duplicate key {key!r}", line_no, content)
        rest = content[match.end():].strip() if match.group(2) else content[len(key_token) + 1:].strip()
        if rest:
            mapping[key] = _parse_scalar(rest, line_no)
            index += 1
        else:
            # Value is the nested block on the following, deeper lines —
            # or an empty mapping if the next line is not deeper.
            if index + 1 < len(lines) and lines[index + 1][1] > indent:
                value, index = _parse_block(lines, index + 1, lines[index + 1][1])
                mapping[key] = value
            else:
                mapping[key] = {}
                index += 1
    return mapping, index
