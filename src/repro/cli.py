"""The ``repro`` command-line interface.

Entry points: ``python -m repro`` (always available with ``PYTHONPATH=src``)
and the ``repro`` console script installed by ``setup.py``.

Commands::

    repro sweep run    FILE [--workers N] [--store PATH] [--serial]
    repro sweep status FILE [--store PATH]
    repro sweep report FILE [--store PATH] [--group-by AXES] [--metric M]
                            [--include-failed] [--json]
    repro formats list [--family posit|float|fixed]

Sweep files are committed JSON / YAML-lite documents (see
``examples/sweeps/``); results accumulate in append-only JSONL stores, so
``sweep run`` is restartable and incremental by construction.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Posit DNN-training reproduction: sweep runner and format tools.",
    )
    subcommands = parser.add_subparsers(dest="command", required=True)

    sweep = subcommands.add_parser("sweep", help="declarative experiment sweeps")
    sweep_sub = sweep.add_subparsers(dest="sweep_command", required=True)

    def add_sweep_common(sub):
        sub.add_argument("file", help="sweep spec file (.json / .yaml)")
        sub.add_argument("--store", default=None,
                         help="JSONL result store (default: the spec's 'store' "
                              "or sweeps/<name>.jsonl)")

    run = sweep_sub.add_parser("run", help="execute missing sweep cells")
    add_sweep_common(run)
    run.add_argument("--workers", type=int, default=None,
                     help="worker processes (default: the spec's 'workers')")
    run.add_argument("--serial", action="store_true",
                     help="run inline in this process (equivalent to --workers 1)")
    run.add_argument("--mp-context", default=None, choices=("fork", "spawn", "forkserver"),
                     help="multiprocessing start method (default: platform)")
    run.add_argument("--quiet", action="store_true", help="suppress progress lines")

    status = sweep_sub.add_parser("status", help="show store coverage of a sweep")
    add_sweep_common(status)
    status.add_argument("--json", action="store_true", help="machine-readable output")

    report = sweep_sub.add_parser("report", help="aggregate results into tables")
    add_sweep_common(report)
    report.add_argument("--group-by", default=None, metavar="AXES",
                        help="one axis label ('policy') for grouped means, or two "
                             "('policy x model') for a pivot table")
    report.add_argument("--metric", default="final_val_accuracy",
                        help="metric for grouped/pivot cells (default: final_val_accuracy)")
    report.add_argument("--include-failed", action="store_true",
                        help="include failed runs in the per-run rows")
    report.add_argument("--json", action="store_true", help="machine-readable output")

    formats = subcommands.add_parser("formats", help="number-format registry tools")
    formats_sub = formats.add_subparsers(dest="formats_command", required=True)
    formats_list = formats_sub.add_parser("list", help="list registered formats")
    formats_list.add_argument("--family", default=None,
                              choices=("posit", "float", "fixed"),
                              help="restrict to one format family")
    formats_list.add_argument("--json", action="store_true",
                              help="machine-readable output")
    return parser


# --------------------------------------------------------------------- #
# Command implementations (imports deferred so `repro --help` stays fast
# and argparse errors do not depend on numpy)
# --------------------------------------------------------------------- #
def _load_sweep(path: str):
    from .sweeps import SweepConfig

    return SweepConfig.from_file(path)


def _cmd_sweep_run(args) -> int:
    from .sweeps import run_sweep

    sweep = _load_sweep(args.file)
    workers = 1 if args.serial else args.workers
    progress = (lambda line: None) if args.quiet else print
    summary = run_sweep(sweep, store=args.store, workers=workers,
                        progress=progress, mp_context=args.mp_context)
    print(f"sweep {summary.sweep}: {summary.executed} executed, "
          f"{summary.skipped} skipped, {summary.failed} failed "
          f"(store: {summary.store_path})")
    return 0 if summary.failed == 0 else 1


def _cmd_sweep_status(args) -> int:
    from .sweeps import sweep_status

    sweep = _load_sweep(args.file)
    status = sweep_status(sweep, store=args.store)
    if args.json:
        print(json.dumps(status, indent=2, default=str))
    else:
        print(f"sweep {status['sweep']}  (store: {status['store']})")
        print(f"  total {status['total']}  ok {status['ok']}  "
              f"failed {status['failed']}  pending {status['pending']}")
        if status["skipped_lines"]:
            print(f"  note: {status['skipped_lines']} malformed store line(s) ignored")
        for row in status["runs"]:
            print(f"  [{row['status']:>7}] {row['run_id']}  {row['name']}")
    return 0 if status["pending"] == 0 and status["failed"] == 0 else 1


def _cmd_sweep_report(args) -> int:
    from .sweeps import format_pivot, format_table, sweep_report

    sweep = _load_sweep(args.file)
    try:
        report = sweep_report(sweep, store=args.store, group=args.group_by,
                              metric=args.metric, include_failed=args.include_failed)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report, indent=2, default=str))
        return 0
    print(f"sweep {report['sweep']}: {len(report['rows'])} result row(s)")
    if report["rows"]:
        print()
        print(format_table(report["rows"]))
    if "grouped" in report:
        print(f"\ngrouped by {args.group_by}:")
        print(format_table(report["grouped"]))
    if "pivot" in report:
        print(f"\n{report['pivot']['metric']} pivot ({args.group_by}):")
        print(format_pivot(report["pivot"]))
    return 0


def _cmd_formats_list(args) -> int:
    from .formats import available_formats

    families = {"posit": "PositConfig", "float": "FloatFormat", "fixed": "FixedPointFormat"}
    rows = []
    for key, fmt in sorted(available_formats().items()):
        if args.family and type(fmt).__name__ != families[args.family]:
            continue
        rows.append({
            "spec": key,
            "canonical": fmt.spec(),
            "family": type(fmt).__name__,
            "bits": fmt.bits,
            "maxpos": fmt.maxpos,
            "minpos": fmt.minpos,
        })
    if args.json:
        print(json.dumps(rows, indent=2, default=str))
    else:
        from .sweeps import format_table

        print(format_table(rows, columns=("spec", "canonical", "family",
                                          "bits", "maxpos", "minpos")))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "sweep":
        handler = {"run": _cmd_sweep_run, "status": _cmd_sweep_status,
                   "report": _cmd_sweep_report}[args.sweep_command]
    else:
        handler = _cmd_formats_list
    from .sweeps import SweepFileError

    try:
        return handler(args)
    except (FileNotFoundError, SweepFileError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
