"""The ``repro`` command-line interface.

Entry points: ``python -m repro`` (always available with ``PYTHONPATH=src``)
and the ``repro`` console script installed by ``setup.py``.

Commands::

    repro sweep run    FILE [--workers N] [--store PATH] [--serial]
    repro sweep status FILE [--store PATH]
    repro sweep report FILE [--store PATH] [--group-by AXES] [--metric M]
                            [--include-failed] [--json]
    repro sweep pareto FILE [--store PATH] [--cost M] [--benefit M]
                            [--all] [--csv | --json]
    repro formats list [--family posit|float|fixed]
    repro export (--config FILE | --store FILE [--objective accuracy|energy])
                 --output PATH [--format SPEC] [--format-map NAME=SPEC ...]
                 [--no-scaling] [--no-calibrate]
                 [--guardrail-samples N] [--guardrail-tolerance F]
                 [--no-guardrail]
    repro serve  ARTIFACT [--workers N] [--max-restarts N] [--host H]
                 [--port P] [--max-batch N] [--max-wait-ms F]
                 [--queue-size N] [--slo-p99-ms F]
                 [--min-workers N] [--max-workers N] [--no-autoscale]
                 [--trace] [--trace-sample-rate F] [--trace-file PATH]
                 [--no-activation-quant] [--no-guardrail]
    repro trace summary FILE [--slow-ms F] [--json]
    repro trace export  FILE --output PATH
    repro artifact inspect FILE [--json]

Sweep files are committed JSON / YAML-lite documents (see
``examples/sweeps/``); results accumulate in append-only JSONL stores, so
``sweep run`` is restartable and incremental by construction.  ``export``
packs a trained model into an n-bit artifact (training it first when given
a config, re-training the store's best cell when given a sweep store) —
since artifact v2 each tensor is packed in its own format, defaulting from
the training policy's role assignment with ``--format-map`` per-tensor
overrides — and
``serve`` exposes it over HTTP with dynamic micro-batching — one engine in
process by default, or ``--workers N`` supervised engine processes behind
the same listener.  Exports embed a v1.1 startup guardrail (a held-out
calibration batch plus its expected logits) that every serving process
replays before accepting traffic (:mod:`repro.serve`).

``serve`` runs the adaptive control plane by default: a periodic
controller autoscales the worker count between ``--min-workers`` and
``--max-workers`` (never past ``os.cpu_count()``), AIMD-tunes the
coalescing wait against ``--slo-p99-ms``, and sheds overload as HTTP 429 +
``Retry-After`` instead of failing requests; ``--no-autoscale`` pins the
worker count.  ``artifact inspect`` prints an artifact's manifest summary
(version, per-tensor formats, guardrail, segment table) from the header
alone — no blob decode, so it is instant on any size artifact.

``serve --trace`` turns on the :mod:`repro.obs` request tracer: every
sampled ``/predict`` is recorded as one span tree (admission → queue →
batch → codec → forward → respond), the trace id is echoed in the
``X-Repro-Trace-Id`` response header, and on shutdown the collected spans
are written to ``--trace-file`` as JSONL.  ``trace summary`` aggregates a
span JSONL into per-trace and per-stage tables; ``trace export`` converts
it to Chrome trace-event JSON loadable in Perfetto / ``chrome://tracing``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Posit DNN-training reproduction: sweep runner and format tools.",
    )
    subcommands = parser.add_subparsers(dest="command", required=True)

    sweep = subcommands.add_parser("sweep", help="declarative experiment sweeps")
    sweep_sub = sweep.add_subparsers(dest="sweep_command", required=True)

    def add_sweep_common(sub):
        sub.add_argument("file", help="sweep spec file (.json / .yaml)")
        sub.add_argument("--store", default=None,
                         help="JSONL result store (default: the spec's 'store' "
                              "or sweeps/<name>.jsonl)")

    run = sweep_sub.add_parser("run", help="execute missing sweep cells")
    add_sweep_common(run)
    run.add_argument("--workers", type=int, default=None,
                     help="worker processes (default: the spec's 'workers')")
    run.add_argument("--serial", action="store_true",
                     help="run inline in this process (equivalent to --workers 1)")
    run.add_argument("--mp-context", default=None, choices=("fork", "spawn", "forkserver"),
                     help="multiprocessing start method (default: platform)")
    run.add_argument("--quiet", action="store_true", help="suppress progress lines")

    status = sweep_sub.add_parser("status", help="show store coverage of a sweep")
    add_sweep_common(status)
    status.add_argument("--json", action="store_true", help="machine-readable output")

    report = sweep_sub.add_parser("report", help="aggregate results into tables")
    add_sweep_common(report)
    report.add_argument("--group-by", default=None, metavar="AXES",
                        help="one axis label ('policy') for grouped means, or two "
                             "('policy x model') for a pivot table")
    report.add_argument("--metric", default="final_val_accuracy",
                        help="metric for grouped/pivot cells (default: final_val_accuracy)")
    report.add_argument("--include-failed", action="store_true",
                        help="include failed runs in the per-run rows")
    report.add_argument("--json", action="store_true", help="machine-readable output")

    pareto = sweep_sub.add_parser(
        "pareto", help="energy/accuracy Pareto front over a sweep's results")
    add_sweep_common(pareto)
    pareto.add_argument("--cost", default="total_energy_uj",
                        help="metric to minimize (default: total_energy_uj)")
    pareto.add_argument("--benefit", default="final_val_accuracy",
                        help="metric to maximize (default: final_val_accuracy)")
    pareto.add_argument("--all", action="store_true",
                        help="include dominated rows (flagged pareto=False)")
    pareto.add_argument("--csv", action="store_true", help="CSV output")
    pareto.add_argument("--json", action="store_true", help="machine-readable output")

    formats = subcommands.add_parser("formats", help="number-format registry tools")
    formats_sub = formats.add_subparsers(dest="formats_command", required=True)
    formats_list = formats_sub.add_parser("list", help="list registered formats")
    formats_list.add_argument("--family", default=None,
                              choices=("posit", "float", "fixed"),
                              help="restrict to one format family")
    formats_list.add_argument("--json", action="store_true",
                              help="machine-readable output")

    export = subcommands.add_parser(
        "export", help="train/pick a model and pack it into a serving artifact")
    source = export.add_mutually_exclusive_group(required=True)
    source.add_argument("--config", default=None,
                        help="experiment config JSON file to train and export")
    source.add_argument("--store", default=None,
                        help="sweep result store; re-trains and exports its best run")
    export.add_argument("--output", "-o", required=True,
                        help="artifact output path (e.g. model.rpak)")
    export.add_argument("--format", dest="fmt", default=None, metavar="SPEC",
                        help="uniform storage format spec (default: per-tensor "
                             "formats inferred from the policy's weight roles)")
    export.add_argument("--format-map", dest="format_map", action="append",
                        default=None, metavar="NAME=SPEC",
                        help="per-tensor storage override: exact parameter "
                             "name or fnmatch pattern = registry spec, e.g. "
                             "layers.0.weight=posit(6,1) or "
                             "'features.*.weight=fixed(16,13)'; repeatable")
    export.add_argument("--objective", default="accuracy",
                        choices=("accuracy", "energy"),
                        help="best-run criterion for --store (default: accuracy)")
    export.add_argument("--rounding", default="nearest",
                        help="rounding mode for weight encoding (default: nearest)")
    export.add_argument("--no-scaling", action="store_true",
                        help="disable Eq. (2) per-tensor weight scaling")
    export.add_argument("--no-calibrate", action="store_true",
                        help="skip the activation-scale calibration pass")
    export.add_argument("--guardrail-samples", type=int, default=16,
                        help="held-out samples recorded in the v1.1 startup "
                             "guardrail block (default: 16; 0 disables)")
    export.add_argument("--guardrail-tolerance", type=float, default=0.0,
                        help="allowed |accuracy - reference| drift at startup "
                             "replay (default: 0.0)")
    export.add_argument("--no-guardrail", action="store_true",
                        help="do not embed a guardrail block "
                             "(same as --guardrail-samples 0)")

    serve = subcommands.add_parser(
        "serve", help="serve a packed artifact over HTTP with micro-batching")
    serve.add_argument("artifact", help="packed artifact file (repro export output)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument("--workers", type=int, default=1,
                       help="engine worker processes behind the listener "
                            "(default: 1 = in-process engine)")
    serve.add_argument("--max-restarts", type=int, default=2,
                       help="crash-restart budget per worker (default: 2)")
    serve.add_argument("--max-batch", type=int, default=32,
                       help="micro-batch size cap (default: 32)")
    serve.add_argument("--max-wait-ms", type=float, default=2.0,
                       help="max coalescing wait after the first request (default: 2)")
    serve.add_argument("--queue-size", type=int, default=None,
                       help="bounded admission queue per engine; overflow is "
                            "shed as HTTP 429 + Retry-After (default: 4096)")
    serve.add_argument("--slo-p99-ms", type=float, default=50.0,
                       help="p99 latency objective the controller tunes the "
                            "coalescing wait against (default: 50)")
    serve.add_argument("--min-workers", type=int, default=1,
                       help="autoscaler floor on worker processes (default: 1)")
    serve.add_argument("--max-workers", type=int, default=None,
                       help="autoscaler ceiling on worker processes "
                            "(default: --workers; always capped at cpu_count)")
    serve.add_argument("--no-autoscale", action="store_true",
                       help="pin the worker count (the controller still tunes "
                            "the coalescing wait and grades load)")
    serve.add_argument("--no-control", action="store_true",
                       help="disable the control loop entirely (static "
                            "max_wait_ms and worker count)")
    serve.add_argument("--trace", action="store_true",
                       help="record per-request span traces (admission → "
                            "queue → batch → codec → forward → respond) and "
                            "echo X-Repro-Trace-Id on responses")
    serve.add_argument("--trace-sample-rate", type=float, default=1.0,
                       metavar="F",
                       help="fraction of requests traced when --trace is on "
                            "(default: 1.0; head-based, whole trace or none)")
    serve.add_argument("--trace-file", default=None, metavar="PATH",
                       help="write collected spans as JSONL on shutdown "
                            "(feed to 'repro trace summary|export')")
    serve.add_argument("--no-activation-quant", action="store_true",
                       help="run activations in FP32 (weights stay in the "
                            "artifact format)")
    serve.add_argument("--no-guardrail", action="store_true",
                       help="skip the startup guardrail replay (serve even if "
                            "the artifact cannot reproduce its recorded logits)")

    trace = subcommands.add_parser(
        "trace", help="inspect and convert span traces (repro.obs JSONL)")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_summary = trace_sub.add_parser(
        "summary", help="per-trace and per-stage aggregates from a span JSONL")
    trace_summary.add_argument("file", help="span JSONL (serve --trace-file output)")
    trace_summary.add_argument("--slow-ms", type=float, default=None,
                               help="also list traces slower than this threshold")
    trace_summary.add_argument("--json", action="store_true",
                               help="machine-readable output")
    trace_export = trace_sub.add_parser(
        "export", help="convert a span JSONL to Chrome trace-event JSON")
    trace_export.add_argument("file", help="span JSONL (serve --trace-file output)")
    trace_export.add_argument("--output", "-o", required=True,
                              help="Chrome trace JSON output path (load in "
                                   "Perfetto or chrome://tracing)")

    artifact = subcommands.add_parser(
        "artifact", help="packed-artifact tools (header-only, no blob decode)")
    artifact_sub = artifact.add_subparsers(dest="artifact_command", required=True)
    inspect = artifact_sub.add_parser(
        "inspect", help="summarise an artifact's manifest without loading it")
    inspect.add_argument("file", help="packed artifact (repro export output)")
    inspect.add_argument("--segments", action="store_true",
                         help="also print the per-tensor segment table "
                              "(offsets, checksums)")
    inspect.add_argument("--json", action="store_true",
                         help="machine-readable output")
    return parser


# --------------------------------------------------------------------- #
# Command implementations (imports deferred so `repro --help` stays fast
# and argparse errors do not depend on numpy)
# --------------------------------------------------------------------- #
def _load_sweep(path: str):
    from .sweeps import SweepConfig

    return SweepConfig.from_file(path)


def _cmd_sweep_run(args) -> int:
    from .sweeps import run_sweep

    sweep = _load_sweep(args.file)
    workers = 1 if args.serial else args.workers
    progress = (lambda line: None) if args.quiet else print
    summary = run_sweep(sweep, store=args.store, workers=workers,
                        progress=progress, mp_context=args.mp_context)
    print(f"sweep {summary.sweep}: {summary.executed} executed, "
          f"{summary.skipped} skipped, {summary.failed} failed "
          f"(store: {summary.store_path})")
    return 0 if summary.failed == 0 else 1


def _cmd_sweep_status(args) -> int:
    from .sweeps import sweep_status

    sweep = _load_sweep(args.file)
    status = sweep_status(sweep, store=args.store)
    if args.json:
        print(json.dumps(status, indent=2, default=str))
    else:
        print(f"sweep {status['sweep']}  (store: {status['store']})")
        print(f"  total {status['total']}  ok {status['ok']}  "
              f"failed {status['failed']}  pending {status['pending']}")
        if status["skipped_lines"]:
            print(f"  note: {status['skipped_lines']} malformed store line(s) ignored")
        for row in status["runs"]:
            print(f"  [{row['status']:>7}] {row['run_id']}  {row['name']}")
    return 0 if status["pending"] == 0 and status["failed"] == 0 else 1


def _cmd_sweep_report(args) -> int:
    from .sweeps import format_pivot, format_table, sweep_report

    sweep = _load_sweep(args.file)
    try:
        report = sweep_report(sweep, store=args.store, group=args.group_by,
                              metric=args.metric, include_failed=args.include_failed)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report, indent=2, default=str))
        return 0
    print(f"sweep {report['sweep']}: {len(report['rows'])} result row(s)")
    if report["rows"]:
        print()
        print(format_table(report["rows"]))
    if "grouped" in report:
        print(f"\ngrouped by {args.group_by}:")
        print(format_table(report["grouped"]))
    if "pivot" in report:
        print(f"\n{report['pivot']['metric']} pivot ({args.group_by}):")
        print(format_pivot(report["pivot"]))
    return 0


def _cmd_sweep_pareto(args) -> int:
    from .sweeps import format_csv, format_table, pareto_front, result_rows

    sweep = _load_sweep(args.file)
    store = args.store or sweep.store or f"sweeps/{sweep.name}.jsonl"
    rows = result_rows(store, sweep=sweep)
    front = pareto_front(rows, cost=args.cost, benefit=args.benefit,
                         keep_dominated=args.all)
    if not front:
        print(f"error: no result rows carry both {args.cost!r} and "
              f"{args.benefit!r} (run the sweep with collect_energy for "
              f"energy metrics)", file=sys.stderr)
        return 2
    axis_labels = [axis.label for axis in sweep.axes]
    columns = ([label for label in axis_labels if any(label in row for row in front)]
               + [args.cost, args.benefit, "pareto"])
    if args.json:
        print(json.dumps(front, indent=2, default=str))
    elif args.csv:
        print(format_csv(front, columns=columns), end="")
    else:
        on_front = sum(1 for row in front if row.get("pareto"))
        print(f"sweep {sweep.name}: pareto front over "
              f"{args.cost} (min) x {args.benefit} (max) — "
              f"{on_front} of {len(rows)} run(s) on the front")
        print()
        print(format_table(front, columns=columns))
    return 0


def _parse_format_map(entries) -> Optional[dict]:
    """``NAME=SPEC`` CLI entries -> ordered mapping (first match wins)."""
    if not entries:
        return None
    mapping = {}
    for entry in entries:
        name, separator, spec = entry.partition("=")
        if not separator or not name.strip() or not spec.strip():
            raise ValueError(
                f"--format-map expects NAME=SPEC "
                f"(e.g. layers.0.weight=posit(6,1)), got {entry!r}")
        name = name.strip()
        if name in mapping:
            # Silently letting the last duplicate win would ship the wrong
            # precision without a trace (stale flag left in a script).
            raise ValueError(
                f"--format-map given twice for {name!r} "
                f"({mapping[name]!r} and {spec.strip()!r})")
        mapping[name] = spec.strip()
    return mapping


def _cmd_export(args) -> int:
    from .serve import format_breakdown, serve_best, train_and_export

    guardrail_samples = 0 if args.no_guardrail else args.guardrail_samples
    format_map = _parse_format_map(args.format_map)
    if args.store:
        manifest, record = serve_best(args.store, args.output,
                                      objective=args.objective, fmt=args.fmt,
                                      rounding=args.rounding,
                                      use_scaling=not args.no_scaling,
                                      calibrate=not args.no_calibrate,
                                      guardrail_samples=guardrail_samples,
                                      guardrail_tolerance=args.guardrail_tolerance,
                                      format_map=format_map)
        print(f"exported best run {record.get('name')} "
              f"({args.objective}={manifest['metadata'].get('objective_value')})")
    else:
        with open(args.config, "r", encoding="utf-8") as handle:
            config = json.load(handle)
        manifest, history = train_and_export(
            config, args.output, fmt=args.fmt, rounding=args.rounding,
            use_scaling=not args.no_scaling, calibrate=not args.no_calibrate,
            guardrail_samples=guardrail_samples,
            guardrail_tolerance=args.guardrail_tolerance,
            format_map=format_map)
        print(f"trained {config.get('name', 'experiment')}: "
              f"val_acc={history.final_val_accuracy:.3f}")

    size = os.path.getsize(args.output)
    fp32 = manifest["fp32_state_nbytes"]
    line = f"artifact: {args.output}  format={manifest['format']}  {size} bytes"
    if size < fp32:
        line += f" (fp32 state: {fp32} bytes, {fp32 / size:.2f}x smaller)"
    print(line)
    param_specs = {entry["format"] for entry in manifest["tensors"]
                   if entry["kind"] == "param"}
    if len(param_specs) > 1:
        breakdown = format_breakdown(manifest)
        print("per-tensor formats: "
              + "  ".join(f"{spec}: {row['tensors']} tensors, {row['nbytes']} B"
                          for spec, row in sorted(breakdown.items())))
    guardrail = manifest.get("guardrail")
    if guardrail:
        print(f"guardrail: {guardrail['samples']} held-out samples, "
              f"reference accuracy {guardrail['reference_accuracy']:.3f} "
              f"± {guardrail['tolerance']}")
    return 0


def _cmd_serve(args) -> int:
    from .serve import (
        BatchingConfig,
        ClusterConfig,
        ClusterPlant,
        ClusterServer,
        ControlConfig,
        Controller,
        EnginePlant,
        InferenceEngine,
        ModelServer,
        ServeCluster,
    )

    batching_kwargs = {"max_batch": args.max_batch,
                       "max_wait_ms": args.max_wait_ms}
    if args.queue_size is not None:
        batching_kwargs["queue_size"] = args.queue_size
    batching = BatchingConfig(**batching_kwargs)
    tracing = None
    if args.trace:
        from .obs import TraceConfig

        tracing = TraceConfig(enabled=True,
                              sample_rate=args.trace_sample_rate,
                              slow_ms=args.slo_p99_ms)
    max_workers = args.max_workers if args.max_workers is not None else args.workers
    control = ControlConfig(slo_p99_ms=args.slo_p99_ms,
                            min_workers=args.min_workers,
                            max_workers=max(max_workers, args.min_workers),
                            autoscale=not args.no_autoscale,
                            wait_max_ms=max(args.max_wait_ms,
                                            ControlConfig().wait_max_ms))
    if args.workers > 1:
        cluster = ServeCluster(
            args.artifact,
            ClusterConfig(workers=args.workers, max_restarts=args.max_restarts),
            batching=batching,
            quantize_activations=not args.no_activation_quant,
            verify_guardrail=not args.no_guardrail,
            tracing=tracing)
        server = ClusterServer(cluster, host=args.host, port=args.port)
        print(f"serving {args.artifact} on {server.url} "
              f"({args.workers} worker processes, guardrail "
              f"{'off' if args.no_guardrail else 'on'})")
        backend_stop = cluster.stop
        plant = ClusterPlant(cluster)
        tracer = cluster.tracer
    else:
        engine = InferenceEngine(
            args.artifact, batching,
            quantize_activations=not args.no_activation_quant,
            verify_guardrail=not args.no_guardrail,
            tracing=tracing)
        server = ModelServer(engine, host=args.host, port=args.port)
        print(f"serving {args.artifact} [{engine.format.spec()}] on {server.url} "
              f"(guardrail: {engine.guardrail_status})")
        backend_stop = engine.stop
        plant = EnginePlant(engine)
        tracer = engine.tracer
    controller = None if args.no_control else Controller(plant, control).start()
    if controller is not None:
        # Surface scale/AIMD decisions in /stats and /metrics.
        server.attach_controller(controller)
    print(f"  POST {server.url}/predict   "
          f"GET {server.url}/healthz|/stats|/metrics"
          + ("|/traces" if tracing is not None else ""))
    print(f"  micro-batching: max_batch={args.max_batch} "
          f"max_wait_ms={args.max_wait_ms}")
    if controller is not None:
        cap = controller.worker_cap
        print(f"  control: slo_p99_ms={args.slo_p99_ms} "
              f"workers=[{control.min_workers}, {control.max_workers}] "
              f"(cpu cap: {cap}) "
              f"autoscale={'off' if args.no_autoscale else 'on'}")
    if tracing is not None:
        print(f"  tracing: sample_rate={tracing.sample_rate} "
              f"slow_ms={tracing.slow_ms}"
              + (f" -> {args.trace_file}" if args.trace_file else ""))
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
        if controller is not None:
            controller.stop()
        backend_stop()
        if args.trace_file and tracing is not None:
            from .obs import write_jsonl

            spans = tracer.spans()
            write_jsonl(spans, args.trace_file)
            print(f"wrote {len(spans)} span(s) to {args.trace_file}")
    return 0


def _cmd_trace_summary(args) -> int:
    from .obs import read_jsonl, summarize_traces

    spans = read_jsonl(args.file)
    if not spans:
        print(f"error: no spans in {args.file}", file=sys.stderr)
        return 2
    summary = summarize_traces(spans, slow_ms=args.slow_ms)
    if args.json:
        print(json.dumps(summary, indent=2, default=str))
        return 0
    from .sweeps import format_table

    print(f"{args.file}: {len(spans)} span(s), "
          f"{len(summary['traces'])} trace(s)")
    print()
    print("per-stage aggregates:")
    stage_rows = [{"stage": name, **row}
                  for name, row in summary["stages"].items()]
    print(format_table(stage_rows, columns=("stage", "count", "total_ms",
                                            "mean_ms", "max_ms")))
    print()
    print("slowest traces:")
    trace_rows = [{"trace": row["trace_id"][:16], "root": row["root"],
                   "spans": row["spans"],
                   "duration_ms": round(row["duration_ms"], 3)}
                  for row in summary["traces"][:10]]
    print(format_table(trace_rows, columns=("trace", "root", "spans",
                                            "duration_ms")))
    if args.slow_ms is not None:
        slow = summary.get("slow_traces", [])
        print(f"\n{len(slow)} trace(s) over {args.slow_ms} ms")
    return 0


def _cmd_trace_export(args) -> int:
    from .obs import read_jsonl, to_chrome_trace, validate_chrome_trace, write_chrome_trace

    spans = read_jsonl(args.file)
    if not spans:
        print(f"error: no spans in {args.file}", file=sys.stderr)
        return 2
    problems = validate_chrome_trace(to_chrome_trace(spans))
    if problems:
        print("error: generated trace fails validation: "
              + "; ".join(problems), file=sys.stderr)
        return 2
    write_chrome_trace(spans, args.output)
    print(f"wrote {len(spans)} event(s) to {args.output} "
          f"(load in Perfetto or chrome://tracing)")
    return 0


def _cmd_artifact_inspect(args) -> int:
    from .serve import format_breakdown, read_manifest, segment_table

    manifest = read_manifest(args.file)
    breakdown = format_breakdown(manifest)
    guardrail = manifest.get("guardrail")
    size = os.path.getsize(args.file)
    fp32 = manifest.get("fp32_state_nbytes", 0)
    summary = {
        "artifact": args.file,
        "version": manifest.get("version"),
        "format": manifest.get("format"),
        "model": manifest.get("model"),
        "file_bytes": size,
        "fp32_state_nbytes": fp32,
        "tensors": len(manifest.get("tensors", ())),
        "formats": breakdown,
        "guardrail": ({"samples": guardrail.get("samples"),
                       "reference_accuracy": guardrail.get("reference_accuracy"),
                       "tolerance": guardrail.get("tolerance")}
                      if guardrail else None),
    }
    if args.segments or args.json:
        summary["segments"] = segment_table(args.file)
    if args.json:
        print(json.dumps(summary, indent=2, default=str))
        return 0
    print(f"artifact: {args.file}  v{summary['version']}  "
          f"format={summary['format']}  {size} bytes"
          + (f" (fp32 state: {fp32} bytes, {fp32 / size:.2f}x smaller)"
             if size and fp32 > size else ""))
    model = summary["model"]
    model_label = (model.get("model", "?") if isinstance(model, dict) else model)
    print(f"  model: {model_label}  tensors: {summary['tensors']}")
    for spec, row in sorted(breakdown.items()):
        print(f"  format {spec}: {row['tensors']} tensors, {row['nbytes']} B")
    if guardrail:
        print(f"  guardrail: {guardrail['samples']} held-out samples, "
              f"reference accuracy {guardrail['reference_accuracy']:.3f} "
              f"± {guardrail['tolerance']}")
    else:
        print("  guardrail: none")
    if args.segments:
        for row in summary["segments"]:
            print(f"  segment {row['name']}  kind={row['kind']} "
                  f"format={row['format']} shape={row['shape']} "
                  f"offset={row['file_offset']} nbytes={row['nbytes']}")
    return 0


def _cmd_formats_list(args) -> int:
    from .formats import available_formats

    families = {"posit": "PositConfig", "float": "FloatFormat", "fixed": "FixedPointFormat"}
    rows = []
    for key, fmt in sorted(available_formats().items()):
        if args.family and type(fmt).__name__ != families[args.family]:
            continue
        rows.append({
            "spec": key,
            "canonical": fmt.spec(),
            "family": type(fmt).__name__,
            "bits": fmt.bits,
            "maxpos": fmt.maxpos,
            "minpos": fmt.minpos,
        })
    if args.json:
        print(json.dumps(rows, indent=2, default=str))
    else:
        from .sweeps import format_table

        print(format_table(rows, columns=("spec", "canonical", "family",
                                          "bits", "maxpos", "minpos")))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "sweep":
        handler = {"run": _cmd_sweep_run, "status": _cmd_sweep_status,
                   "report": _cmd_sweep_report,
                   "pareto": _cmd_sweep_pareto}[args.sweep_command]
    elif args.command == "export":
        handler = _cmd_export
    elif args.command == "serve":
        handler = _cmd_serve
    elif args.command == "trace":
        handler = {"summary": _cmd_trace_summary,
                   "export": _cmd_trace_export}[args.trace_command]
    elif args.command == "artifact":
        handler = _cmd_artifact_inspect
    else:
        handler = _cmd_formats_list
    from .sweeps import SweepFileError

    try:
        return handler(args)
    except (FileNotFoundError, SweepFileError, ValueError) as exc:
        # ValueError covers the domain errors the commands raise on bad
        # input — ArtifactError, unknown objectives/metrics, empty stores.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except RuntimeError as exc:
        # Only the serving refusals get the exit-3 contract; any other
        # RuntimeError is a genuine bug and must keep its traceback.
        from .serve.cluster import ClusterError
        from .serve.engine import GuardrailError

        if isinstance(exc, (GuardrailError, ClusterError)):
            print(f"error: refusing to serve: {exc}", file=sys.stderr)
            return 3
        raise


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
