"""Benchmark / regeneration of Table V: posit MAC vs FP32 MAC power and area.

The paper reports, at a 750 MHz timing constraint under TSMC 28 nm:

====================  =========  ===========
design                power(mW)  area (µm²)
FP32                  2.52       4322
posit(8,1)            0.45       1208
posit(8,2)            0.35       1032
posit(16,1)           1.77       4079
posit(16,2)           1.60       3897
====================  =========  ===========

i.e. power reduced by 22-83 % and area by 6-76 %.  The analytical model is
calibrated only on the FP32 row; the acceptance criterion is the paper's own
claim band — every posit MAC is cheaper than FP32, the 8-bit units by a large
factor, the 16-bit units by a modest one — rather than the absolute numbers.
"""

import numpy as np

from repro.hardware import FP32MAC, PositMAC, table5_report
from repro.posit import PositConfig, encode

#: The paper's Table V, for the EXPERIMENTS.md side-by-side.
PAPER_TABLE5 = {
    "FP32": {"power_mw": 2.52, "area_um2": 4322},
    "posit(8,1)": {"power_mw": 0.45, "area_um2": 1208},
    "posit(8,2)": {"power_mw": 0.35, "area_um2": 1032},
    "posit(16,1)": {"power_mw": 1.77, "area_um2": 4079},
    "posit(16,2)": {"power_mw": 1.60, "area_um2": 3897},
}


def test_bench_table5_mac_power_area(benchmark, save_result):
    """Regenerate Table V and check the reduction bands of the paper's claim."""
    rows = benchmark.pedantic(table5_report, rounds=3, iterations=1)
    payload = {"model": rows, "paper": PAPER_TABLE5}
    save_result("table5_mac_power_area", payload)

    by_design = {row["design"]: row for row in rows}
    fp32 = by_design["FP32"]
    # Calibration target is exact.
    assert abs(fp32["power_mw"] - 2.52) < 1e-6
    assert abs(fp32["area_um2"] - 4322.0) < 1e-3

    # The paper's claim: power reduced by 22-83 %, area by 6-76 %.
    for design in ("posit(8,1)", "posit(8,2)", "posit(16,1)", "posit(16,2)"):
        row = by_design[design]
        assert 15.0 <= row["power_reduction_percent"] <= 90.0, row
        assert 5.0 <= row["area_reduction_percent"] <= 90.0, row

    # Ordering within the table: 8-bit units are cheaper than 16-bit units,
    # and es=2 is slightly cheaper than es=1 at the same width.
    assert by_design["posit(8,1)"]["area_um2"] < by_design["posit(16,1)"]["area_um2"]
    assert by_design["posit(8,2)"]["area_um2"] < by_design["posit(8,1)"]["area_um2"]
    assert by_design["posit(16,2)"]["area_um2"] < by_design["posit(16,1)"]["area_um2"]


def test_bench_posit_mac_functional_throughput(benchmark, bench_rng):
    """Throughput of the functional posit(16,1) MAC model (used in verification)."""
    cfg = PositConfig(16, 1)
    mac = PositMAC(cfg)
    operands = [tuple(encode(float(v), cfg) for v in bench_rng.uniform(-10, 10, 3))
                for _ in range(200)]

    def run_macs():
        return [mac.mac(a, b, c) for a, b, c in operands]

    results = benchmark(run_macs)
    assert len(results) == 200


def test_bench_fp32_mac_functional(benchmark, bench_rng):
    """The FP32 MAC functional model, for comparison."""
    mac = FP32MAC()
    operands = bench_rng.uniform(-10, 10, (200, 3))

    def run_macs():
        return [mac.mac(a, b, c) for a, b, c in operands]

    results = benchmark(run_macs)
    assert np.all(np.isfinite(results))
