"""Benchmark / regeneration of Table I: the (5,1) posit value table.

Also benchmarks the throughput of the vectorized transformation operator
P(n,es)(x) (Algorithm 1), which is the kernel every quantized training step
pays for.
"""

from fractions import Fraction

import numpy as np

from repro.posit import PositConfig, positive_value_table, quantize

#: The positive values of Table I, used as the acceptance criterion.
TABLE_I_VALUES = [Fraction(0), Fraction(1, 64), Fraction(1, 16), Fraction(1, 8),
                  Fraction(1, 4), Fraction(3, 8), Fraction(1, 2), Fraction(3, 4),
                  Fraction(1), Fraction(3, 2), Fraction(2), Fraction(3), Fraction(4),
                  Fraction(8), Fraction(16), Fraction(64)]


def test_bench_table1_value_table(benchmark, save_result):
    """Regenerate Table I and check it is exactly the paper's table."""
    config = PositConfig(5, 1)
    rows = benchmark(positive_value_table, config)
    assert [row.value for row in rows] == TABLE_I_VALUES
    save_result("table1_posit_5_1_values", [
        {"binary": row.binary, "regime": row.regime, "exponent": row.exponent,
         "mantissa": str(row.mantissa), "value": str(row.value)}
        for row in rows
    ])


def test_bench_quantize_throughput_8bit(benchmark, bench_rng):
    """Throughput of P(8,1) over a conv-activation-sized tensor."""
    values = bench_rng.standard_normal(1 << 18)
    result = benchmark(quantize, values, PositConfig(8, 1))
    assert result.shape == values.shape


def test_bench_quantize_throughput_16bit(benchmark, bench_rng):
    """Throughput of P(16,2) (the ImageNet backward format)."""
    values = bench_rng.standard_normal(1 << 18)
    result = benchmark(quantize, values, PositConfig(16, 2))
    assert result.shape == values.shape


def test_bench_quantize_stochastic_rounding(benchmark, bench_rng):
    """Stochastic rounding costs roughly one extra random draw per element."""
    values = bench_rng.standard_normal(1 << 16)
    rng = np.random.default_rng(0)
    result = benchmark(quantize, values, PositConfig(8, 1), "stochastic", rng)
    assert result.shape == values.shape
