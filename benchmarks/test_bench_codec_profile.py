"""Codec hot-path scoreboard: per-format, per-op call cost, measured.

PR-7 committed the scalar-path baseline this file used to produce (posit
``to_bits`` at ~150-400 ns/element); the codec kernels
(:mod:`repro.formats.kernels`) were built to beat it.  This benchmark now
plays both roles:

* regenerate ``benchmarks/results/codec_profile_baseline.json`` with the
  kernels **on** (the shipping default), via the :mod:`repro.obs` profiler's
  real hooks — the same patching a traced serving engine uses — so the
  committed scoreboard tracks what production codepaths actually cost;
* **gate** the kernels in-run: posit(8,1)/posit(16,1) per-element cost must
  land within 5x of the fixed-point numpy floor on every op, and a
  kernels-off re-measurement of the same formats must show ``to_bits`` at
  least 10x slower — the acceptance criterion from the kernel issue.
"""

import numpy as np
import pytest

from repro.formats import (
    available_formats,
    kernel_info,
    kernels_enabled,
    set_kernels_enabled,
)
from repro.obs import CodecProfiler

#: Array size per profiled call — big enough that per-element cost
#: dominates Python call + profiler overhead (which would otherwise tax the
#: ~10 ns/elem kernel path far more than the ~150+ ns/elem scalar path),
#: small enough to keep the sweep fast.
ELEMENTS = 16384
#: Repetitions per (format, op) so the ns figures average real work.
REPEATS = 3

#: The issue's acceptance formats and thresholds.
GATED_FORMATS = ("posit(8,1)", "posit(16,1)")
FLOOR_FORMATS = ("fixed(16,13)", "fixed(8,5)")
FLOOR_MULTIPLE = 5.0
MIN_TO_BITS_SPEEDUP = 10.0


def _profile_rows(formats, values):
    """Drive every format through the three codec ops under the profiler."""
    profiler = CodecProfiler()
    # Warm-up outside the timed region: first contact builds the LUTs
    # (posit(16,x) costs a few hundred ms once) and primes numpy caches.
    for fmt in formats.values():
        fmt.from_bits(fmt.to_bits(values))
        fmt.quantize(values)
    with profiler:
        for fmt in formats.values():
            for _ in range(REPEATS):
                bits = fmt.to_bits(values)
                fmt.from_bits(bits)
                fmt.quantize(values)
    snapshot = profiler.snapshot()
    rows = []
    for spec in sorted(snapshot["formats"]):
        for op, entry in sorted(snapshot["formats"][spec].items()):
            rows.append({
                "format": spec,
                "op": op,
                "calls": entry["calls"],
                "elements": entry["elements"],
                "total_ns": entry["ns"],
                "ns_per_element": entry["ns"] / entry["elements"],
            })
    return profiler, snapshot, rows


def _ns_per_element(rows):
    return {(row["format"], row["op"]): row["ns_per_element"] for row in rows}


def test_bench_codec_profile_baseline(benchmark, save_result, bench_rng):
    assert kernels_enabled(), "benchmark must measure the shipping default"
    formats = {}
    for fmt in available_formats().values():
        formats.setdefault(fmt.spec(), fmt)

    values = bench_rng.normal(size=ELEMENTS)
    profiler, snapshot, rows = _profile_rows(formats, values)
    table = profiler.format_table(snapshot)
    print("\n" + table)

    # Kernels-off counter-measurement of the gated formats only (the full
    # scalar sweep is what PR-7 committed; re-measuring two formats in-run
    # is enough to prove the speedup without doubling the benchmark).
    gated = {spec: formats[spec] for spec in GATED_FORMATS}
    previous = set_kernels_enabled(False)
    try:
        _, _, scalar_rows = _profile_rows(gated, values)
    finally:
        set_kernels_enabled(previous)

    kernel_ns = _ns_per_element(rows)
    scalar_ns = _ns_per_element(scalar_rows)
    speedups = {
        f"{spec}:{op}": scalar_ns[(spec, op)] / kernel_ns[(spec, op)]
        for spec, op in scalar_ns
    }

    # Timed region: one full codec round trip for the paper's headline
    # format, through the profiled methods (the serving-path shape).
    posit8 = formats["posit(8,1)"]
    with profiler:
        benchmark(lambda: posit8.from_bits(posit8.to_bits(values)))

    save_result("codec_profile_baseline", {
        "elements_per_call": ELEMENTS,
        "repeats": REPEATS,
        "formats_profiled": len(formats),
        "codec_kernels": True,
        "table": table,
        "rows": rows,
        "scalar_reference_rows": scalar_rows,
        "kernel_speedups": speedups,
        "kernels": kernel_info(list(formats.values())),
    })

    # The baseline is only a baseline if it measured something: every
    # registered format must show all three ops with non-zero cost.
    specs_seen = {row["format"] for row in rows}
    assert specs_seen == set(formats), (specs_seen, set(formats))
    for spec in formats:
        ops = snapshot["formats"][spec]
        assert set(ops) == {"quantize", "to_bits", "from_bits"}, (spec, ops)
        for op, entry in ops.items():
            assert entry["calls"] >= REPEATS, (spec, op, entry)
            assert entry["elements"] >= REPEATS * ELEMENTS, (spec, op, entry)
            assert entry["ns"] > 0, (spec, op, entry)

    # Gate 1: kernel-backed posits land within FLOOR_MULTIPLE of the
    # fixed-point numpy floor on every op.  The floor is the fixed family's
    # codec cost envelope — its slowest (format, op) in this same run — so
    # the budget tracks what plain whole-array numpy costs on this machine
    # rather than a sub-ns razor edge like fixed quantize (one clip+round).
    floor = max(kernel_ns[(spec, op)] for spec in FLOOR_FORMATS
                for op in ("quantize", "to_bits", "from_bits"))
    budget = FLOOR_MULTIPLE * floor
    for spec in GATED_FORMATS:
        for op in ("quantize", "to_bits", "from_bits"):
            measured = kernel_ns[(spec, op)]
            assert measured <= budget, (
                f"{spec} {op}: {measured:.1f} ns/elem exceeds "
                f"{FLOOR_MULTIPLE}x fixed-point floor ({floor:.1f} -> "
                f"budget {budget:.1f})"
            )

    # Gate 2: the issue's acceptance criterion — >= 10x on to_bits for
    # both gated formats against the scalar path measured in this run.
    for spec in GATED_FORMATS:
        ratio = speedups[f"{spec}:to_bits"]
        assert ratio >= MIN_TO_BITS_SPEEDUP, (
            f"{spec} to_bits speedup {ratio:.1f}x < {MIN_TO_BITS_SPEEDUP}x "
            f"(scalar {scalar_ns[(spec, 'to_bits')]:.1f} ns/elem, kernel "
            f"{kernel_ns[(spec, 'to_bits')]:.1f} ns/elem)"
        )
