"""Codec hot-path baseline: per-format, per-op call cost, measured.

The ROADMAP's top open item — vectorized/LUT codec kernels — needs a
committed baseline to optimize against.  This benchmark drives every
registered number format (deduplicated by canonical spec) through the
three codec entry points the profiler accounts — ``quantize`` /
``to_bits`` / ``from_bits`` — over 4096-element arrays, via the
:mod:`repro.obs` profiler's real hooks (the same patching a traced
serving engine uses).  The result is the scoreboard
``benchmarks/results/codec_profile_baseline.json``: calls, elements,
cumulative nanoseconds, and ns/element per (format, op) — the numbers a
future kernel PR must beat.
"""

import numpy as np
import pytest

from repro.formats import available_formats
from repro.obs import CodecProfiler

#: Array size per profiled call — big enough that per-element cost
#: dominates Python call overhead, small enough to keep the sweep fast.
ELEMENTS = 4096
#: Repetitions per (format, op) so the ns figures average real work.
REPEATS = 3


def test_bench_codec_profile_baseline(benchmark, save_result, bench_rng):
    formats = {}
    for fmt in available_formats().values():
        formats.setdefault(fmt.spec(), fmt)

    values = bench_rng.normal(size=ELEMENTS)
    profiler = CodecProfiler()
    with profiler:
        for fmt in formats.values():
            for _ in range(REPEATS):
                bits = fmt.to_bits(values)
                fmt.from_bits(bits)
                fmt.quantize(values)

    snapshot = profiler.snapshot()
    table = profiler.format_table(snapshot)
    print("\n" + table)

    # Timed region: one full codec round trip for the paper's headline
    # format, through the profiled methods (the serving-path shape).
    posit8 = formats["posit(8,1)"]
    with profiler:
        benchmark(lambda: posit8.from_bits(posit8.to_bits(values)))

    rows = []
    for spec in sorted(snapshot["formats"]):
        for op, entry in sorted(snapshot["formats"][spec].items()):
            rows.append({
                "format": spec,
                "op": op,
                "calls": entry["calls"],
                "elements": entry["elements"],
                "total_ns": entry["ns"],
                "ns_per_element": entry["ns"] / entry["elements"],
            })
    save_result("codec_profile_baseline", {
        "elements_per_call": ELEMENTS,
        "repeats": REPEATS,
        "formats_profiled": len(formats),
        "table": table,
        "rows": rows,
    })

    # The baseline is only a baseline if it measured something: every
    # registered format must show all three ops with non-zero cost.
    specs_seen = {row["format"] for row in rows}
    assert specs_seen == set(formats), (specs_seen, set(formats))
    for spec in formats:
        ops = snapshot["formats"][spec]
        assert set(ops) == {"quantize", "to_bits", "from_bits"}, (spec, ops)
        for op, entry in ops.items():
            assert entry["calls"] >= REPEATS, (spec, op, entry)
            assert entry["elements"] >= REPEATS * ELEMENTS, (spec, op, entry)
            assert entry["ns"] > 0, (spec, op, entry)
