"""Benchmark of quantization fidelity across number formats (the §II motivation).

Not a numbered table in the paper, but the quantitative background for its
related-work argument: posit's tapered precision fits DNN tensor
distributions better than fixed point at the same bit width, and the
distribution-based shifting closes most of the remaining gap to wider floats.
Reported as SQNR on weight-like and gradient-like tensors.

The formats under comparison are named by registry spec strings and
resolved through the cached quantizer factory (:mod:`repro.formats`) —
the benchmark itself holds no format-construction logic.
"""

import numpy as np

from repro.analysis import compare_formats, shifting_benefit
from repro.formats import get_quantizer

#: Spec strings of the formats under comparison (labels in the report).
FORMAT_SPECS = (
    "posit(8,1)",
    "posit(8,2)",
    "posit(16,1)",
    "fp16",
    "fp8_e4m3",
    "fixed(8,5)",    # Q2.5
    "fixed(16,13)",  # Q2.13, Gupta et al.
)


def make_tensors(rng):
    return {
        "conv_weights": rng.standard_normal(30000) * 0.02,
        "activations": np.abs(rng.standard_normal(30000)) * 1.2,
        "gradients": rng.standard_normal(30000) * 3e-5,
    }


def test_bench_format_comparison(benchmark, save_result, bench_rng):
    """SQNR of posit / float / fixed-point formats on the three tensor kinds."""
    tensors = make_tensors(bench_rng)
    quantizers = {spec: get_quantizer(spec, rounding="nearest")
                  for spec in FORMAT_SPECS}

    def run_comparison():
        return {name: compare_formats(tensor, quantizers)
                for name, tensor in tensors.items()}

    report = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    save_result("quantization_error_by_format", report)

    def sqnr(tensor_name, label):
        return next(r["sqnr_db"] for r in report[tensor_name] if r["label"] == label)

    # 8-bit posit beats 8-bit fixed point on small-magnitude tensors (weights,
    # gradients) — the paper's core numerical argument.
    assert sqnr("conv_weights", "posit(8,1)") > sqnr("conv_weights", "fixed(8,5)")
    assert sqnr("gradients", "posit(8,2)") > sqnr("gradients", "fixed(8,5)")
    # 16-bit posit is comparable to or better than FP16 on these tensors.
    assert sqnr("conv_weights", "posit(16,1)") > sqnr("conv_weights", "fp16") - 3.0


def test_bench_shifting_gain_by_format(benchmark, save_result, bench_rng):
    """How much SQNR the Eq. (2)/(3) shifting recovers, per posit format."""
    from repro.formats import parse_format

    gradients = bench_rng.standard_normal(30000) * 3e-5

    def run_study():
        return [shifting_benefit(gradients, parse_format(spec))
                for spec in ("posit(8,0)", "posit(8,1)", "posit(8,2)", "posit(16,1)")]

    rows = benchmark(run_study)
    save_result("shifting_gain_by_format", rows)
    # Shifting helps most where the dynamic range is scarcest (small es).
    gains = {row["format"]: row["sqnr_gain_db"] for row in rows}
    assert gains["posit(8,0)"] >= gains["posit(8,2)"] - 1e-6
    assert all(gain > -1e-9 for gain in gains.values())
