"""Benchmark of quantization fidelity across number formats (the §II motivation).

Not a numbered table in the paper, but the quantitative background for its
related-work argument: posit's tapered precision fits DNN tensor
distributions better than fixed point at the same bit width, and the
distribution-based shifting closes most of the remaining gap to wider floats.
Reported as SQNR on weight-like and gradient-like tensors.
"""

import numpy as np

from repro.analysis import compare_formats, shifting_benefit
from repro.baselines import FixedPointFormat, FixedPointQuantizer
from repro.posit import FP8_E4M3, FP16, FloatQuantizer, PositConfig, PositQuantizer


def make_tensors(rng):
    return {
        "conv_weights": rng.standard_normal(30000) * 0.02,
        "activations": np.abs(rng.standard_normal(30000)) * 1.2,
        "gradients": rng.standard_normal(30000) * 3e-5,
    }


def test_bench_format_comparison(benchmark, save_result, bench_rng):
    """SQNR of posit / float / fixed-point formats on the three tensor kinds."""
    tensors = make_tensors(bench_rng)
    quantizers = {
        "posit(8,1)": PositQuantizer(PositConfig(8, 1), rounding="nearest"),
        "posit(8,2)": PositQuantizer(PositConfig(8, 2), rounding="nearest"),
        "posit(16,1)": PositQuantizer(PositConfig(16, 1), rounding="nearest"),
        "FP16": FloatQuantizer(FP16),
        "FP8-E4M3": FloatQuantizer(FP8_E4M3),
        "fixed Q2.5 (8b)": FixedPointQuantizer(FixedPointFormat(2, 5)),
        "fixed Q2.13 (16b)": FixedPointQuantizer(FixedPointFormat(2, 13)),
    }

    def run_comparison():
        return {name: compare_formats(tensor, quantizers)
                for name, tensor in tensors.items()}

    report = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    save_result("quantization_error_by_format", report)

    def sqnr(tensor_name, label):
        return next(r["sqnr_db"] for r in report[tensor_name] if r["label"] == label)

    # 8-bit posit beats 8-bit fixed point on small-magnitude tensors (weights,
    # gradients) — the paper's core numerical argument.
    assert sqnr("conv_weights", "posit(8,1)") > sqnr("conv_weights", "fixed Q2.5 (8b)")
    assert sqnr("gradients", "posit(8,2)") > sqnr("gradients", "fixed Q2.5 (8b)")
    # 16-bit posit is comparable to or better than FP16 on these tensors.
    assert sqnr("conv_weights", "posit(16,1)") > sqnr("conv_weights", "FP16") - 3.0


def test_bench_shifting_gain_by_format(benchmark, save_result, bench_rng):
    """How much SQNR the Eq. (2)/(3) shifting recovers, per posit format."""
    gradients = bench_rng.standard_normal(30000) * 3e-5

    def run_study():
        return [shifting_benefit(gradients, config)
                for config in (PositConfig(8, 0), PositConfig(8, 1),
                               PositConfig(8, 2), PositConfig(16, 1))]

    rows = benchmark(run_study)
    save_result("shifting_gain_by_format", rows)
    # Shifting helps most where the dynamic range is scarcest (small es).
    gains = {row["format"]: row["sqnr_gain_db"] for row in rows}
    assert gains["posit(8,0)"] >= gains["posit(8,2)"] - 1e-6
    assert all(gain > -1e-9 for gain in gains.values())
