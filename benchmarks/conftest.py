"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see DESIGN.md's
per-experiment index).  Besides timing a representative kernel with
pytest-benchmark, each benchmark writes the regenerated rows to
``benchmarks/results/<name>.json`` so that EXPERIMENTS.md can be refreshed
from a single run, and prints them with ``-s``.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def _to_jsonable(value):
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {k: _to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(v) for v in value]
    return value


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where regenerated tables are stored."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir):
    """Write a regenerated table/figure to benchmarks/results and echo it."""

    def _save(name: str, payload) -> None:
        path = results_dir / f"{name}.json"
        with open(path, "w") as handle:
            json.dump(_to_jsonable(payload), handle, indent=2)
        print(f"\n[{name}] written to {path}")
        if isinstance(payload, list):
            for row in payload:
                print(f"  {row}")
        else:
            print(f"  {payload}")

    return _save


@pytest.fixture
def bench_rng() -> np.random.Generator:
    """Deterministic generator for benchmark workloads."""
    return np.random.default_rng(2024)
