"""Benchmark of the §V outlook: energy of an FP32 vs posit training accelerator.

The paper's closing argument is that the posit MAC "will benefit future
low-power DNN training accelerators".  This benchmark combines the Table V
per-MAC energies with the per-layer MAC counts of the Cifar ResNet and the
memory-traffic model to estimate the training-step energy of a PE-array
accelerator in FP32 and under the paper's posit policies.
"""

import numpy as np

from repro.core import QuantizationPolicy
from repro.hardware import AcceleratorConfig, accelerator_comparison, count_training_macs
from repro.models import cifar_resnet8


def test_bench_accelerator_energy_comparison(benchmark, save_result):
    """FP32 vs posit accelerator energy for one training step of a Cifar ResNet."""
    model = cifar_resnet8(base_width=16, rng=np.random.default_rng(0))
    accelerator = AcceleratorConfig(num_pes=256)

    def build_report():
        results = {}
        for name, policy in (("cifar_policy", QuantizationPolicy.cifar_paper()),
                             ("imagenet_policy", QuantizationPolicy.imagenet_paper()),
                             ("uniform_8bit", QuantizationPolicy.uniform(8))):
            results[name] = accelerator_comparison(model, policy, batch_size=32,
                                                   input_hw=(32, 32),
                                                   accelerator=accelerator)
        return results

    results = benchmark.pedantic(build_report, rounds=1, iterations=1)
    save_result("section5_accelerator_energy", results)

    for name, comparison in results.items():
        # Every posit configuration must reduce both compute and memory energy.
        assert comparison["compute_energy_ratio"] > 1.2, name
        assert comparison["memory_energy_ratio"] >= 1.9, name
    # The 8-bit policies save more total energy than the 16-bit policy.
    assert (results["uniform_8bit"]["total_energy_ratio"]
            > results["imagenet_policy"]["total_energy_ratio"])


def test_bench_workload_counting(benchmark):
    """Cost of the per-layer MAC analysis itself (used inside design sweeps)."""
    model = cifar_resnet8(base_width=16, rng=np.random.default_rng(0))
    workloads = benchmark(count_training_macs, model, (32, 32))
    total = sum(w.total_macs for w in workloads)
    assert total > 1e7
