"""Benchmark / regeneration of Table IV: encoder and decoder delay.

Compares the original codec architecture of Zhang et al. [6] with the paper's
optimized architecture (Figs. 5 and 6) for posit(8,0), posit(16,1), and
posit(32,3), using the calibrated analytical synthesis model.  The paper
reports encoder speed-ups of 25-35 % and decoder speed-ups of 15-30 %; the
acceptance band here is the looser "meaningful speed-up everywhere, larger
for the encoder than the decoder on average".
"""

from repro.hardware import PositDecoder, calibrate_to_reference, table4_report
from repro.posit import PositConfig


def test_bench_table4_codec_delays(benchmark, save_result):
    """Regenerate Table IV and check the optimization direction and magnitude."""
    rows = benchmark.pedantic(table4_report, rounds=3, iterations=1)
    save_result("table4_codec_delay", rows)

    for row in rows:
        assert row["optimized_delay_ns"] < row["original_delay_ns"], row
        assert 5.0 <= row["speedup_percent"] <= 45.0, row

    # Delay grows with word size for both units, as in the paper's table.
    for unit in ("encoder", "decoder"):
        delays = [row["optimized_delay_ns"] for row in rows if row["unit"] == unit]
        assert delays == sorted(delays)

    # The calibration point itself: the original (16,1) decoder sits at the
    # 0.28 ns the paper attributes to [6].
    reference = next(row for row in rows
                     if row["unit"] == "decoder" and row["format"] == "posit(16,1)")
    assert abs(reference["original_delay_ns"] - 0.28) < 0.005


def test_bench_decoder_cost_model(benchmark):
    """Time the cost-model evaluation itself (it is run inside sweeps)."""
    decoder = PositDecoder(PositConfig(16, 1), optimized=True)
    cost = benchmark(decoder.cost)
    assert cost.area_ge > 0


def test_bench_calibration(benchmark):
    """Calibration solves three scale factors from the published reference points."""
    calibration = benchmark(calibrate_to_reference)
    assert calibration.area_scale > 0
    assert calibration.power_scale > 0
    assert calibration.delay_scale > 0
