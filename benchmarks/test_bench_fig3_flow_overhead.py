"""Benchmark of the Fig. 3 computation flow: cost of inserting P(.) in training.

Fig. 3 inserts the posit transformation at four points of every layer's
forward/backward/update path.  In the paper this is free (the hardware MAC
operates on posit natively); in a software simulation it is the dominant
overhead.  This benchmark measures a full training step (forward + backward +
update) of the same model with and without the Cifar quantization policy, and
records the simulation overhead factor so that users of the library know what
to expect.
"""

import numpy as np
import pytest

from repro.core import PositTrainer, QuantizationPolicy, WarmupSchedule
from repro.data import ArrayDataLoader
from repro.models import ResNet
from repro.nn import CrossEntropyLoss
from repro.optim import SGD


def make_trainer(policy, seed=0):
    model = ResNet(stage_blocks=(1, 1), num_classes=10, base_width=8, stem="cifar",
                   rng=np.random.default_rng(seed))
    optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9)
    return PositTrainer(model, optimizer, CrossEntropyLoss(), policy=policy,
                        warmup=WarmupSchedule(0))


def make_batch_loader(seed=0, batch_size=32):
    rng = np.random.default_rng(seed)
    images = rng.standard_normal((batch_size, 3, 32, 32))
    labels = rng.integers(0, 10, batch_size)
    return ArrayDataLoader(images, labels, batch_size=batch_size, shuffle=False)


def test_bench_fp32_training_step(benchmark):
    """Baseline: one FP32 training step (forward + backward + SGD update)."""
    trainer = make_trainer(None)
    loader = make_batch_loader()
    loss, _ = benchmark(trainer.train_epoch, loader, 0)
    assert np.isfinite(loss)


def test_bench_posit_training_step(benchmark, save_result):
    """One training step with the Fig. 3 posit insertion (Cifar policy)."""
    trainer = make_trainer(QuantizationPolicy.cifar_paper())
    loader = make_batch_loader()
    loss, _ = benchmark(trainer.train_epoch, loader, 0)
    assert np.isfinite(loss)
    save_result("fig3_flow_quantized_step", {
        "quantized_layers": len(trainer.contexts),
        "note": "compare the two *_training_step benchmarks for the simulation overhead",
    })


def test_bench_posit_inference_step(benchmark):
    """Forward-only cost under quantization (the deployment path)."""
    trainer = make_trainer(QuantizationPolicy.cifar_paper())
    loader = make_batch_loader()
    loss, accuracy = benchmark(trainer.evaluate, loader)
    assert np.isfinite(loss)
    assert 0.0 <= accuracy <= 1.0


@pytest.mark.slow
def test_bench_fig3_insertion_points_complete(benchmark, save_result):
    """Every Fig. 3 tensor role is exercised during one quantized step."""
    trainer = make_trainer(QuantizationPolicy.cifar_paper())
    loader = make_batch_loader()

    benchmark.pedantic(trainer.train_epoch, args=(loader, 0), rounds=1, iterations=1)

    role_calls = {"weight": 0, "activation": 0, "error": 0, "weight_grad": 0}
    for context in trainer.contexts.values():
        for role in role_calls:
            role_calls[role] += context.stats[role].calls
    save_result("fig3_insertion_point_calls", role_calls)
    # Weights, activations and weight gradients are quantized in every layer;
    # errors are quantized in every layer that propagates a gradient backwards.
    assert role_calls["weight"] > 0
    assert role_calls["activation"] > 0
    assert role_calls["error"] > 0
    assert role_calls["weight_grad"] > 0
