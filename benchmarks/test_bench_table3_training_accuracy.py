"""Benchmark / regeneration of Table III: training accuracy, FP32 vs posit.

The paper's Table III:

=============  ==========  =========
dataset        Cifar-10    ImageNet
model          Cifar-R18   ResNet-18
FP32 baseline  93.40       71.02
posit          92.87       71.09
=============  ==========  =========

with posit(8,1)/(8,2) for CONV and posit(16,1)/(16,2) for BN on Cifar-10, and
posit(16,1)/(16,2) everywhere on ImageNet, both after an FP32 warm-up.

This reproduction cannot train ResNet-18 on the real datasets (offline, CPU
only), so the benchmark runs the same *methodology* at reduced scale — a
small Cifar-stem ResNet on the synthetic cifar-like dataset — and asserts the
relative claim: the posit runs land within a few points of the FP32 baseline,
while an aggressive low-bit configuration without the paper's stabilizing
techniques falls behind.  Absolute accuracies are recorded in
benchmarks/results for EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro.api import build_policy
from repro.core import PositTrainer, QuantizationPolicy, WarmupSchedule
from repro.data import cifar_like, train_loader
from repro.data.loaders import test_loader as make_test_loader
from repro.models import ResNet
from repro.nn import CrossEntropyLoss
from repro.optim import SGD, MultiStepLR
from repro.sweeps import ResultStore, format_table, result_rows, run_key

#: The paper's reported accuracies, stored alongside ours in the results file.
PAPER_TABLE3 = {
    "cifar10": {"fp32": 93.40, "posit": 92.87},
    "imagenet": {"fp32": 71.02, "posit": 71.09},
}

EPOCHS = 4
TRAIN_SIZE = 192
TEST_SIZE = 128


def run_configuration(policy, warmup_epochs, seed=0, lr=0.05):
    dataset = cifar_like(num_train=TRAIN_SIZE, num_test=TEST_SIZE, noise_std=0.5, seed=1)
    train = train_loader(dataset, batch_size=32, seed=seed)
    val = make_test_loader(dataset, batch_size=128)
    model = ResNet(stage_blocks=(1, 1), num_classes=10, base_width=8, stem="cifar",
                   rng=np.random.default_rng(seed))
    optimizer = SGD(model.parameters(), lr=lr, momentum=0.9, weight_decay=5e-4)
    scheduler = MultiStepLR(optimizer, milestones=(EPOCHS - 1,))
    trainer = PositTrainer(model, optimizer, CrossEntropyLoss(), policy=policy,
                           warmup=WarmupSchedule(warmup_epochs), scheduler=scheduler)
    history = trainer.fit(train, val, epochs=EPOCHS)
    return history


@pytest.mark.slow
def test_bench_table3_cifar_recipe(benchmark, save_result, tmp_path):
    """FP32 vs the Cifar posit policy vs the ImageNet posit policy vs no-tricks."""
    results = {}

    def train_all():
        # Policies are named declaratively and resolved by repro.api.
        results["fp32"] = run_configuration(build_policy("fp32"), 0)
        results["posit_cifar_policy"] = run_configuration(
            build_policy("cifar_paper"), warmup_epochs=1)
        results["posit_imagenet_policy"] = run_configuration(
            build_policy("imagenet_paper"), warmup_epochs=1)
        results["posit6_no_tricks"] = run_configuration(
            QuantizationPolicy.uniform(6, es_forward=0, es_backward=0, use_scaling=False),
            warmup_epochs=0)
        return results

    benchmark.pedantic(train_all, rounds=1, iterations=1)

    # Feed the sweep result/aggregation layer: each configuration becomes a
    # content-keyed store record, and the saved table is rendered by the
    # same report code the `repro sweep report` CLI uses.
    store = ResultStore(tmp_path / "table3.jsonl")
    for name, history in results.items():
        store.append({
            "run_id": run_key({"bench": "table3", "configuration": name,
                               "epochs": EPOCHS, "train_size": TRAIN_SIZE}),
            "name": name,
            "status": "ok",
            "overrides": {"configuration": name},
            "metrics": {
                "final_val_accuracy": history.final_val_accuracy,
                "best_val_accuracy": history.best_val_accuracy,
                "final_train_loss": history.final_train_loss,
                "epochs": len(history),
            },
        })
    rows = result_rows(store)
    summary = {row["name"]: {key: row[key] for key in
                             ("final_val_accuracy", "best_val_accuracy",
                              "final_train_loss", "epochs")}
               for row in rows}
    table = format_table(rows, columns=("configuration", "final_val_accuracy",
                                        "best_val_accuracy", "final_train_loss",
                                        "epochs"))
    save_result("table3_training_accuracy", {"model": summary, "paper": PAPER_TABLE3,
                                             "table": table.splitlines(),
                                             "scale_note": "reduced-scale synthetic data"})

    fp32 = summary["fp32"]["final_val_accuracy"]
    # The paper's claim: the posit recipes track the FP32 baseline.
    assert summary["posit_cifar_policy"]["final_val_accuracy"] >= fp32 - 0.15
    assert summary["posit_imagenet_policy"]["final_val_accuracy"] >= fp32 - 0.15
    # The counterfactual: an aggressive format without the methodology degrades.
    assert (summary["posit6_no_tricks"]["final_val_accuracy"]
            <= summary["posit_cifar_policy"]["final_val_accuracy"] + 0.02)
