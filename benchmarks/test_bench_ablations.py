"""Ablation benchmarks for the design choices of §III-B.

The paper proposes three stabilizing techniques (warm-up training,
distribution-based shifting, per-role es selection) and a hardware-friendly
rounding mode.  These ablations quantify each choice on a small synthetic
task, providing the evidence table DESIGN.md promises:

* warm-up on/off,
* shifting on/off and a sigma sweep,
* es assignment (paper's 1-forward/2-backward vs uniform 0 and uniform 2),
* rounding mode (round-to-zero vs round-to-nearest vs stochastic).

Each configuration is a short training run; the outputs land in
benchmarks/results/ablations.json.
"""

import numpy as np
import pytest

from repro.analysis import sqnr_db
from repro.core import (
    PositTrainer,
    QuantizationPolicy,
    WarmupSchedule,
    compute_scale_factor,
)
from repro.data import SyntheticImageDataset, train_loader
from repro.data.loaders import test_loader as make_test_loader
from repro.models import tiny_resnet
from repro.nn import CrossEntropyLoss
from repro.optim import SGD
from repro.posit import PositConfig, quantize

EPOCHS = 3


def run_configuration(policy, warmup_epochs, seed=0):
    dataset = SyntheticImageDataset(num_classes=4, num_train=160, num_test=96,
                                    image_size=16, noise_std=0.4,
                                    prototype_smoothness=4, max_shift=1, seed=1)
    train = train_loader(dataset, batch_size=32, seed=seed)
    val = make_test_loader(dataset, batch_size=96)
    model = tiny_resnet(num_classes=4, base_width=8, rng=np.random.default_rng(seed))
    optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9)
    trainer = PositTrainer(model, optimizer, CrossEntropyLoss(), policy=policy,
                           warmup=WarmupSchedule(warmup_epochs))
    history = trainer.fit(train, val, epochs=EPOCHS)
    return history.final_val_accuracy


@pytest.mark.slow
def test_bench_ablation_warmup_and_shifting(benchmark, save_result):
    """Warm-up and shifting ablations under an aggressive 8-bit format."""
    results = {}

    def run_all():
        base = dict(es_forward=1, es_backward=2)
        results["full_recipe"] = run_configuration(
            QuantizationPolicy.uniform(8, **base), warmup_epochs=1)
        results["no_warmup"] = run_configuration(
            QuantizationPolicy.uniform(8, **base), warmup_epochs=0)
        results["no_shifting"] = run_configuration(
            QuantizationPolicy.uniform(8, use_scaling=False, **base), warmup_epochs=1)
        results["no_warmup_no_shifting"] = run_configuration(
            QuantizationPolicy.uniform(8, use_scaling=False, **base), warmup_epochs=0)
        results["fp32_reference"] = run_configuration(None, 0)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    save_result("ablation_warmup_shifting", results)

    # The full recipe should not be worse than stripping both techniques.
    assert results["full_recipe"] >= results["no_warmup_no_shifting"] - 0.05
    # And it should be in the neighbourhood of the FP32 reference.
    assert results["full_recipe"] >= results["fp32_reference"] - 0.2


@pytest.mark.slow
def test_bench_ablation_es_assignment(benchmark, save_result):
    """The §III-B es criterion: es=1 forward / es=2 backward vs uniform choices."""
    results = {}

    def run_all():
        results["paper_es_1_2"] = run_configuration(
            QuantizationPolicy.uniform(8, es_forward=1, es_backward=2), warmup_epochs=1)
        results["uniform_es_0"] = run_configuration(
            QuantizationPolicy.uniform(8, es_forward=0, es_backward=0), warmup_epochs=1)
        results["uniform_es_2"] = run_configuration(
            QuantizationPolicy.uniform(8, es_forward=2, es_backward=2), warmup_epochs=1)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    save_result("ablation_es_assignment", results)
    best = max(results.values())
    # The paper's assignment should be competitive with the best uniform choice.
    assert results["paper_es_1_2"] >= best - 0.15


def test_bench_ablation_sigma_sweep(benchmark, save_result, bench_rng):
    """Sweep the sigma constant of Eq. (2) on a static quantization-error study."""
    weights = bench_rng.standard_normal(20000) * 0.004
    gradients = bench_rng.standard_normal(20000) * 2e-5
    config = PositConfig(8, 1)

    def sweep():
        rows = []
        for sigma in range(0, 5):
            row = {"sigma": sigma}
            for label, tensor in (("weights", weights), ("gradients", gradients)):
                scale = compute_scale_factor(tensor, sigma=sigma)
                quantized = np.asarray(quantize(tensor / scale, config)) * scale
                row[f"sqnr_{label}_db"] = sqnr_db(tensor, quantized)
            rows.append(row)
        return rows

    rows = benchmark(sweep)
    save_result("ablation_sigma_sweep", rows)
    no_shift = sqnr_db(weights, np.asarray(quantize(weights, config)))
    # Every sigma in the sweep beats not shifting at all; sigma=2 (the paper's
    # choice) is within a small margin of the best.
    best = max(row["sqnr_weights_db"] for row in rows)
    sigma2 = next(row for row in rows if row["sigma"] == 2)
    assert all(row["sqnr_weights_db"] > no_shift for row in rows)
    assert sigma2["sqnr_weights_db"] >= best - 6.0


def test_bench_ablation_rounding_modes(benchmark, save_result, bench_rng):
    """Round-to-zero (Algorithm 1) vs round-to-nearest vs stochastic rounding."""
    values = bench_rng.standard_normal(50000) * 0.01
    config = PositConfig(8, 1)
    scale = compute_scale_factor(values)

    def sweep():
        rows = []
        for mode in ("zero", "nearest", "stochastic"):
            rng = np.random.default_rng(0)
            quantized = np.asarray(quantize(values / scale, config, rounding=mode, rng=rng)) * scale
            rows.append({
                "rounding": mode,
                "sqnr_db": sqnr_db(values, quantized),
                "mean_bias": float(np.mean(quantized - values)),
            })
        return rows

    rows = benchmark(sweep)
    save_result("ablation_rounding_modes", rows)
    by_mode = {row["rounding"]: row for row in rows}
    # Nearest rounding is the most accurate; round-to-zero (the paper's
    # hardware-friendly choice) gives up a few dB; stochastic sits in between
    # but is unbiased.
    assert by_mode["nearest"]["sqnr_db"] >= by_mode["zero"]["sqnr_db"]
    assert abs(by_mode["stochastic"]["mean_bias"]) <= abs(by_mode["zero"]["mean_bias"]) + 1e-6
