"""Benchmark of the serving subsystem: throughput, tail latency, batching.

The ROADMAP's north star is a system that serves heavy traffic; this
benchmark closes the loop on the `repro.serve` stack.  A posit(8,1)-trained
MLP is exported to a packed artifact, loaded into an
:class:`~repro.serve.InferenceEngine`, and driven by 64 concurrent
closed-loop clients (:func:`~repro.serve.run_load`) through the in-process
transport.  Recorded per configuration: sustained throughput, client p50/p99
latency, the micro-batcher's realized batch sizes, and the hardware-model
energy per sample — plus the artifact's measured size win over its FP32
state, the §V memory claim on a real checkpoint.

Correctness riders (asserted, not just recorded): the micro-batched
predictions are bit-identical to a direct forward pass, and the no-batching
configuration (max_batch=1) coalesces nothing.
"""

import os

import numpy as np
import pytest

from repro.api import ExperimentConfig
from repro.serve import (
    BatchingConfig,
    InferenceEngine,
    LocalClient,
    run_load,
    train_and_export,
)

CONCURRENCY = 64
REQUESTS_PER_CLIENT = 4


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    """A posit(8,1)-trained MLP exported to a packed artifact (once)."""
    path = tmp_path_factory.mktemp("serve_bench") / "model.rpak"
    config = ExperimentConfig(
        name="serve_bench", dataset="blobs", model="mlp", policy="posit(8,1)",
        epochs=1, train_size=128, test_size=64, batch_size=32, num_classes=3,
        model_kwargs={"hidden": [64, 32]})
    manifest, _history = train_and_export(config, path)
    return str(path), manifest


def _drive(path: str, batching: BatchingConfig, samples: np.ndarray) -> dict:
    """One closed-loop load run against a fresh engine; returns the row."""
    with InferenceEngine(path, batching) as engine:
        client = LocalClient(engine)
        report = run_load(client, samples, concurrency=CONCURRENCY,
                          requests_per_client=REQUESTS_PER_CLIENT)
        stats = engine.stats()
        # Serving must not change the numerics, whatever the batch mix was.
        direct = engine.predict_batch(samples[:8])
        served = np.stack([f.result(10.0)
                           for f in [engine.submit(s) for s in samples[:8]]])
        assert np.array_equal(direct, served)
    assert report["failed"] == 0, report["errors"]
    return {
        "max_batch": batching.max_batch,
        "max_wait_ms": batching.max_wait_ms,
        "concurrency": CONCURRENCY,
        "requests": report["completed"],
        "throughput_rps": report["throughput_rps"],
        "latency_p50_ms": report["latency_p50_ms"],
        "latency_p99_ms": report["latency_p99_ms"],
        "mean_batch_size": stats["mean_batch_size"],
        "max_batch_seen": stats["max_batch_seen"],
        # Unbatched single-sample price (constant per artifact) vs what the
        # realized batching actually cost — the gap IS the batching win.
        "energy_uj_per_sample_unbatched": stats["energy_uj_per_sample"],
        "energy_uj_per_request_observed": stats["energy_uj_per_request_observed"],
    }


def test_bench_serve_throughput(benchmark, save_result, artifact, bench_rng):
    """64 concurrent clients: micro-batching vs no batching, p50/p99/rps."""
    path, manifest = artifact
    samples = bench_rng.normal(size=(CONCURRENCY, 2))

    configurations = [
        BatchingConfig(max_batch=1, max_wait_ms=0.0),      # no coalescing
        BatchingConfig(max_batch=8, max_wait_ms=2.0),
        BatchingConfig(max_batch=CONCURRENCY, max_wait_ms=5.0),
    ]
    rows = [_drive(path, batching, samples) for batching in configurations]

    # Timed region: one full closed-loop load run at the largest batch size.
    benchmark(lambda: _drive(path, configurations[-1], samples))

    artifact_bytes = os.path.getsize(path)
    payload = {
        "artifact_bytes": artifact_bytes,
        "fp32_state_bytes": manifest["fp32_state_nbytes"],
        "size_ratio_vs_fp32": manifest["fp32_state_nbytes"] / artifact_bytes,
        "format": manifest["format"],
        "runs": rows,
    }
    save_result("serve_throughput", payload)

    unbatched, batched = rows[0], rows[-1]
    # The packed artifact realizes the §V memory claim on a real checkpoint.
    assert artifact_bytes < manifest["fp32_state_nbytes"]
    # max_batch=1 must truly disable coalescing ...
    assert unbatched["max_batch_seen"] == 1
    # ... while the wide configuration actually coalesces under load.
    assert batched["mean_batch_size"] > 2.0
    assert batched["requests"] == CONCURRENCY * REQUESTS_PER_CLIENT
    # Coalescing amortizes the packed-weight reads: the observed per-request
    # energy must drop below the unbatched single-sample price.
    assert (batched["energy_uj_per_request_observed"]
            < unbatched["energy_uj_per_request_observed"])
