"""Benchmark of the serving subsystem: throughput, tail latency, batching.

The ROADMAP's north star is a system that serves heavy traffic; this
benchmark closes the loop on the `repro.serve` stack.  A posit(8,1)-trained
MLP is exported to a packed artifact, loaded into an
:class:`~repro.serve.InferenceEngine`, and driven by 64 concurrent
closed-loop clients (:func:`~repro.serve.run_load`) through the in-process
transport.  Recorded per configuration: sustained throughput, client p50/p99
latency, the micro-batcher's realized batch sizes, and the hardware-model
energy per sample — plus the artifact's measured size win over its FP32
state, the §V memory claim on a real checkpoint.

A second axis measures the multi-worker tier: the same 64-way closed loop
against a :class:`~repro.serve.ServeCluster` of 1 and 2 engine *processes*,
recording rps/p50/p99 per worker count so the scale-out win is measured,
not asserted from theory.  On a multi-core runner the 2-worker cluster
must at least double the 1-worker cluster's throughput — both rows pay
the identical dispatch plumbing, so the ratio isolates the thing being
claimed: each worker's MAC throughput is bounded by its own GIL, and
processes are how you buy more of it.  On a single-core runner the rows
are still recorded but the speedup assertion is skipped — there is
nothing to parallelize onto.

Two control-plane axes ride along.  A *controlled* 2-worker cluster runs
the same load with the adaptive controller attached: on a single-core
runner the core-count cap must scale it down to 1 worker and recover a
single worker's throughput — the measured 2-worker regression this module
once recorded is now asserted *fixed*.  An *overload* phase drives 4x the
usual concurrency into a deliberately small admission queue: the excess
must be shed as typed 429-style rejections (zero request failures) while
the queue bound keeps the admitted p99 within 2x the SLO.

A *tracing* axis prices the observability layer: the same closed loop
with the :mod:`repro.obs` tracer off vs sampled on (``sample_rate=0.1``,
the production-shaped setting), best-of-2 runs each to damp shared-runner
noise.  The sampled-on run must stay within 5% of the untraced
throughput — the "negligible overhead enabled" contract, asserted rather
than assumed.

Correctness riders (asserted, not just recorded): the micro-batched
predictions are bit-identical to a direct forward pass, batched and
single-sample cluster predictions are bit-identical across workers, and the
no-batching configuration (max_batch=1) coalesces nothing.
"""

import os
import time

import numpy as np
import pytest

from repro.api import ExperimentConfig
from repro.formats import clear_quantizer_cache, set_kernels_enabled
from repro.obs import TraceConfig
from repro.serve import (
    BatchingConfig,
    ClusterConfig,
    ClusterPlant,
    ControlConfig,
    Controller,
    InferenceEngine,
    LocalClient,
    ServeCluster,
    run_load,
    train_and_export,
)

CONCURRENCY = 64
REQUESTS_PER_CLIENT = 4
WORKER_COUNTS = (1, 2)
#: The p99 objective for the overload phase — generous enough for a shared
#: CI runner; the admission queue, not the SLO, is what bounds the tail.
OVERLOAD_SLO_P99_MS = 250.0


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    """A posit(8,1)-trained MLP exported to a packed artifact (once).

    The hidden layers are sized so one forward pass is real MAC work
    (~2 M multiplies): with a toy model the dispatch plumbing dominates
    and neither the batching rows nor the workers axis measures the thing
    this benchmark exists to measure.
    """
    path = tmp_path_factory.mktemp("serve_bench") / "model.rpak"
    config = ExperimentConfig(
        name="serve_bench", dataset="blobs", model="mlp", policy="posit(8,1)",
        epochs=1, train_size=128, test_size=64, batch_size=32, num_classes=3,
        model_kwargs={"hidden": [2048, 1024]})
    manifest, _history = train_and_export(config, path)
    return str(path), manifest


def _drive(path: str, batching: BatchingConfig, samples: np.ndarray) -> dict:
    """One closed-loop load run against a fresh engine; returns the row."""
    with InferenceEngine(path, batching) as engine:
        client = LocalClient(engine)
        report = run_load(client, samples, concurrency=CONCURRENCY,
                          requests_per_client=REQUESTS_PER_CLIENT)
        stats = engine.stats()
        # Serving must not change the numerics, whatever the batch mix was.
        direct = engine.predict_batch(samples[:8])
        served = np.stack([f.result(10.0)
                           for f in [engine.submit(s) for s in samples[:8]]])
        assert np.array_equal(direct, served)
    assert report["failed"] == 0, report["errors"]
    return {
        "max_batch": batching.max_batch,
        "max_wait_ms": batching.max_wait_ms,
        "concurrency": CONCURRENCY,
        "requests": report["completed"],
        "throughput_rps": report["throughput_rps"],
        "latency_p50_ms": report["latency_p50_ms"],
        "latency_p99_ms": report["latency_p99_ms"],
        "mean_batch_size": stats["mean_batch_size"],
        "max_batch_seen": stats["max_batch_seen"],
        # Unbatched single-sample price (constant per artifact) vs what the
        # realized batching actually cost — the gap IS the batching win.
        "energy_uj_per_sample_unbatched": stats["energy_uj_per_sample"],
        "energy_uj_per_request_observed": stats["energy_uj_per_request_observed"],
        "codec_kernels": stats["codec_kernels"],
    }


def _drive_cluster(path: str, workers: int, samples: np.ndarray) -> dict:
    """One closed-loop load run against a fresh N-worker cluster."""
    batching = BatchingConfig(max_batch=CONCURRENCY, max_wait_ms=5.0)
    with ServeCluster(path, ClusterConfig(workers=workers),
                      batching=batching) as cluster:
        report = run_load(cluster, samples, concurrency=CONCURRENCY,
                          requests_per_client=REQUESTS_PER_CLIENT)
        stats = cluster.stats()
        # Batched and single-sample predictions must be bit-identical on
        # every worker — scaling out must not change the numerics.
        reference = None
        states = cluster.healthz()["worker_states"]
        for index in range(workers):
            if states[index] != "ready":
                continue
            batched = np.asarray(
                cluster.predict_on(index, list(samples[:8]))["logits"])
            single = np.stack([
                np.asarray(cluster.predict_on(index, [sample])["logits"][0])
                for sample in samples[:8]])
            assert np.array_equal(batched, single)
            if reference is None:
                reference = batched
            assert np.array_equal(batched, reference)
    assert report["failed"] == 0, report["errors"]
    if workers > 1:
        # Round-robin must actually spread the load over every worker.
        assert len(report["served_by"]) == workers, report["served_by"]
    return {
        "workers": workers,
        "concurrency": CONCURRENCY,
        "requests": report["completed"],
        "throughput_rps": report["throughput_rps"],
        "latency_p50_ms": report["latency_p50_ms"],
        "latency_p99_ms": report["latency_p99_ms"],
        "mean_batch_size": stats["mean_batch_size"],
        "served_by": report["served_by"],
    }


def _drive_cluster_controlled(path: str, samples: np.ndarray) -> dict:
    """The regression fix, measured: a controlled 2-worker cluster.

    Starts the cluster at 2 workers with the adaptive controller attached
    (fast ticks so the benchmark doesn't wait on production cadence).  On a
    single-core host the core-count cap must scale it down to 1 before the
    load runs — the recorded 2-worker regression (dispatch fan-out with
    nothing to parallelize onto) is exactly what the controller exists to
    undo.  On a multi-core host the cap permits both workers.
    """
    batching = BatchingConfig(max_batch=CONCURRENCY, max_wait_ms=5.0)
    config = ControlConfig(min_workers=1, max_workers=2, interval_s=0.05,
                           slo_p99_ms=OVERLOAD_SLO_P99_MS,
                           tune_wait=False, queue_low=0.0)
    with ServeCluster(path, ClusterConfig(workers=2),
                      batching=batching) as cluster:
        controller = Controller(ClusterPlant(cluster), config)
        with controller:
            # Let the controller observe at least once (the core cap, when
            # it applies, actuates on the first observed tick).
            deadline = time.time() + 10.0
            while controller.ticks == 0 or (
                    cluster.target_workers > controller.worker_cap):
                assert time.time() < deadline, "controller never converged"
                time.sleep(0.05)
            report = run_load(cluster, samples, concurrency=CONCURRENCY,
                              requests_per_client=REQUESTS_PER_CLIENT)
        workers_final = cluster.target_workers
        scale_events = [dict(event, at=None)
                        for event in controller.scale_events]
    assert report["failed"] == 0, report["errors"]
    return {
        "workers_initial": 2,
        "workers_final": workers_final,
        "worker_cap": controller.worker_cap,
        "scale_events": scale_events,
        "concurrency": CONCURRENCY,
        "requests": report["completed"],
        "throughput_rps": report["throughput_rps"],
        "latency_p50_ms": report["latency_p50_ms"],
        "latency_p99_ms": report["latency_p99_ms"],
    }


#: Head-sampling rate for the tracing-overhead axis — the production-shaped
#: setting (trace some requests, not all), and the one the 5% bound covers.
TRACE_SAMPLE_RATE = 0.1


def _measure_tracing_overhead(path: str, samples: np.ndarray) -> dict:
    """The observability tax, measured: tracer off vs sampled on.

    Identical closed-loop load either way; best-of-2 per configuration so
    one noisy run on a shared host doesn't decide the ratio.
    """
    batching = BatchingConfig(max_batch=CONCURRENCY, max_wait_ms=5.0)

    def best_of_two(tracing) -> dict:
        best = None
        for _ in range(2):
            with InferenceEngine(path, batching, tracing=tracing) as engine:
                report = run_load(LocalClient(engine), samples,
                                  concurrency=CONCURRENCY,
                                  requests_per_client=REQUESTS_PER_CLIENT)
                tracer_summary = engine.tracer.summary()
            assert report["failed"] == 0, report["errors"]
            if best is None or report["throughput_rps"] > best["throughput_rps"]:
                best = {
                    "throughput_rps": report["throughput_rps"],
                    "latency_p50_ms": report["latency_p50_ms"],
                    "latency_p99_ms": report["latency_p99_ms"],
                    "spans_recorded": tracer_summary["spans_total"],
                    "traces_recorded": tracer_summary["traces_total"],
                }
        return best

    off = best_of_two(None)
    on = best_of_two(TraceConfig(enabled=True,
                                 sample_rate=TRACE_SAMPLE_RATE))
    return {
        "sample_rate": TRACE_SAMPLE_RATE,
        "off": off,
        "sampled_on": on,
        "throughput_ratio": on["throughput_rps"] / off["throughput_rps"],
    }


def _drive_overload(path: str, samples: np.ndarray) -> dict:
    """A 4x overload burst against a deliberately small admission queue.

    256 closed-loop clients against capacity for ~2 coalesced batches: the
    bounded queue must shed the excess as typed rejections (never request
    failures) while the queue bound keeps the admitted tail flat — the
    latency/shedding trade the control plane makes explicit.
    """
    batching = BatchingConfig(max_batch=CONCURRENCY, max_wait_ms=5.0,
                              queue_size=2 * CONCURRENCY)
    with InferenceEngine(path, batching) as engine:
        client = LocalClient(engine)
        report = run_load(client, samples, concurrency=4 * CONCURRENCY,
                          requests_per_client=2, retry_after_cap_s=0.05)
        stats = engine.stats()
    assert report["failed"] == 0, report["errors"]
    return {
        "concurrency": 4 * CONCURRENCY,
        "queue_size": batching.queue_size,
        "slo_p99_ms": OVERLOAD_SLO_P99_MS,
        "requests_offered": report["requests_total"],
        "completed": report["completed"],
        "rejected": report["rejected"],
        "throughput_rps": report["throughput_rps"],
        "latency_p50_ms": report["latency_p50_ms"],
        "latency_p99_ms": report["latency_p99_ms"],
        "engine_rejected": stats["rejected"],
    }


def test_bench_serve_throughput(benchmark, save_result, artifact, bench_rng):
    """64 concurrent clients: micro-batching vs no batching, p50/p99/rps."""
    path, manifest = artifact
    samples = bench_rng.normal(size=(CONCURRENCY, 2))

    configurations = [
        BatchingConfig(max_batch=1, max_wait_ms=0.0),      # no coalescing
        BatchingConfig(max_batch=8, max_wait_ms=2.0),
        BatchingConfig(max_batch=CONCURRENCY, max_wait_ms=5.0),
    ]
    rows = [_drive(path, batching, samples) for batching in configurations]

    # Timed region: one full closed-loop load run at the largest batch size.
    benchmark(lambda: _drive(path, configurations[-1], samples))

    # The codec-kernels axis: the same batched load with the LUT kernels on
    # (the shipping default — artifact weight decode goes through
    # from_bits) vs forced back onto the scalar path.  Before/after rps is
    # recorded, not asserted: a ~2M-MAC forward pass dominates the decoded-
    # weight cache hit path, so the codec win shows up in load/decode, not
    # in steady-state rps, and a throughput assertion here would only
    # measure runner noise.
    kernels_on_row = _drive(path, configurations[-1], samples)
    previous_kernels = set_kernels_enabled(False)
    clear_quantizer_cache()
    try:
        kernels_off_row = _drive(path, configurations[-1], samples)
    finally:
        set_kernels_enabled(previous_kernels)
        clear_quantizer_cache()

    # The multi-worker axis: identical load, 1 vs 2 engine processes.
    worker_rows = [_drive_cluster(path, workers, samples)
                   for workers in WORKER_COUNTS]

    # The control plane: an autoscaled 2-worker cluster, and a 4x overload
    # burst shed by the bounded admission queue.
    controlled_row = _drive_cluster_controlled(path, samples)
    overload_row = _drive_overload(path, samples)

    # The observability tax: tracer off vs sampled on, best-of-2 each.
    tracing_row = _measure_tracing_overhead(path, samples)

    artifact_bytes = os.path.getsize(path)
    payload = {
        "artifact_bytes": artifact_bytes,
        "fp32_state_bytes": manifest["fp32_state_nbytes"],
        "size_ratio_vs_fp32": manifest["fp32_state_nbytes"] / artifact_bytes,
        "format": manifest["format"],
        "cpu_count": os.cpu_count(),
        "runs": rows,
        "codec_kernel_runs": {
            "on": kernels_on_row,
            "off": kernels_off_row,
            "rps_ratio_on_vs_off": (kernels_on_row["throughput_rps"]
                                    / kernels_off_row["throughput_rps"]),
        },
        "worker_runs": worker_rows,
        "controlled_run": controlled_row,
        "overload_run": overload_row,
        "tracing_overhead": tracing_row,
    }
    save_result("serve_throughput", payload)

    # Tracing must be cheap enough to leave on: sampled-on throughput
    # within 15% of the untraced engine (and the sampler actually sampled —
    # a 0-span run would make the bound vacuous).  The bound was 5% when
    # the scalar codec dominated each request (~1300 rps); the codec
    # kernels tripled untraced throughput, so the tracer's fixed per-span
    # cost is now a visibly larger fraction (observed ratios 0.93-1.08).
    assert tracing_row["sampled_on"]["spans_recorded"] > 0, tracing_row
    assert tracing_row["throughput_ratio"] >= 0.85, tracing_row

    # The stats payload must report which codec path served each run, and
    # both paths must complete the full load (numerics equality per request
    # is asserted inside _drive on both runs).
    assert kernels_on_row["codec_kernels"] is True, kernels_on_row
    assert kernels_off_row["codec_kernels"] is False, kernels_off_row
    assert kernels_on_row["requests"] == CONCURRENCY * REQUESTS_PER_CLIENT
    assert kernels_off_row["requests"] == CONCURRENCY * REQUESTS_PER_CLIENT

    single_worker, multi_worker = worker_rows[0], worker_rows[-1]
    assert multi_worker["requests"] == CONCURRENCY * REQUESTS_PER_CLIENT
    if (os.cpu_count() or 1) >= 2:
        # The scale-out claim, measured: two engine worker processes must
        # at least double one worker process's throughput at 64-way
        # concurrency (both rows pay the same dispatch plumbing, so the
        # ratio isolates pure MAC scale-out — each worker's GIL-bound
        # compute thread is the bottleneck).  Meaningless on one core,
        # where all processes time-slice the same silicon.
        assert (multi_worker["throughput_rps"]
                >= 2.0 * single_worker["throughput_rps"]), worker_rows

    if (os.cpu_count() or 1) == 1:
        # The recorded regression, fixed: on one core the controller must
        # scale the 2-worker cluster down to 1, and the controlled cluster
        # must serve at least ~a single worker's throughput — never the
        # static 2-worker penalty (measured at ~0.60x single on one core).
        # The bound is 0.70x: the codec kernels cut per-request cost enough
        # that the scale-down transient is now a visibly larger slice of
        # the (shorter) run, with observed recovery ratios of 0.82-0.97.
        assert controlled_row["workers_final"] == 1, controlled_row
        assert any(event["reason"] == "over-core-cap"
                   for event in controlled_row["scale_events"]), controlled_row
        assert (controlled_row["throughput_rps"]
                >= 0.70 * single_worker["throughput_rps"]), (
            controlled_row, single_worker)

    # Overload must be shed, not suffered: every offered request either
    # completes or is rejected with a retry hint (zero failures is asserted
    # inside _drive_overload), and the bounded queue keeps the admitted
    # tail within 2x the SLO even at 4x concurrency.
    assert (overload_row["completed"] + overload_row["rejected"]
            == overload_row["requests_offered"]), overload_row
    assert overload_row["latency_p99_ms"] <= 2.0 * OVERLOAD_SLO_P99_MS, (
        overload_row)

    unbatched, batched = rows[0], rows[-1]
    # The packed artifact realizes the §V memory claim on a real checkpoint.
    assert artifact_bytes < manifest["fp32_state_nbytes"]
    # max_batch=1 must truly disable coalescing ...
    assert unbatched["max_batch_seen"] == 1
    # ... while the wide configuration actually coalesces under load.
    assert batched["mean_batch_size"] > 2.0
    assert batched["requests"] == CONCURRENCY * REQUESTS_PER_CLIENT
    # Coalescing amortizes the packed-weight reads: the observed per-request
    # energy must drop below the unbatched single-sample price.
    assert (batched["energy_uj_per_request_observed"]
            < unbatched["energy_uj_per_request_observed"])
