"""Benchmark of the serving subsystem: throughput, tail latency, batching.

The ROADMAP's north star is a system that serves heavy traffic; this
benchmark closes the loop on the `repro.serve` stack.  A posit(8,1)-trained
MLP is exported to a packed artifact, loaded into an
:class:`~repro.serve.InferenceEngine`, and driven by 64 concurrent
closed-loop clients (:func:`~repro.serve.run_load`) through the in-process
transport.  Recorded per configuration: sustained throughput, client p50/p99
latency, the micro-batcher's realized batch sizes, and the hardware-model
energy per sample — plus the artifact's measured size win over its FP32
state, the §V memory claim on a real checkpoint.

A second axis measures the multi-worker tier: the same 64-way closed loop
against a :class:`~repro.serve.ServeCluster` of 1 and 2 engine *processes*,
recording rps/p50/p99 per worker count so the scale-out win is measured,
not asserted from theory.  On a multi-core runner the 2-worker cluster
must at least double the 1-worker cluster's throughput — both rows pay
the identical dispatch plumbing, so the ratio isolates the thing being
claimed: each worker's MAC throughput is bounded by its own GIL, and
processes are how you buy more of it.  On a single-core runner the rows
are still recorded but the speedup assertion is skipped — there is
nothing to parallelize onto.

Correctness riders (asserted, not just recorded): the micro-batched
predictions are bit-identical to a direct forward pass, batched and
single-sample cluster predictions are bit-identical across workers, and the
no-batching configuration (max_batch=1) coalesces nothing.
"""

import os

import numpy as np
import pytest

from repro.api import ExperimentConfig
from repro.serve import (
    BatchingConfig,
    ClusterConfig,
    InferenceEngine,
    LocalClient,
    ServeCluster,
    run_load,
    train_and_export,
)

CONCURRENCY = 64
REQUESTS_PER_CLIENT = 4
WORKER_COUNTS = (1, 2)


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    """A posit(8,1)-trained MLP exported to a packed artifact (once).

    The hidden layers are sized so one forward pass is real MAC work
    (~2 M multiplies): with a toy model the dispatch plumbing dominates
    and neither the batching rows nor the workers axis measures the thing
    this benchmark exists to measure.
    """
    path = tmp_path_factory.mktemp("serve_bench") / "model.rpak"
    config = ExperimentConfig(
        name="serve_bench", dataset="blobs", model="mlp", policy="posit(8,1)",
        epochs=1, train_size=128, test_size=64, batch_size=32, num_classes=3,
        model_kwargs={"hidden": [2048, 1024]})
    manifest, _history = train_and_export(config, path)
    return str(path), manifest


def _drive(path: str, batching: BatchingConfig, samples: np.ndarray) -> dict:
    """One closed-loop load run against a fresh engine; returns the row."""
    with InferenceEngine(path, batching) as engine:
        client = LocalClient(engine)
        report = run_load(client, samples, concurrency=CONCURRENCY,
                          requests_per_client=REQUESTS_PER_CLIENT)
        stats = engine.stats()
        # Serving must not change the numerics, whatever the batch mix was.
        direct = engine.predict_batch(samples[:8])
        served = np.stack([f.result(10.0)
                           for f in [engine.submit(s) for s in samples[:8]]])
        assert np.array_equal(direct, served)
    assert report["failed"] == 0, report["errors"]
    return {
        "max_batch": batching.max_batch,
        "max_wait_ms": batching.max_wait_ms,
        "concurrency": CONCURRENCY,
        "requests": report["completed"],
        "throughput_rps": report["throughput_rps"],
        "latency_p50_ms": report["latency_p50_ms"],
        "latency_p99_ms": report["latency_p99_ms"],
        "mean_batch_size": stats["mean_batch_size"],
        "max_batch_seen": stats["max_batch_seen"],
        # Unbatched single-sample price (constant per artifact) vs what the
        # realized batching actually cost — the gap IS the batching win.
        "energy_uj_per_sample_unbatched": stats["energy_uj_per_sample"],
        "energy_uj_per_request_observed": stats["energy_uj_per_request_observed"],
    }


def _drive_cluster(path: str, workers: int, samples: np.ndarray) -> dict:
    """One closed-loop load run against a fresh N-worker cluster."""
    batching = BatchingConfig(max_batch=CONCURRENCY, max_wait_ms=5.0)
    with ServeCluster(path, ClusterConfig(workers=workers),
                      batching=batching) as cluster:
        report = run_load(cluster, samples, concurrency=CONCURRENCY,
                          requests_per_client=REQUESTS_PER_CLIENT)
        stats = cluster.stats()
        # Batched and single-sample predictions must be bit-identical on
        # every worker — scaling out must not change the numerics.
        reference = None
        states = cluster.healthz()["worker_states"]
        for index in range(workers):
            if states[index] != "ready":
                continue
            batched = np.asarray(
                cluster.predict_on(index, list(samples[:8]))["logits"])
            single = np.stack([
                np.asarray(cluster.predict_on(index, [sample])["logits"][0])
                for sample in samples[:8]])
            assert np.array_equal(batched, single)
            if reference is None:
                reference = batched
            assert np.array_equal(batched, reference)
    assert report["failed"] == 0, report["errors"]
    if workers > 1:
        # Round-robin must actually spread the load over every worker.
        assert len(report["served_by"]) == workers, report["served_by"]
    return {
        "workers": workers,
        "concurrency": CONCURRENCY,
        "requests": report["completed"],
        "throughput_rps": report["throughput_rps"],
        "latency_p50_ms": report["latency_p50_ms"],
        "latency_p99_ms": report["latency_p99_ms"],
        "mean_batch_size": stats["mean_batch_size"],
        "served_by": report["served_by"],
    }


def test_bench_serve_throughput(benchmark, save_result, artifact, bench_rng):
    """64 concurrent clients: micro-batching vs no batching, p50/p99/rps."""
    path, manifest = artifact
    samples = bench_rng.normal(size=(CONCURRENCY, 2))

    configurations = [
        BatchingConfig(max_batch=1, max_wait_ms=0.0),      # no coalescing
        BatchingConfig(max_batch=8, max_wait_ms=2.0),
        BatchingConfig(max_batch=CONCURRENCY, max_wait_ms=5.0),
    ]
    rows = [_drive(path, batching, samples) for batching in configurations]

    # Timed region: one full closed-loop load run at the largest batch size.
    benchmark(lambda: _drive(path, configurations[-1], samples))

    # The multi-worker axis: identical load, 1 vs 2 engine processes.
    worker_rows = [_drive_cluster(path, workers, samples)
                   for workers in WORKER_COUNTS]

    artifact_bytes = os.path.getsize(path)
    payload = {
        "artifact_bytes": artifact_bytes,
        "fp32_state_bytes": manifest["fp32_state_nbytes"],
        "size_ratio_vs_fp32": manifest["fp32_state_nbytes"] / artifact_bytes,
        "format": manifest["format"],
        "cpu_count": os.cpu_count(),
        "runs": rows,
        "worker_runs": worker_rows,
    }
    save_result("serve_throughput", payload)

    single_worker, multi_worker = worker_rows[0], worker_rows[-1]
    assert multi_worker["requests"] == CONCURRENCY * REQUESTS_PER_CLIENT
    if (os.cpu_count() or 1) >= 2:
        # The scale-out claim, measured: two engine worker processes must
        # at least double one worker process's throughput at 64-way
        # concurrency (both rows pay the same dispatch plumbing, so the
        # ratio isolates pure MAC scale-out — each worker's GIL-bound
        # compute thread is the bottleneck).  Meaningless on one core,
        # where all processes time-slice the same silicon.
        assert (multi_worker["throughput_rps"]
                >= 2.0 * single_worker["throughput_rps"]), worker_rows

    unbatched, batched = rows[0], rows[-1]
    # The packed artifact realizes the §V memory claim on a real checkpoint.
    assert artifact_bytes < manifest["fp32_state_nbytes"]
    # max_batch=1 must truly disable coalescing ...
    assert unbatched["max_batch_seen"] == 1
    # ... while the wide configuration actually coalesces under load.
    assert batched["mean_batch_size"] > 2.0
    assert batched["requests"] == CONCURRENCY * REQUESTS_PER_CLIENT
    # Coalescing amortizes the packed-weight reads: the observed per-request
    # energy must drop below the unbatched single-sample price.
    assert (batched["energy_uj_per_request_observed"]
            < unbatched["energy_uj_per_request_observed"])
