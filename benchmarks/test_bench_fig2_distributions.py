"""Benchmark / regeneration of Fig. 2: CONV vs BN weight distributions.

Fig. 2 shows that during training the first CONV layer's weight distribution
stays essentially fixed while BN weight distributions change sharply over the
first epochs (a consequence of the all-ones BN initialization).  That is the
paper's justification for the FP32 warm-up phase.

The benchmark trains a small Cifar-stem ResNet in FP32 for a few epochs,
records both distributions every epoch, and asserts the qualitative shape:
the BN shift dominates the CONV shift.  Histogram summaries are saved for
EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro.analysis import DistributionRecorder, bn_shift_magnitude
from repro.core import PositTrainer
from repro.data import cifar_like, train_loader
from repro.models import ResNet
from repro.nn import CrossEntropyLoss
from repro.optim import SGD


@pytest.mark.slow
def test_bench_fig2_conv_vs_bn_distributions(benchmark, save_result):
    recorder = DistributionRecorder(keep_histograms=True, bins=30)

    def train_and_record():
        dataset = cifar_like(num_train=192, num_test=64, noise_std=0.5, seed=1)
        train = train_loader(dataset, batch_size=32, seed=0)
        model = ResNet(stage_blocks=(1, 1), num_classes=10, base_width=8, stem="cifar",
                       rng=np.random.default_rng(0))
        trainer = PositTrainer(model, SGD(model.parameters(), lr=0.05, momentum=0.9),
                               CrossEntropyLoss(), epoch_callbacks=[recorder])
        recorder.record_model(model, epoch=-1)
        trainer.fit(train, epochs=3)
        return trainer

    benchmark.pedantic(train_and_record, rounds=1, iterations=1)

    report = recorder.report()
    shifts = bn_shift_magnitude(recorder)
    conv_name = next(name for name in shifts if "conv1" in name)
    bn_name = next(name for name in shifts if "bn1" in name)

    save_result("fig2_distributions", {
        "per_parameter": report,
        "shift_magnitudes": shifts,
        "epoch_stds": {name: snap.stds for name, snap in recorder.snapshots.items()},
        "epoch_means": {name: snap.means for name, snap in recorder.snapshots.items()},
    })

    # The Fig. 2 observation: the BN distribution moves much more than the CONV one.
    assert shifts[bn_name] > shifts[conv_name]
    # And the conv distribution stays close to its initialization shape.
    conv_snapshot = recorder.snapshots[conv_name]
    assert abs(conv_snapshot.stds[-1] - conv_snapshot.stds[0]) / conv_snapshot.stds[0] < 0.5
