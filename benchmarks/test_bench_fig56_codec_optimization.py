"""Benchmark / regeneration of the Fig. 4-6 claims about the codec critical path.

The paper motivates its decoder/encoder redesign with the observation that in
the original posit MAC of [6] "the summation of the encoder delay and decoder
delay consumes about 40% time of the total posit MAC delay", and that the
optimization removes the +1 adder from both critical paths (Figs. 5-6) at the
cost of a duplicated shifter.
"""

from repro.hardware import PositDecoder, PositEncoder, PositMAC, codec_optimization_report
from repro.posit import PositConfig

FORMATS = [PositConfig(8, 1), PositConfig(8, 2), PositConfig(16, 1), PositConfig(16, 2)]


def test_bench_fig4_codec_fraction(benchmark, save_result):
    """The codec share of the original MAC delay sits near the paper's ~40 %."""
    rows = benchmark.pedantic(codec_optimization_report, rounds=3, iterations=1)
    save_result("fig4_codec_fraction", rows)
    for row in rows:
        assert 0.30 <= row["original_codec_fraction"] <= 0.55, row
        assert row["optimized_codec_fraction"] < row["original_codec_fraction"], row
        assert row["optimized_mac_delay_ns"] < row["original_mac_delay_ns"], row


def test_bench_fig5_decoder_optimization(benchmark, save_result):
    """Fig. 5: the optimized decoder is faster but larger (duplicated shifter)."""
    def build_rows():
        rows = []
        for config in FORMATS:
            original = PositDecoder(config, optimized=False).cost()
            optimized = PositDecoder(config, optimized=True).cost()
            rows.append({
                "format": str(config),
                "original_delay_levels": original.delay_levels,
                "optimized_delay_levels": optimized.delay_levels,
                "original_area_ge": original.area_ge,
                "optimized_area_ge": optimized.area_ge,
            })
        return rows

    rows = benchmark(build_rows)
    save_result("fig5_decoder_optimization", rows)
    for row in rows:
        assert row["optimized_delay_levels"] < row["original_delay_levels"]
        assert row["optimized_area_ge"] > row["original_area_ge"]


def test_bench_fig6_encoder_optimization(benchmark, save_result):
    """Fig. 6: the optimized encoder mirrors the decoder optimization."""
    def build_rows():
        rows = []
        for config in FORMATS:
            original = PositEncoder(config, optimized=False).cost()
            optimized = PositEncoder(config, optimized=True).cost()
            rows.append({
                "format": str(config),
                "original_delay_levels": original.delay_levels,
                "optimized_delay_levels": optimized.delay_levels,
                "original_area_ge": original.area_ge,
                "optimized_area_ge": optimized.area_ge,
            })
        return rows

    rows = benchmark(build_rows)
    save_result("fig6_encoder_optimization", rows)
    for row in rows:
        assert row["optimized_delay_levels"] < row["original_delay_levels"]
        assert row["optimized_area_ge"] > row["original_area_ge"]


def test_bench_functional_equivalence_of_optimization(benchmark, bench_rng):
    """The optimized codec must not change a single MAC result (pure structure)."""
    cfg = PositConfig(8, 2)
    original = PositMAC(cfg, optimized_codec=False)
    optimized = PositMAC(cfg, optimized_codec=True)
    codes = bench_rng.integers(0, cfg.code_count, size=(100, 3))

    def compare_all():
        mismatches = 0
        for a, b, c in codes:
            if original.mac(int(a), int(b), int(c)) != optimized.mac(int(a), int(b), int(c)):
                mismatches += 1
        return mismatches

    assert benchmark(compare_all) == 0
