"""Benchmark / regeneration of the §IV/§V memory and communication claims.

The paper: "By using 8 bits or 16 bits posit number for training, the model
size can be reduced to 25% or 50%", and "the overhead caused by data
communications can be saved by 2-4x".  This benchmark evaluates both claims
for the actual ResNet-18 models of Table III under the paper's two policies.
"""

import numpy as np

from repro.core import QuantizationPolicy
from repro.hardware import communication_saving, model_size_bytes
from repro.models import cifar_resnet18, resnet18


def test_bench_model_size_reduction(benchmark, save_result):
    """Model size: 8-bit posit -> 25 %, 16-bit posit -> 50 % of FP32."""
    model = cifar_resnet18(base_width=16, rng=np.random.default_rng(0))

    def build_report():
        fp32 = model_size_bytes(model, None)
        rows = []
        for name, policy in (("posit-8bit", QuantizationPolicy.uniform(8)),
                             ("posit-16bit", QuantizationPolicy.imagenet_paper()),
                             ("cifar-mixed", QuantizationPolicy.cifar_paper())):
            quantized = model_size_bytes(model, policy)
            rows.append({
                "policy": name,
                "fp32_bytes": fp32.parameter_bytes,
                "quantized_bytes": quantized.parameter_bytes,
                "fraction_of_fp32": quantized.parameter_bytes / fp32.parameter_bytes,
            })
        return rows

    rows = benchmark(build_report)
    save_result("section5_model_size", rows)
    by_policy = {row["policy"]: row for row in rows}
    assert abs(by_policy["posit-8bit"]["fraction_of_fp32"] - 0.25) < 0.02
    assert abs(by_policy["posit-16bit"]["fraction_of_fp32"] - 0.50) < 0.02
    # The mixed Cifar policy lands between the two pure settings.
    assert 0.25 < by_policy["cifar-mixed"]["fraction_of_fp32"] < 0.50


def test_bench_communication_saving(benchmark, save_result):
    """Per-training-step traffic saved by 2-4x under the paper's policies."""
    model = cifar_resnet18(base_width=16, rng=np.random.default_rng(0))

    def build_report():
        results = {}
        for name, policy in (("cifar_policy", QuantizationPolicy.cifar_paper()),
                             ("imagenet_policy", QuantizationPolicy.imagenet_paper()),
                             ("uniform_8bit", QuantizationPolicy.uniform(8))):
            results[name] = communication_saving(model, policy, batch_size=32)
        return results

    results = benchmark.pedantic(build_report, rounds=2, iterations=1)
    save_result("section5_communication_saving", results)
    for name, saving in results.items():
        assert 2.0 <= saving["traffic_ratio"] <= 4.2, (name, saving["traffic_ratio"])
        assert 2.0 <= saving["model_size_ratio"] <= 4.2, name


def test_bench_imagenet_resnet18_footprint(benchmark, save_result):
    """Absolute footprint of the ImageNet ResNet-18 (the paper's other model)."""
    model = resnet18(base_width=32, rng=np.random.default_rng(0))

    def report():
        fp32 = model_size_bytes(model, None).parameter_bytes
        posit16 = model_size_bytes(model, QuantizationPolicy.imagenet_paper()).parameter_bytes
        return {"fp32_mbytes": fp32 / 1e6, "posit16_mbytes": posit16 / 1e6,
                "ratio": fp32 / posit16}

    result = benchmark(report)
    save_result("section5_resnet18_footprint", result)
    assert abs(result["ratio"] - 2.0) < 0.05
