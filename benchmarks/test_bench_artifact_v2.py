"""Benchmark of the artifact-v2 deployment claims: mixed-precision size
and streaming-load memory.

Two measurable promises ride on the v2 layout:

* **per-tensor packing** — exporting the paper's Table III mixed assignment
  (posit(8,1) CONV next to posit(16,1) BN, via
  ``QuantizationPolicy.export_formats``) lands between the pure 8-bit and
  pure 16-bit artifact sizes, instead of paying the widest format
  everywhere;
* **streaming loads** — ``load_state`` of a v2 artifact peaks at the
  decoded state plus one segment's scratch, where the v1 monolithic reader
  additionally holds the entire packed blob.

Rows land in ``benchmarks/results/artifact_v2.json``.
"""

import tracemalloc

import numpy as np

from repro.core import QuantizationPolicy
from repro.models import cifar_resnet18
from repro.serve import default_export_format_map, load_state, save_model


def _load_peak_extra(path) -> dict:
    tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        state, manifest = load_state(path)
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    decoded = sum(array.nbytes for array in state.values())
    return {"peak_bytes": peak, "decoded_bytes": decoded,
            "extra_bytes": peak - decoded,
            "blob_bytes": manifest["blob_nbytes"]}


def test_bench_mixed_precision_artifact_size(benchmark, save_result,
                                             tmp_path):
    """Mixed cifar_paper export sizes between pure 8- and 16-bit artifacts."""
    model = cifar_resnet18(base_width=16, rng=np.random.default_rng(0))
    mixed_map = default_export_format_map(QuantizationPolicy.cifar_paper(),
                                          model)

    def export_all():
        rows = []
        for name, fmt, format_map in (
                ("posit-8bit", "posit(8,1)", None),
                ("posit-16bit", "posit(16,1)", None),
                ("cifar-mixed", "posit(8,1)", mixed_map)):
            manifest = save_model(model, tmp_path / f"{name}.rpak", fmt=fmt,
                                  format_map=format_map)
            rows.append({
                "artifact": name,
                "blob_bytes": manifest["blob_nbytes"],
                "fp32_bytes": manifest["fp32_state_nbytes"],
                "fraction_of_fp32": (manifest["blob_nbytes"]
                                     / manifest["fp32_state_nbytes"]),
                "formats": sorted({t["format"] for t in manifest["tensors"]
                                   if t["kind"] == "param"}),
            })
        return rows

    rows = benchmark.pedantic(export_all, rounds=1, iterations=1)
    save_result("artifact_v2_sizes", rows)
    by_name = {row["artifact"]: row for row in rows}
    assert len(by_name["cifar-mixed"]["formats"]) == 2
    assert (by_name["posit-8bit"]["blob_bytes"]
            < by_name["cifar-mixed"]["blob_bytes"]
            < by_name["posit-16bit"]["blob_bytes"])


def test_bench_streaming_load_memory(benchmark, save_result, tmp_path):
    """v2 streaming load vs the v1 monolithic read of the same weights."""
    model = cifar_resnet18(base_width=16, rng=np.random.default_rng(0))
    v1 = tmp_path / "model_v1.rpak"
    v2 = tmp_path / "model_v2.rpak"
    save_model(model, v1, fmt="posit(8,1)", version=1)
    manifest = save_model(model, v2, fmt="posit(8,1)")
    largest_segment = max(t["nbytes"] for t in manifest["tensors"])

    def measure():
        return {"v1": _load_peak_extra(v1), "v2": _load_peak_extra(v2)}

    report = benchmark.pedantic(measure, rounds=1, iterations=1)
    report["largest_segment_bytes"] = largest_segment
    report["blob_residency_saved_bytes"] = (report["v1"]["extra_bytes"]
                                            - report["v2"]["extra_bytes"])
    save_result("artifact_v2_streaming_load", report)
    # v1 necessarily holds the whole blob on top of the decoded state.
    assert report["v1"]["extra_bytes"] >= report["v1"]["blob_bytes"]
    # v2 never does: the saving between the readers is the blob itself
    # (what remains in both is the per-segment posit decode scratch, which
    # scales with the largest tensor, not with the file).
    assert (report["blob_residency_saved_bytes"]
            >= 0.8 * report["v1"]["blob_bytes"])
