"""Shared pytest fixtures for the reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.posit import PositConfig


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for test data."""
    return np.random.default_rng(12345)


@pytest.fixture(params=[(8, 0), (8, 1), (8, 2), (16, 1), (16, 2)],
                ids=lambda p: f"posit({p[0]},{p[1]})")
def paper_config(request) -> PositConfig:
    """Each posit format used in the paper's experiments."""
    n, es = request.param
    return PositConfig(n, es)


@pytest.fixture
def small_config() -> PositConfig:
    """A tiny format for exhaustive enumeration tests."""
    return PositConfig(6, 1)


def numerical_gradient(func, array: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference numerical gradient of ``func()`` w.r.t. ``array`` (in place)."""
    grad = np.zeros_like(array)
    iterator = np.nditer(array, flags=["multi_index"])
    for _ in iterator:
        index = iterator.multi_index
        original = array[index]
        array[index] = original + eps
        upper = func()
        array[index] = original - eps
        lower = func()
        array[index] = original
        grad[index] = (upper - lower) / (2 * eps)
    return grad


@pytest.fixture
def numgrad():
    """Expose the numerical gradient helper as a fixture."""
    return numerical_gradient
