"""Tests for the Module/Parameter system."""

import numpy as np
import pytest

from repro.nn import BatchNorm2d, Conv2d, Linear, Module, Parameter, ReLU, Sequential
from repro.tensor import Tensor


class TinyNet(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 8, rng=np.random.default_rng(0))
        self.act = ReLU()
        self.fc2 = Linear(8, 2, rng=np.random.default_rng(1))

    def forward(self, x):
        return self.fc2(self.act(self.fc1(x)))


class TestRegistration:
    def test_parameters_registered_automatically(self):
        net = TinyNet()
        names = [name for name, _ in net.named_parameters()]
        assert "fc1.weight" in names and "fc2.bias" in names
        assert len(net.parameters()) == 4

    def test_parameter_is_tensor_with_grad(self):
        param = Parameter(np.zeros(3))
        assert isinstance(param, Tensor)
        assert param.requires_grad

    def test_named_modules_includes_children(self):
        net = TinyNet()
        names = [name for name, _ in net.named_modules()]
        assert "" in names and "fc1" in names and "act" in names

    def test_num_parameters(self):
        net = TinyNet()
        assert net.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_buffers_registered(self):
        bn = BatchNorm2d(3)
        buffer_names = [name for name, _ in bn.named_buffers()]
        assert set(buffer_names) == {"running_mean", "running_var"}

    def test_quant_attribute_defaults_to_none(self):
        assert Linear(2, 2).quant is None


class TestTrainEvalMode:
    def test_recursive_mode_switch(self):
        net = Sequential(Linear(2, 2), BatchNorm2d(2))
        net.eval()
        assert all(not module.training for module in net.modules())
        net.train()
        assert all(module.training for module in net.modules())

    def test_zero_grad_clears_all(self):
        net = TinyNet()
        out = net(Tensor(np.ones((2, 4))))
        out.sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())


class TestStateDict:
    def test_roundtrip(self):
        net1 = TinyNet()
        net2 = TinyNet()
        state = net1.state_dict()
        net2.load_state_dict(state)
        for p1, p2 in zip(net1.parameters(), net2.parameters()):
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_state_dict_copies_data(self):
        net = TinyNet()
        state = net.state_dict()
        state["fc1.weight"][...] = 99.0
        assert not np.any(net.fc1.weight.data == 99.0)

    def test_missing_key_rejected(self):
        net = TinyNet()
        state = net.state_dict()
        del state["fc1.weight"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_unexpected_key_rejected(self):
        net = TinyNet()
        state = net.state_dict()
        state["bogus"] = np.zeros(3)
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_shape_mismatch_rejected(self):
        net = TinyNet()
        state = net.state_dict()
        state["fc1.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_includes_buffers(self):
        bn = BatchNorm2d(3)
        state = bn.state_dict()
        assert "running_mean" in state and "running_var" in state

    def test_buffer_roundtrip_preserves_running_stats(self, rng):
        bn1 = BatchNorm2d(2)
        x = Tensor(rng.standard_normal((4, 2, 3, 3)) + 3)
        bn1(x)  # updates running stats
        bn2 = BatchNorm2d(2)
        bn2.load_state_dict(bn1.state_dict())
        np.testing.assert_array_equal(bn1.running_mean, bn2.running_mean)


class TestForwardContract:
    def test_base_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)

    def test_call_invokes_forward(self):
        net = TinyNet()
        out = net(Tensor(np.ones((3, 4))))
        assert out.shape == (3, 2)
