"""Tests for loss modules and the loss scaler."""

import numpy as np
import pytest

from repro.nn import CrossEntropyLoss, Linear, LossScaler, MSELoss
from repro.tensor import Tensor


class TestCrossEntropyLoss:
    def test_matches_functional(self, rng):
        logits = rng.standard_normal((4, 3))
        labels = np.array([0, 1, 2, 0])
        loss = CrossEntropyLoss()(Tensor(logits), labels)
        assert loss.item() == pytest.approx(
            -np.mean(np.log(np.exp(logits)[np.arange(4), labels] / np.exp(logits).sum(1)))
        )

    def test_invalid_smoothing_rejected(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss(label_smoothing=1.5)


class TestMSELoss:
    def test_value(self):
        loss = MSELoss()(Tensor(np.array([1.0, 3.0])), np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(5.0)


class TestLossScaler:
    def test_scales_loss(self):
        scaler = LossScaler(scale=512.0)
        loss = Tensor(np.array(2.0), requires_grad=True)
        assert scaler.scale_loss(loss).item() == pytest.approx(1024.0)

    def test_unscales_gradients(self, rng):
        scaler = LossScaler(scale=16.0)
        layer = Linear(3, 2, rng=rng)
        out = layer(Tensor(rng.standard_normal((4, 3))))
        scaler.scale_loss(out.sum()).backward()
        scaled_grad = layer.weight.grad.copy()
        assert scaler.unscale_gradients(layer.parameters())
        np.testing.assert_allclose(layer.weight.grad, scaled_grad / 16.0)

    def test_detects_nonfinite_gradients(self, rng):
        scaler = LossScaler(scale=2.0)
        layer = Linear(2, 2, rng=rng)
        layer.weight.grad = np.array([[np.inf, 0.0], [0.0, 0.0]])
        layer.bias.grad = np.zeros(2)
        assert not scaler.unscale_gradients(layer.parameters())

    def test_dynamic_growth_and_backoff(self):
        scaler = LossScaler(scale=8.0, dynamic=True, growth_interval=2)
        param = Linear(2, 2).weight
        param.grad = np.ones((2, 2))
        scaler.unscale_gradients([param])
        param.grad = np.ones((2, 2))
        scaler.unscale_gradients([param])
        assert scaler.scale == 16.0  # doubled after two good steps
        param.grad = np.full((2, 2), np.nan)
        scaler.unscale_gradients([param])
        assert scaler.scale == 8.0  # halved after a bad step

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            LossScaler(scale=0.0)

    def test_skips_parameters_without_gradients(self):
        scaler = LossScaler(scale=4.0)
        param = Linear(2, 2).weight
        param.grad = None
        assert scaler.unscale_gradients([param])
