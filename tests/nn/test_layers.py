"""Tests for the layer classes, including their quantization hook points."""

import numpy as np
import pytest

from repro.core import LayerQuantContext
from repro.nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)
from repro.nn import init
from repro.posit import PositConfig, PositQuantizer
from repro.tensor import Tensor


class TestLinearLayer:
    def test_output_shape(self, rng):
        layer = Linear(6, 4, rng=rng)
        assert layer(Tensor(np.ones((3, 6)))).shape == (3, 4)

    def test_no_bias_option(self, rng):
        layer = Linear(6, 4, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradients_reach_parameters(self, rng):
        layer = Linear(3, 2, rng=rng)
        out = layer(Tensor(rng.standard_normal((4, 3))))
        out.sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestConvLayer:
    def test_output_shape_with_padding(self, rng):
        layer = Conv2d(3, 8, 3, stride=1, padding=1, rng=rng)
        assert layer(Tensor(np.ones((2, 3, 16, 16)))).shape == (2, 8, 16, 16)

    def test_output_shape_with_stride(self, rng):
        layer = Conv2d(3, 8, 3, stride=2, padding=1, rng=rng)
        assert layer(Tensor(np.ones((2, 3, 16, 16)))).shape == (2, 8, 8, 8)

    def test_bias_false_for_bn_style(self, rng):
        layer = Conv2d(3, 8, 3, bias=False, rng=rng)
        assert layer.bias is None

    def test_kaiming_initialization_scale(self):
        rng = np.random.default_rng(0)
        layer = Conv2d(16, 32, 3, rng=rng)
        fan_out = 32 * 9
        expected_std = np.sqrt(2.0 / fan_out)
        assert layer.weight.data.std() == pytest.approx(expected_std, rel=0.1)


class TestBatchNormLayer:
    def test_normalizes_in_training(self, rng):
        layer = BatchNorm2d(4)
        x = Tensor(rng.standard_normal((8, 4, 5, 5)) * 2 + 3)
        out = layer(x)
        np.testing.assert_allclose(out.data.mean(axis=(0, 2, 3)), np.zeros(4), atol=1e-7)

    def test_eval_mode_uses_running_statistics(self, rng):
        layer = BatchNorm2d(2)
        for _ in range(60):
            layer(Tensor(rng.standard_normal((16, 2, 4, 4)) + 5))
        layer.eval()
        x = rng.standard_normal((4, 2, 4, 4)) + 5
        out = layer(Tensor(x))
        # With converged running stats the eval output should be roughly centred.
        assert abs(out.data.mean()) < 1.0

    def test_affine_parameters_trainable(self):
        layer = BatchNorm2d(3)
        np.testing.assert_array_equal(layer.weight.data, np.ones(3))
        np.testing.assert_array_equal(layer.bias.data, np.zeros(3))


class TestSimpleLayers:
    def test_identity(self, rng):
        x = Tensor(rng.standard_normal((2, 3)))
        assert Identity()(x) is x

    def test_relu(self):
        out = ReLU()(Tensor(np.array([-1.0, 2.0])))
        np.testing.assert_array_equal(out.data, [0.0, 2.0])

    def test_max_pool_layer(self, rng):
        assert MaxPool2d(2)(Tensor(np.ones((1, 1, 4, 4)))).shape == (1, 1, 2, 2)

    def test_avg_pool_layer(self, rng):
        assert AvgPool2d(2)(Tensor(np.ones((1, 1, 4, 4)))).shape == (1, 1, 2, 2)

    def test_global_avg_pool_layer(self, rng):
        assert GlobalAvgPool2d()(Tensor(np.ones((2, 3, 4, 4)))).shape == (2, 3)

    def test_flatten_layer(self):
        assert Flatten()(Tensor(np.ones((2, 3, 4)))).shape == (2, 12)

    def test_dropout_respects_training_flag(self, rng):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((100, 100)))
        layer.eval()
        np.testing.assert_array_equal(layer(x).data, x.data)
        layer.train()
        assert np.any(layer(x).data == 0.0)


class TestSequential:
    def test_applies_in_order(self, rng):
        model = Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))
        assert model(Tensor(np.ones((5, 4)))).shape == (5, 2)

    def test_len_getitem_iter(self, rng):
        model = Sequential(Linear(2, 2, rng=rng), ReLU())
        assert len(model) == 2
        assert isinstance(model[1], ReLU)
        assert len(list(iter(model))) == 2

    def test_children_parameters_registered(self, rng):
        model = Sequential(Linear(2, 3, rng=rng), Linear(3, 1, rng=rng))
        assert len(model.parameters()) == 4


class TestQuantizationHooks:
    """The Fig. 3 insertion points: weights, activations, errors."""

    def _context(self, config=PositConfig(8, 1)):
        quantizer = PositQuantizer(config)
        return LayerQuantContext(
            "test",
            weight_quantizer=quantizer,
            activation_quantizer=quantizer,
            error_quantizer=PositQuantizer(PositConfig(8, 2)),
        )

    def test_conv_output_is_quantized(self, rng):
        layer = Conv2d(2, 3, 3, padding=1, rng=rng)
        x = Tensor(rng.standard_normal((1, 2, 4, 4)))
        baseline = layer(x).data
        layer.quant = self._context()
        quantized = layer(x).data
        config = PositConfig(8, 1)
        from repro.posit import quantize

        # Every output value must lie on the posit grid (the last P(.) in Fig. 3a).
        np.testing.assert_array_equal(quantized, np.asarray(quantize(quantized, config)))
        assert not np.array_equal(baseline, quantized)

    def test_linear_weights_quantized_in_forward(self, rng):
        layer = Linear(8, 4, rng=rng)
        layer.quant = self._context()
        x = Tensor(np.eye(8))
        out = layer(x).data  # rows of the (quantized) weight matrix plus bias
        # The full-precision weights themselves must be untouched (master copy).
        assert layer.weight.data.dtype == np.float64
        assert not np.array_equal(out - layer.bias.data, layer.weight.data.T)

    def test_error_path_quantizes_gradient(self, rng):
        from repro.posit import quantize

        layer = Linear(4, 4, rng=rng)
        layer.quant = LayerQuantContext(
            "test", error_quantizer=PositQuantizer(PositConfig(8, 2)))
        x = Tensor(rng.standard_normal((2, 4)), requires_grad=True)
        layer(x).sum().backward()
        np.testing.assert_array_equal(
            x.grad, np.asarray(quantize(x.grad, PositConfig(8, 2))))

    def test_disabled_context_is_identity(self, rng):
        layer = Linear(4, 4, rng=rng)
        x = Tensor(rng.standard_normal((2, 4)))
        baseline = layer(x).data
        context = self._context()
        context.enabled = False
        layer.quant = context
        np.testing.assert_array_equal(layer(x).data, baseline)

    def test_bn_layer_honours_context(self, rng):
        from repro.posit import quantize

        layer = BatchNorm2d(2)
        layer.quant = self._context(PositConfig(16, 1))
        out = layer(Tensor(rng.standard_normal((4, 2, 3, 3)))).data
        np.testing.assert_array_equal(out, np.asarray(quantize(out, PositConfig(16, 1))))


class TestInitializers:
    def test_fans_for_conv_shape(self):
        fan_in, fan_out = init.compute_fans((32, 16, 3, 3))
        assert fan_in == 16 * 9
        assert fan_out == 32 * 9

    def test_fans_for_linear_shape(self):
        assert init.compute_fans((10, 20)) == (20, 10)

    def test_kaiming_normal_std(self):
        rng = np.random.default_rng(0)
        weights = init.kaiming_normal((256, 128, 3, 3), rng, mode="fan_out")
        assert weights.std() == pytest.approx(np.sqrt(2.0 / (256 * 9)), rel=0.05)

    def test_xavier_uniform_bound(self):
        rng = np.random.default_rng(0)
        weights = init.xavier_uniform((100, 200), rng)
        bound = np.sqrt(6.0 / 300)
        assert np.abs(weights).max() <= bound

    def test_constant_inits(self):
        np.testing.assert_array_equal(init.zeros_((3,)), np.zeros(3))
        np.testing.assert_array_equal(init.ones_((3,)), np.ones(3))

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            init.compute_fans(())
