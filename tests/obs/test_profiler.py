"""Tests for the codec hot-path profiler (:mod:`repro.obs.profiler`).

The profiler has two hook points — the quantizer-factory proxy and the
patched format-class codec methods — and a hard contract that both are
free when profiling is off and fully reversible.  Tests drive the real
format classes (posit / float / fixed) through both hooks.
"""

import numpy as np
import pytest

from repro.formats import get_quantizer, parse_format
from repro.obs import CodecProfiler, profiler
from repro.obs.profiler import OPS, _ProfiledQuantizer


@pytest.fixture
def prof():
    """A clean process-wide profiler; restores patching state afterwards."""
    profiler.reset()
    yield profiler
    while profiler.active:
        profiler.disable()
    profiler.reset()


@pytest.fixture
def fmt():
    return parse_format("posit(8,1)")


class TestLifecycle:
    def test_inactive_by_default(self, prof):
        assert prof.active is False

    def test_refcounted_enable_disable(self, prof):
        prof.enable()
        prof.enable()
        prof.disable()
        assert prof.active is True
        prof.disable()
        assert prof.active is False

    def test_disable_below_zero_is_noop(self, prof):
        prof.disable()
        assert prof.active is False

    def test_patch_is_reversible(self, prof, fmt):
        original = type(fmt).__dict__["to_bits"]
        with prof:
            assert type(fmt).__dict__["to_bits"] is not original
            assert getattr(type(fmt).to_bits, "_repro_profiled", False)
        assert type(fmt).__dict__["to_bits"] is original

    def test_nested_enable_patches_once(self, prof, fmt):
        with prof:
            patched = type(fmt).__dict__["to_bits"]
            with prof:
                assert type(fmt).__dict__["to_bits"] is patched


class TestFormatClassHook:
    def test_codec_ops_accounted(self, prof, fmt):
        values = np.linspace(-2.0, 2.0, 64)
        with prof:
            bits = fmt.to_bits(values)
            fmt.from_bits(bits)
            fmt.quantize(values)
        formats = prof.snapshot()["formats"]
        assert set(formats) == {fmt.spec()}
        for op in OPS:
            entry = formats[fmt.spec()][op]
            assert entry["calls"] == 1
            assert entry["elements"] == 64
            assert entry["ns"] > 0
        assert prof.total_ns() > 0

    def test_all_families_patched(self, prof):
        values = np.linspace(-1.0, 1.0, 16)
        specs = ["posit(8,1)", "float(8,4)", "fixed(8,4)"]
        with prof:
            for spec in specs:
                parse_format(spec).to_bits(values)
        formats = prof.snapshot()["formats"]
        assert {parse_format(s).spec() for s in specs} <= set(formats)

    def test_results_unchanged_by_profiling(self, prof, fmt):
        values = np.linspace(-2.0, 2.0, 64)
        plain = fmt.to_bits(values)
        with prof:
            profiled = fmt.to_bits(values)
        np.testing.assert_array_equal(plain, profiled)

    def test_inactive_records_nothing(self, prof, fmt):
        fmt.quantize(np.ones(8))
        assert prof.snapshot()["formats"] == {}


class TestFactoryProxy:
    def test_factory_returns_proxy(self, fmt):
        quantizer = get_quantizer(fmt, "nearest")
        assert isinstance(quantizer, _ProfiledQuantizer)

    def test_identity_caching_preserved(self, fmt):
        assert get_quantizer(fmt, "nearest") is get_quantizer(fmt, "nearest")

    def test_attribute_delegation(self, fmt):
        quantizer = get_quantizer(fmt, "stochastic")
        assert quantizer.rounding == "stochastic"
        assert "profiled" in repr(quantizer)

    def test_quantize_calls_accounted(self, prof, fmt):
        quantizer = get_quantizer(fmt, "nearest")
        values = np.linspace(-1.0, 1.0, 32)
        with prof:
            quantizer(values)
            quantizer(values)
        entry = prof.snapshot()["formats"][fmt.spec()]["quantize"]
        assert entry["calls"] == 2
        assert entry["elements"] == 64

    def test_profiling_does_not_change_results(self, prof, fmt):
        quantizer = get_quantizer(fmt, "nearest")
        values = np.linspace(-1.0, 1.0, 32)
        plain = quantizer(values)
        with prof:
            profiled = quantizer(values)
        np.testing.assert_array_equal(plain, profiled)


class TestReporting:
    def test_reset_clears_stats(self, prof, fmt):
        with prof:
            fmt.quantize(np.ones(8))
        prof.reset()
        assert prof.snapshot()["formats"] == {}
        assert prof.total_ns() == 0

    def test_stats_survive_disable(self, prof, fmt):
        with prof:
            fmt.quantize(np.ones(8))
        snap = prof.snapshot()
        assert snap["active"] is False
        assert snap["formats"][fmt.spec()]["quantize"]["calls"] == 1

    def test_format_table(self, prof, fmt):
        values = np.linspace(-2.0, 2.0, 128)
        with prof:
            fmt.quantize(values)
            fmt.to_bits(values)
        table = prof.format_table()
        lines = table.splitlines()
        assert lines[0].split() == ["format", "op", "calls", "elements",
                                    "total_ms", "ns/elem"]
        assert any(fmt.spec() in line and "quantize" in line for line in lines)
        assert any(fmt.spec() in line and "to_bits" in line for line in lines)

    def test_fresh_instance_independent(self, prof, fmt):
        own = CodecProfiler()
        values = np.ones(8)
        with own:
            fmt.quantize(values)
        assert own.snapshot()["formats"][fmt.spec()]["quantize"]["calls"] == 1
        assert profiler.snapshot()["formats"] == {}
