"""Tests for trace exporters (:mod:`repro.obs.export`).

The Chrome trace-event validator doubles as the CI gate for exported
traces, so its rejection paths are tested as carefully as the happy path.
"""

import json

import pytest

from repro.obs import (
    TraceConfig,
    Tracer,
    read_jsonl,
    span_to_chrome_event,
    summarize_traces,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)


@pytest.fixture
def spans():
    tracer = Tracer(TraceConfig(enabled=True))
    for offset in (0.0, 10.0):
        root = tracer.begin("request", start_s=offset)
        root.record_child("queue", offset + 0.001, offset + 0.002)
        fwd = root.child("forward", start_s=offset + 0.002)
        fwd.finish(end_s=offset + 0.004, batch_size=4)
        root.finish(end_s=offset + 0.005)
    return tracer.spans()


class TestJsonl:
    def test_round_trip(self, spans, tmp_path):
        path = tmp_path / "spans.jsonl"
        assert write_jsonl(spans, str(path)) == len(spans)
        assert read_jsonl(str(path)) == spans

    def test_blank_lines_skipped(self, spans, tmp_path):
        path = tmp_path / "spans.jsonl"
        write_jsonl(spans, str(path))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("\n\n")
        assert len(read_jsonl(str(path))) == len(spans)


class TestChromeTrace:
    def test_event_mapping(self, spans):
        span = spans[0]
        event = span_to_chrome_event(span, tid=3)
        assert event["ph"] == "X"
        assert event["ts"] == pytest.approx(span.start_s * 1e6)
        assert event["dur"] == pytest.approx(span.duration_ms * 1e3)
        assert event["tid"] == 3
        assert event["pid"] == span.pid
        assert event["args"]["trace_id"] == span.trace_id
        assert event["args"]["span_id"] == span.span_id

    def test_document_is_valid(self, spans):
        doc = to_chrome_trace(spans)
        assert validate_chrome_trace(doc) == []
        assert len(doc["traceEvents"]) == len(spans)

    def test_events_sorted_by_ts(self, spans):
        ts = [e["ts"] for e in to_chrome_trace(reversed(spans))["traceEvents"]]
        assert ts == sorted(ts)

    def test_traces_get_distinct_tids(self, spans):
        events = to_chrome_trace(spans)["traceEvents"]
        tids = {e["args"]["trace_id"]: e["tid"] for e in events}
        assert len(set(tids.values())) == 2

    def test_write_is_loadable_json(self, spans, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(spans, str(path))
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        assert validate_chrome_trace(doc) == []

    def test_dict_spans_accepted(self, spans):
        doc = to_chrome_trace([s.to_dict() for s in spans])
        assert validate_chrome_trace(doc) == []


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([]) != []

    def test_rejects_missing_trace_events(self):
        assert validate_chrome_trace({"otherData": {}}) != []

    def test_rejects_missing_keys(self):
        doc = {"traceEvents": [{"name": "x", "ph": "X"}]}
        problems = validate_chrome_trace(doc)
        assert any("missing keys" in p for p in problems)

    def test_rejects_negative_ts(self):
        doc = {"traceEvents": [
            {"name": "x", "ph": "X", "ts": -1, "dur": 1, "pid": 1, "tid": 1},
        ]}
        assert validate_chrome_trace(doc) != []

    def test_rejects_negative_dur(self):
        doc = {"traceEvents": [
            {"name": "x", "ph": "X", "ts": 0, "dur": -5, "pid": 1, "tid": 1},
        ]}
        assert validate_chrome_trace(doc) != []

    def test_rejects_unsorted_events(self):
        event = {"name": "x", "ph": "X", "dur": 1, "pid": 1, "tid": 1}
        doc = {"traceEvents": [dict(event, ts=10), dict(event, ts=5)]}
        problems = validate_chrome_trace(doc)
        assert any("sorted" in p for p in problems)

    def test_rejects_unmatched_begin(self):
        doc = {"traceEvents": [
            {"name": "x", "ph": "B", "ts": 0, "pid": 1, "tid": 1},
        ]}
        problems = validate_chrome_trace(doc)
        assert any("unclosed" in p for p in problems)

    def test_rejects_end_without_begin(self):
        doc = {"traceEvents": [
            {"name": "x", "ph": "E", "ts": 0, "pid": 1, "tid": 1},
        ]}
        problems = validate_chrome_trace(doc)
        assert any("no matching B" in p for p in problems)

    def test_accepts_matched_begin_end(self):
        doc = {"traceEvents": [
            {"name": "x", "ph": "B", "ts": 0, "pid": 1, "tid": 1},
            {"name": "x", "ph": "E", "ts": 1, "pid": 1, "tid": 1},
        ]}
        assert validate_chrome_trace(doc) == []


class TestSummaries:
    def test_per_trace_rows(self, spans):
        summary = summarize_traces(spans)
        assert summary["trace_count"] == 2
        assert summary["span_count"] == len(spans)
        for row in summary["traces"]:
            assert row["root"] == "request"
            assert row["spans"] == 3
            assert row["duration_ms"] == pytest.approx(5.0, abs=0.01)
            assert set(row["stage_ms"]) == {"request", "queue", "forward"}

    def test_slowest_first(self):
        tracer = Tracer(TraceConfig(enabled=True))
        tracer.record_span("request", 0.0, 0.010, trace_id="fast")
        tracer.record_span("request", 0.0, 0.050, trace_id="slow")
        rows = summarize_traces(tracer.spans())["traces"]
        assert [r["trace_id"] for r in rows] == ["slow", "fast"]

    def test_stage_aggregates(self, spans):
        stages = summarize_traces(spans)["stages"]
        assert stages["queue"]["count"] == 2
        assert stages["queue"]["total_ms"] == pytest.approx(2.0, abs=0.01)
        assert stages["queue"]["mean_ms"] == pytest.approx(1.0, abs=0.01)
        assert stages["forward"]["max_ms"] == pytest.approx(2.0, abs=0.01)

    def test_slow_filter(self, spans):
        summary = summarize_traces(spans, slow_ms=4.0)
        assert len(summary["slow_traces"]) == 2
        assert summarize_traces(spans, slow_ms=1000.0)["slow_traces"] == []
