"""Unit tests for the span tracer (:mod:`repro.obs.tracing`).

Covers the three design constraints the module docstring commits to:
zero recording when off, head-based whole-or-absent sampling, and
explicit-id assembly across threads (children recorded retroactively
from collected timestamps).
"""

import threading

import pytest

from repro.obs import (
    Span,
    TraceConfig,
    Tracer,
    new_span_id,
    new_trace_id,
)


def make_tracer(**overrides):
    config = dict(enabled=True)
    config.update(overrides)
    return Tracer(TraceConfig(**config))


class TestIds:
    def test_shapes(self):
        assert len(new_trace_id()) == 32
        assert len(new_span_id()) == 16
        int(new_trace_id(), 16)
        int(new_span_id(), 16)

    def test_unique(self):
        ids = {new_span_id() for _ in range(1000)}
        assert len(ids) == 1000


class TestConfig:
    def test_defaults_off(self):
        assert TraceConfig().enabled is False

    @pytest.mark.parametrize("bad", [-0.1, 1.1])
    def test_sample_rate_validated(self, bad):
        with pytest.raises(ValueError):
            TraceConfig(sample_rate=bad)

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            TraceConfig(capacity=0)

    def test_dict_round_trip(self):
        config = TraceConfig(enabled=True, sample_rate=0.25, capacity=128,
                             slow_ms=10.0, slow_keep=4, profile_codec=False)
        assert TraceConfig.from_dict(config.to_dict()) == config

    def test_from_dict_ignores_unknown_keys(self):
        config = TraceConfig.from_dict({"enabled": True, "future_field": 1})
        assert config.enabled is True


class TestSpanLifecycle:
    def test_begin_finish_records(self):
        tracer = make_tracer()
        root = tracer.begin("request")
        root.finish()
        spans = tracer.spans()
        assert [s.name for s in spans] == ["request"]
        assert spans[0].parent_id is None
        assert spans[0].end_s >= spans[0].start_s

    def test_finish_is_idempotent(self):
        tracer = make_tracer()
        root = tracer.begin("request")
        assert root.finish() is not None
        assert root.finish() is None
        assert len(tracer.spans()) == 1

    def test_child_nesting(self):
        tracer = make_tracer()
        root = tracer.begin("request")
        child = root.child("stage")
        child.finish()
        root.finish()
        by_name = {s.name: s for s in tracer.spans()}
        assert by_name["stage"].parent_id == root.span_id
        assert by_name["stage"].trace_id == root.trace_id

    def test_record_child_retroactive(self):
        tracer = make_tracer()
        root = tracer.begin("request", start_s=10.0)
        span = root.record_child("queue", 10.5, 11.0, depth=3)
        assert span.parent_id == root.span_id
        assert span.annotations == {"depth": 3}
        assert span.duration_ms == pytest.approx(500.0)

    def test_context_manager_records_errors(self):
        tracer = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.begin("request"):
                raise RuntimeError("boom")
        (span,) = tracer.spans()
        assert "boom" in span.annotations["error"]

    def test_span_dict_round_trip(self):
        tracer = make_tracer()
        root = tracer.begin("request", annotations={"k": "v"})
        span = root.finish()
        assert Span.from_dict(span.to_dict()) == span

    def test_cross_thread_finish(self):
        # The engine's real shape: submit thread begins, batcher finishes.
        tracer = make_tracer()
        root = tracer.begin("request")
        worker = threading.Thread(target=root.finish)
        worker.start()
        worker.join()
        assert len(tracer.spans()) == 1


class TestSampling:
    def test_disabled_records_nothing(self):
        tracer = Tracer(TraceConfig(enabled=False))
        assert tracer.begin("request") is None
        assert tracer.spans() == []
        assert tracer.summary()["spans_total"] == 0

    def test_rate_zero_records_nothing(self):
        tracer = make_tracer(sample_rate=0.0)
        for _ in range(50):
            assert tracer.begin("request") is None
        assert tracer.spans() == []
        assert tracer.summary()["dropped_unsampled"] == 50

    def test_rate_one_records_everything(self):
        tracer = make_tracer(sample_rate=1.0)
        for _ in range(10):
            tracer.begin("request").finish()
        assert tracer.summary()["traces_total"] == 10

    def test_sampler_injection(self):
        rolls = iter([0.1, 0.9, 0.1])
        tracer = Tracer(TraceConfig(enabled=True, sample_rate=0.5),
                        sampler=lambda: next(rolls))
        outcomes = [tracer.begin("r") is not None for _ in range(3)]
        assert outcomes == [True, False, True]

    def test_forced_sampled_skips_the_roll(self):
        tracer = Tracer(TraceConfig(enabled=True, sample_rate=0.0),
                        sampler=lambda: pytest.fail("must not roll"))
        assert tracer.begin("r", sampled=True) is not None


class TestPropagation:
    def test_adopt_continues_the_trace(self):
        upstream = make_tracer()
        downstream = make_tracer()
        root = upstream.begin("request")
        adopted = downstream.adopt(root.context(), "engine")
        assert adopted.trace_id == root.trace_id
        assert adopted.parent_id == root.span_id

    def test_adopt_honours_unsampled_upstream(self):
        downstream = make_tracer(sample_rate=1.0)
        assert downstream.adopt({"sampled": False}, "engine") is None

    def test_adopted_overrides_local_rate(self):
        # Upstream said yes; a 0-rate downstream must still record, so a
        # trace is always whole or absent.
        downstream = make_tracer(sample_rate=0.0)
        ctx = {"trace_id": new_trace_id(), "parent_id": new_span_id(),
               "sampled": True}
        adopted = downstream.adopt(ctx, "engine")
        assert adopted is not None
        assert adopted.trace_id == ctx["trace_id"]

    def test_adopt_none_context(self):
        assert make_tracer().adopt(None, "engine") is None

    def test_ingest_merges_serialized_spans(self):
        worker = make_tracer()
        worker.begin("engine").finish()
        supervisor = make_tracer()
        count = supervisor.ingest([s.to_dict() for s in worker.spans()])
        assert count == 1
        assert supervisor.spans()[0].name == "engine"


class TestRecorder:
    def test_ring_is_bounded(self):
        tracer = make_tracer(capacity=8)
        for index in range(20):
            tracer.begin("r", annotations={"i": index}).finish()
        spans = tracer.spans()
        assert len(spans) == 8
        assert [s.annotations["i"] for s in spans] == list(range(12, 20))
        assert tracer.summary()["spans_total"] == 20

    def test_spans_filter_by_trace_id(self):
        tracer = make_tracer()
        first = tracer.begin("a")
        first.finish()
        tracer.begin("b").finish()
        assert [s.name for s in tracer.spans(first.trace_id)] == ["a"]

    def test_traces_grouped_and_sorted(self):
        tracer = make_tracer()
        root = tracer.begin("request", start_s=1.0)
        root.record_child("late", 3.0, 4.0)
        root.record_child("early", 1.5, 2.0)
        root.finish(end_s=5.0)
        (members,) = tracer.traces().values()
        assert [s.name for s in members] == ["request", "early", "late"]

    def test_slow_exemplars_top_k(self):
        tracer = make_tracer(slow_ms=100.0, slow_keep=2)
        for index, dur in enumerate([0.05, 0.2, 0.15, 0.3]):
            tracer.record_span("request", 0.0, dur,
                               trace_id=f"t{index}")
        slow = tracer.slow_traces()
        assert [e["trace_id"] for e in slow] == ["t3", "t1"]
        assert slow[0]["duration_ms"] == pytest.approx(300.0)

    def test_only_roots_count_as_traces(self):
        tracer = make_tracer()
        root = tracer.begin("request")
        root.child("stage").finish()
        root.finish()
        summary = tracer.summary()
        assert summary["spans_total"] == 2
        assert summary["traces_total"] == 1

    def test_clear(self):
        tracer = make_tracer()
        tracer.begin("r").finish()
        tracer.clear()
        assert tracer.spans() == []
        assert tracer.summary()["spans_total"] == 0
