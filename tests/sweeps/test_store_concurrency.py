"""Concurrency hardening for the JSONL :class:`ResultStore`.

The store's design claims (append-only, one record per line, a killed
writer loses at most its current line, resume never recomputes an ``"ok"``
cell) are exercised here under the conditions that actually threaten them:
two *processes* appending to the same file at once, and a writer SIGKILLed
mid-stream leaving a torn final record behind.
"""

import json
import multiprocessing as mp
import os
import signal
import time

from repro.api import ExperimentConfig
from repro.sweeps import ResultStore, SweepAxis, SweepConfig, run_sweep


def _mp_context():
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


def _append_records(path: str, prefix: str, count: int, payload_floats: int,
                    started) -> None:
    """Writer-process body: append ``count`` records as fast as possible."""
    store = ResultStore(path)
    filler = [float(index) / 3.0 for index in range(payload_floats)]
    started.set()
    for index in range(count):
        store.append({
            "run_id": f"{prefix}-{index}",
            "status": "ok",
            "index": index,
            "metrics": {"final_val_accuracy": 0.5, "filler": filler},
        })


class TestTwoProcessWriters:
    def test_concurrent_appends_all_survive(self, tmp_path):
        """Two writer processes, one file: every record lands intact.

        Appends go through O_APPEND writes of complete lines, so two
        processes may interleave *lines* but never tear each other's
        records.
        """
        path = str(tmp_path / "store.jsonl")
        ctx = _mp_context()
        count = 200
        events = [ctx.Event(), ctx.Event()]
        writers = [
            ctx.Process(target=_append_records,
                        args=(path, f"writer{rank}", count, 8, events[rank]))
            for rank in range(2)
        ]
        for writer in writers:
            writer.start()
        for writer in writers:
            writer.join(timeout=120)
            assert writer.exitcode == 0
        store = ResultStore(path)
        records = store.load()
        assert store.skipped_lines == 0
        assert len(records) == 2 * count
        for rank in range(2):
            for index in range(count):
                record = records[f"writer{rank}-{index}"]
                assert record["status"] == "ok"
                assert len(record["metrics"]["filler"]) == 8

    def test_kill_mid_write_leaves_at_most_one_torn_record(self, tmp_path):
        """SIGKILL a busy writer; the store stays loadable, losing <= 1 line."""
        path = str(tmp_path / "store.jsonl")
        ctx = _mp_context()
        started = ctx.Event()
        victim = ctx.Process(target=_append_records,
                             args=(path, "victim", 100_000, 64, started))
        victim.start()
        assert started.wait(timeout=60)
        # Let it write for a moment, then kill it mid-stream.
        deadline = time.time() + 30
        while time.time() < deadline and not os.path.exists(path):
            time.sleep(0.01)
        time.sleep(0.05)
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=30)
        assert victim.exitcode == -signal.SIGKILL

        store = ResultStore(path)
        records = store.load()
        # fsync-per-append means a complete line per loaded record; the only
        # possible damage is the line being written at kill time.
        assert store.skipped_lines <= 1
        assert records, "the killed writer should have landed some records"
        indices = sorted(record["index"] for record in records.values())
        # Records land in order; a torn tail must not create gaps.
        assert indices == list(range(len(indices)))
        # The survivor store keeps accepting appends.
        store.append({"run_id": "after-kill", "status": "ok", "metrics": {}})
        assert "after-kill" in ResultStore(path).load()


class TestTornRecordResume:
    @staticmethod
    def _sweep():
        base = ExperimentConfig(dataset="blobs", model="mlp", epochs=1,
                                train_size=48, test_size=16, batch_size=16,
                                num_classes=3, model_kwargs={"hidden": [8]})
        return SweepConfig(name="torn", base=base,
                           grid=[SweepAxis.of("policy", ("posit(8,1)", "fp32"))])

    def test_resume_skips_completed_and_tolerates_torn_tail(self, tmp_path):
        """A torn final record does not poison resume: completed cells are
        skipped, only the cell whose record was torn is recomputed."""
        store_path = str(tmp_path / "torn.jsonl")
        sweep = self._sweep()
        summary = run_sweep(sweep, store=store_path, workers=1)
        assert summary.executed == 2 and summary.failed == 0

        # Tear the *last* record exactly as a mid-write kill would: keep the
        # first line intact, truncate the second mid-JSON, no newline.
        with open(store_path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        assert len(lines) == 2
        torn_run_id = json.loads(lines[1])["run_id"]
        with open(store_path, "w", encoding="utf-8") as handle:
            handle.write(lines[0] + "\n")
            handle.write(lines[1][:len(lines[1]) // 2])

        store = ResultStore(store_path)
        store.load()
        assert store.skipped_lines == 1
        assert torn_run_id not in store.completed_ids()

        resumed = run_sweep(sweep, store=store_path, workers=1)
        assert resumed.skipped == 1      # the intact cell is never recomputed
        assert resumed.executed == 1     # only the torn cell reruns
        assert resumed.failed == 0
        repaired = ResultStore(store_path)
        assert repaired.completed_ids() == {run.run_id
                                            for run in sweep.expand()}

    def test_torn_tail_plus_concurrent_writer(self, tmp_path):
        """A reader sees a consistent view while another process appends
        behind a torn record (the torn line is skipped, not fatal)."""
        path = str(tmp_path / "mixed.jsonl")
        seed = ResultStore(path)
        seed.append({"run_id": "intact", "status": "ok", "metrics": {}})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"run_id": "torn", "status": "o')  # no newline

        ctx = _mp_context()
        started = ctx.Event()
        writer = ctx.Process(target=_append_records,
                             args=(path, "late", 50, 4, started))
        writer.start()
        writer.join(timeout=120)
        assert writer.exitcode == 0

        store = ResultStore(path)
        records = store.load()
        assert "intact" in records
        assert "torn" not in records
        # Append healing terminates the torn fragment before writing, so
        # only the fragment itself is lost — every late record survives.
        assert store.skipped_lines == 1
        late = [run_id for run_id in records if run_id.startswith("late-")]
        assert len(late) == 50
